//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides a minimal wall-clock timing harness with the API subset the
//! workspace's benches use: [`Criterion::bench_function`], benchmark
//! groups with [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It reports mean time per iteration (and
//! derived throughput) on stdout; it does not do statistical analysis,
//! outlier rejection, or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How to express a benchmark's work per iteration when reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing state handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up briefly, then measuring enough
    /// iterations to fill the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for ~20 ms to populate caches and branch state.
        let warmup_end = Instant::now() + Duration::from_millis(20);
        while Instant::now() < warmup_end {
            black_box(routine());
        }
        // Measurement: batches of iterations until ~200 ms accumulate.
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let batch = 16;
        while total < Duration::from_millis(200) {
            let started = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += started.elapsed();
            iters += batch;
        }
        self.total = total;
        self.iters = iters;
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.iters).unwrap_or(u32::MAX)
        }
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let per_iter = bencher.per_iter();
    let ns = per_iter.as_nanos();
    match throughput {
        Some(Throughput::Bytes(bytes)) if ns > 0 => {
            let gbps = bytes as f64 / per_iter.as_secs_f64() / 1e9;
            println!("{id:<40} {ns:>10} ns/iter   {gbps:>8.3} GB/s");
        }
        Some(Throughput::Elements(n)) if ns > 0 => {
            let meps = n as f64 / per_iter.as_secs_f64() / 1e6;
            println!("{id:<40} {ns:>10} ns/iter   {meps:>8.3} Melem/s");
        }
        _ => println!("{id:<40} {ns:>10} ns/iter"),
    }
}

/// A named set of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work used for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&format!("{}/{id}", self.name), &bencher, self.throughput);
        self
    }

    /// Finishes the group (reporting is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(id, &bencher, None);
        self
    }
}

/// Bundles benchmark functions into a group runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
