//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this vendored crate provides the subset of the upstream API the
//! workspace actually uses: [`Bytes`], a cheaply cloneable immutable
//! byte buffer with zero-copy slicing. The representation is an
//! `Arc<[u8]>` plus a window, so `clone` and `slice` are O(1) and never
//! copy payload — the property the FIDR chunker relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copied once; upstream keeps a
    /// reference, but the distinction is unobservable through this API).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Creates `Bytes` by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the viewed window in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a zero-copy sub-window of `self` for `range` (indices
    /// relative to this window, as in upstream `bytes`).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range inverted: {begin}..{end}");
        assert!(
            end <= len,
            "slice range {begin}..{end} out of bounds (len {len})"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the window out into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let inner = s.slice(1..);
        assert_eq!(inner.as_ref(), &[3, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn equality_and_hash_see_the_window() {
        let a = Bytes::from(vec![9, 1, 2, 9]).slice(1..3);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..9);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"ab").to_vec(), vec![b'a', b'b']);
    }
}
