//! Test configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this stand-in trades a little
        // coverage for CI time, and tests can raise it via
        // `ProptestConfig::with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for one test case: the seed mixes the test's name
/// with the case index, so every run of the suite replays identical
/// inputs and a failure names a reproducible case.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// RNG for case number `case` of the test identified by `test_name`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        case.hash(&mut h);
        TestRng {
            rng: StdRng::seed_from_u64(h.finish()),
        }
    }

    /// The underlying `rand` RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
