//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests
//! use: integer-range / tuple / `any` / `Just` / mapped / one-of
//! strategies, `proptest::collection::vec`, the `proptest!` test macro
//! and the `prop_assert*` assertion macros. Inputs are generated from a
//! per-test deterministic seed (derived from the test's module path and
//! case index), so failures reproduce across runs.
//!
//! The one upstream feature deliberately missing is *shrinking*: a
//! failing case reports the generated input via the panic message only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from `element` with a length
    /// drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy for vectors of `element` values with a length
    /// in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                0
            } else {
                rng.rng().gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Weighted (or unweighted) union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as in
/// upstream proptest) that runs `body` for `config.cases` seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}
