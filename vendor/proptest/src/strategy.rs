//! Value-generation strategies: the `Strategy` trait and the concrete
//! strategies the workspace's property tests compose.

use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Generates one value from `rng`.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!` to mix
    /// heterogeneous strategies over one value type).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Rc::new(move |rng| self.new_value(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A mapped strategy (see [`Strategy::prop_map`]).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty or all weights are zero.
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = variants.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union {
            variants,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng().gen_range(0..self.total_weight);
        for (weight, strategy) in &self.variants {
            if pick < *weight as u64 {
                return strategy.new_value(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("pick is below the summed weight");
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                let mut buf = [0u8; core::mem::size_of::<$t>()];
                rng.rng().fill_bytes(&mut buf);
                <$t>::from_le_bytes(buf)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen_bool(0.5)
    }
}

/// Strategy for an unconstrained value of `T` (`any::<u8>()` etc.).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the [`Any`] strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
