//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the small, deterministic subset the workspace uses: a seeded
//! [`rngs::StdRng`] (xoshiro256** core seeded via SplitMix64), the
//! [`Rng`] extension trait with `gen_range` over integer ranges and
//! `gen_bool`, and [`SeedableRng::seed_from_u64`]. The streams are *not*
//! bit-compatible with upstream `rand`, but every consumer in this
//! workspace only needs seed-stable determinism within one build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                let draw = uniform_u128_below(rng, span);
                (low as u128).wrapping_add(draw) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    let mut buf = [0u8; 16];
                    rng.fill_bytes(&mut buf[..core::mem::size_of::<$t>()]);
                    return <$t>::from_le_bytes(
                        buf[..core::mem::size_of::<$t>()].try_into().expect("sized"),
                    );
                }
                let draw = uniform_u128_below(rng, span);
                (low as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Unbiased sample from `[0, bound)` via 64-bit rejection sampling
/// (`bound` must be nonzero and fit in 65 bits, which all callers satisfy).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    if bound > u64::MAX as u128 {
        // Full 64-bit span (e.g. `0u64..=u64::MAX`): raw word is uniform.
        return rng.next_u64() as u128;
    }
    let bound64 = bound as u64;
    let zone = u64::MAX - (u64::MAX % bound64 + 1) % bound64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % bound64) as u128;
        }
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer range).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(8u64..=32);
            assert!((8..=32).contains(&w));
        }
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(9);
        // Must not panic or loop: every u64 is a valid draw.
        let v = rng.gen_range(1u64..u64::MAX);
        assert!((1..u64::MAX).contains(&v));
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "got {hits}");
    }
}
