//! End-to-end loopback tests of the TCP serving layer: concurrent
//! verified client traffic, graceful drain, `server.*` metric
//! consistency, backpressure bounds, and the malformed-input contract
//! (a bad frame closes only the offending connection — other clients
//! never stall, the server never panics).

use bytes::Bytes;
use fidr::chunk::Lba;
use fidr::client::{run_traffic, StorageClient};
use fidr::core::FidrConfig;
use fidr::nic::protocol::{Message, HEADER_BYTES};
use fidr::server::{Server, ServerConfig};
use fidr::trace::TraceConfig;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A small, fast backend so batches and container seals actually happen
/// within a few hundred ops.
fn small_system() -> FidrConfig {
    FidrConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 64 << 10,
        hash_batch: 8,
        ..FidrConfig::default()
    }
}

fn spawn(cfg: ServerConfig) -> fidr::server::ServerHandle {
    Server::spawn(cfg).expect("bind loopback")
}

#[test]
fn concurrent_clients_verified_traffic_and_clean_drain() {
    let handle = spawn(ServerConfig {
        system: FidrConfig {
            // Per-request root spans via the existing tracer.
            trace: TraceConfig::enabled(),
            ..small_system()
        },
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    let report = run_traffic(addr, 4, 120, 7).expect("traffic completes");
    assert_eq!(report.verify_failures, 0, "every read matches its write");
    assert!(report.writes > 0 && report.reads > 0, "interleaved traffic");

    let metrics = handle.shutdown().expect("graceful drain");
    let count = |name: &str| metrics.counter(name).unwrap_or(0);
    // server.* counters are consistent with the op count.
    assert_eq!(count("server.connections.accepted.count"), 4);
    assert_eq!(count("server.connections.closed_clean.count"), 4);
    assert_eq!(count("server.connections.closed_error.count"), 0);
    assert_eq!(
        count("server.frames.decoded.count"),
        report.writes + report.reads
    );
    assert_eq!(count("server.frames.rejected.count"), 0);
    assert_eq!(count("server.ops.write.count"), report.writes);
    assert_eq!(count("server.ops.read.count"), report.reads);
    assert_eq!(count("server.ops.failed.count"), 0);
    assert!(count("server.rx.bytes") > report.writes * 4096);
    assert!(count("server.tx.bytes") > report.reads * 4096);
    // The flush drained the NIC and sealed the open container; the
    // backend pipeline metrics rode along in the same snapshot.
    assert_eq!(
        count("reduction.write_chunks.count"),
        report.writes,
        "all acked writes reached the dedup pipeline"
    );
    assert!(count("reduction.duplicate_chunks.count") > 0);
    // Per-request root spans were recorded by the existing tracer.
    assert!(count("trace.spans.count") > 0, "root spans recorded");
    assert_eq!(metrics.gauge("server.connections.active.count"), Some(0.0));
}

#[test]
fn malformed_frames_close_only_the_offending_connection() {
    let handle = spawn(ServerConfig {
        system: small_system(),
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    // A healthy client with traffic in flight before, during and after
    // the attacks.
    let mut good = StorageClient::connect(addr).expect("connect");
    let payload = Bytes::from(vec![7u8; 4096]);
    good.write(Lba(1), payload.clone()).expect("write");

    let assert_closed = |mut s: TcpStream, what: &str| {
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 64];
        match s.read(&mut buf) {
            Ok(0) => {} // server closed this connection
            Ok(_) => panic!("{what}: server replied to a malformed frame"),
            Err(e) => panic!("{what}: expected EOF, got {e}"),
        }
    };

    // 1. Bad opcode.
    let mut bad_op = TcpStream::connect(addr).unwrap();
    let mut frame = Message::Read { lba: Lba(0) }.encode().unwrap();
    frame[0] = 0xee;
    bad_op.write_all(&frame).unwrap();
    assert_closed(bad_op, "bad opcode");

    // 2. Hostile declared length (4 GiB-class) — rejected from the
    //    header, without the server buffering the claimed body.
    let mut oversize = TcpStream::connect(addr).unwrap();
    let mut frame = Message::Read { lba: Lba(0) }.encode().unwrap();
    frame[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
    oversize.write_all(&frame).unwrap();
    assert_closed(oversize, "oversize length");

    // 3. Mid-frame disconnect: a write frame cut off inside its payload.
    let mut cutoff = TcpStream::connect(addr).unwrap();
    let frame = Message::Write {
        lba: Lba(9),
        data: Bytes::from(vec![1u8; 4096]),
    }
    .encode()
    .unwrap();
    cutoff.write_all(&frame[..HEADER_BYTES + 100]).unwrap();
    drop(cutoff);

    // The healthy connection kept its stream intact throughout.
    assert_eq!(good.read(Lba(1)).expect("read"), payload.to_vec());
    good.write(Lba(2), Bytes::from(vec![9u8; 4096]))
        .expect("write after attacks");
    drop(good);

    // The cutoff socket raced the accept loop; wait until the server has
    // actually picked it up before draining.
    for _ in 0..400 {
        if handle
            .metrics()
            .counter("server.connections.accepted.count")
            == Some(4)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let metrics = handle.shutdown().expect("drain survives attacks");
    let count = |name: &str| metrics.counter(name).unwrap_or(0);
    assert_eq!(count("server.connections.accepted.count"), 4);
    assert_eq!(
        count("server.frames.rejected.count"),
        3,
        "each malformed stream counted once"
    );
    assert_eq!(count("server.connections.closed_error.count"), 3);
    assert_eq!(count("server.connections.closed_clean.count"), 1);
    // The good client's frames all decoded and were served.
    assert_eq!(count("server.ops.write.count"), 2);
    assert_eq!(count("server.ops.read.count"), 1);
}

#[test]
fn semantic_violation_closes_the_connection_without_a_reject() {
    let handle = spawn(ServerConfig {
        system: small_system(),
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    // A WriteAck is a server-only opcode: it frames fine but may not be
    // *sent to* the server.
    let mut rogue = TcpStream::connect(addr).unwrap();
    rogue
        .write_all(&Message::WriteAck { lba: Lba(5) }.encode().unwrap())
        .unwrap();
    rogue
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(rogue.read(&mut buf).unwrap(), 0, "connection closed");

    let metrics = handle.shutdown().expect("drain");
    assert_eq!(metrics.counter("server.frames.unexpected.count"), Some(1));
    assert_eq!(metrics.counter("server.frames.rejected.count"), Some(0));
    assert_eq!(metrics.counter("server.frames.decoded.count"), Some(1));
}

#[test]
fn tiny_queue_bounds_inflight_and_still_completes() {
    let handle = spawn(ServerConfig {
        system: small_system(),
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();
    let report = run_traffic(addr, 4, 60, 11).expect("traffic completes");
    assert_eq!(report.verify_failures, 0);
    let metrics = handle.shutdown().expect("drain");
    let count = |name: &str| metrics.counter(name).unwrap_or(0);
    // Depth high-water is a gauge (it can move down across runs), not a
    // monotone counter.
    assert!(
        metrics.gauge("server.queue.depth.max").unwrap_or(0.0) <= 1.0,
        "admission never exceeded the configured bound"
    );
    assert_eq!(
        count("server.frames.decoded.count"),
        report.writes + report.reads
    );
}

#[test]
fn multi_chunk_writes_chunk_through_the_wire() {
    let handle = spawn(ServerConfig {
        system: small_system(),
        ..ServerConfig::default()
    });
    let mut client = StorageClient::connect(handle.local_addr()).expect("connect");
    // One 16-KiB frame becomes four chunks at consecutive LBAs.
    let big: Vec<u8> = (0..16 * 1024).map(|i| (i % 251) as u8).collect();
    client.write(Lba(100), Bytes::from(big.clone())).unwrap();
    for i in 0..4usize {
        assert_eq!(
            client.read(Lba(100 + i as u64)).unwrap(),
            big[i * 4096..(i + 1) * 4096].to_vec(),
            "chunk {i}"
        );
    }
    // A ragged (non-multiple-of-4-KiB) payload is a backend error: the
    // server refuses and closes, the client observes the disconnect.
    let mut ragged = StorageClient::connect(handle.local_addr()).expect("connect");
    let err = ragged.write(Lba(500), Bytes::from(vec![1u8; 1000]));
    assert!(err.is_err(), "ragged write must not be acked");
    drop(ragged);
    drop(client);
    let metrics = handle.shutdown().expect("drain");
    assert_eq!(metrics.counter("server.ops.failed.count"), Some(1));
    assert_eq!(metrics.counter("server.ops.write.count"), Some(1));
    assert_eq!(metrics.counter("server.ops.read.count"), Some(4));
}

#[test]
fn conns_limit_auto_drains_without_an_explicit_shutdown() {
    let handle = spawn(ServerConfig {
        system: small_system(),
        conns_limit: Some(2),
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();
    let report = run_traffic(addr, 2, 30, 3).expect("traffic");
    assert_eq!(report.verify_failures, 0);
    // Both connections closed -> the server drains on its own; wait()
    // must return rather than hang.
    let metrics = handle.wait().expect("auto drain");
    assert_eq!(
        metrics.counter("server.connections.accepted.count"),
        Some(2)
    );
    // Past the limit the listener refuses new sessions: either connect
    // fails outright or the next request goes unanswered.
    if let Ok(mut late) = StorageClient::connect(addr) {
        assert!(
            late.read(Lba(0)).is_err(),
            "late connection must not be served"
        );
    }
}
