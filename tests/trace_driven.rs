//! Trace-driven integration: serialize a synthetic trace through the
//! FIU-style text format, parse it back, and drive both the Figure 3
//! chunking replay and the full FIDR system from the parsed records —
//! the path a user with real traces would take.

use bytes::Bytes;
use fidr::chunk::{replay_chunking, Lba};
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem};
use fidr::workload::{parse_trace, to_block_writes, write_trace, TraceOp, TraceRecord};

fn synthetic_trace(n: u64) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| TraceRecord {
            timestamp: i as f64 * 1e-4,
            op: if i % 5 == 4 {
                TraceOp::Read
            } else {
                TraceOp::Write
            },
            lba: (i * 7) % 256,
            blocks: 1 + (i % 3) as u32,
            // Every third write repeats content (dedup fodder).
            content: if i % 3 == 0 { 0xAAAA } else { 0x1000 + i },
        })
        .collect()
}

#[test]
fn text_roundtrip_preserves_every_record() {
    let trace = synthetic_trace(500);
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).unwrap();
    let parsed = parse_trace(buf.as_slice()).unwrap();
    assert_eq!(parsed.len(), trace.len());
    for (a, b) in parsed.iter().zip(&trace) {
        // Timestamps are serialized at microsecond precision.
        assert!((a.timestamp - b.timestamp).abs() < 1e-6);
        assert_eq!(
            (a.op, a.lba, a.blocks, a.content),
            (b.op, b.lba, b.blocks, b.content)
        );
    }
}

#[test]
fn parsed_trace_drives_chunking_replay() {
    let trace = synthetic_trace(2_000);
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).unwrap();
    let parsed = parse_trace(buf.as_slice()).unwrap();

    let writes = to_block_writes(&parsed);
    assert!(!writes.is_empty());
    let fine = replay_chunking(&writes, 1, 1024);
    let coarse = replay_chunking(&writes, 8, 1024);
    assert!(fine.dedup_ratio() > 0.0, "repeated content must dedup");
    assert!(
        coarse.total_io_blocks() > fine.total_io_blocks(),
        "32-KB chunking must not beat 4-KB on a scattered trace"
    );
}

#[test]
fn parsed_trace_drives_the_full_system() {
    let trace = synthetic_trace(600);
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).unwrap();
    let parsed = parse_trace(buf.as_slice()).unwrap();

    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 128 << 10,
        hash_batch: 16,
        ..FidrConfig::default()
    });
    let mut newest = std::collections::HashMap::new();
    for rec in &parsed {
        for b in 0..u64::from(rec.blocks) {
            let lba = Lba(rec.lba + b);
            match rec.op {
                TraceOp::Write => {
                    let content = rec.content.wrapping_add(b);
                    sys.write(lba, Bytes::from(gen.chunk(content, 4096)))
                        .unwrap();
                    newest.insert(lba, content);
                }
                TraceOp::Read => {
                    if let Some(&content) = newest.get(&lba) {
                        assert_eq!(sys.read(lba).unwrap(), gen.chunk(content, 4096));
                    }
                }
            }
        }
    }
    sys.flush().unwrap();
    for (&lba, &content) in &newest {
        assert_eq!(sys.read(lba).unwrap(), gen.chunk(content, 4096), "{lba}");
    }
    assert!(sys.stats().duplicate_chunks > 0, "trace content must dedup");
}

/// Paper §5.6: communication with the Cache HW-Engine is negligible —
/// "200 MB/s for 100 GB/s data reduction considering 8 byte-cache index
/// per 4 KB request" (0.2 % of client bytes; we charge both directions).
#[test]
fn cache_engine_pcie_traffic_is_negligible() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig::default());
    for i in 0..2_000u64 {
        sys.write(Lba(i), Bytes::from(gen.chunk(i % 400, 4096)))
            .unwrap();
    }
    sys.flush().unwrap();
    let ledger = sys.ledger();
    let engine_bytes = ledger.pcie_bytes(fidr::hwsim::PcieLink::HostCacheEngine);
    let fraction = engine_bytes as f64 / ledger.client_bytes() as f64;
    assert!(
        fraction < 0.006,
        "engine control traffic {:.4}% should be ~0.4% of client bytes",
        fraction * 100.0
    );
    assert!(engine_bytes > 0);
}
