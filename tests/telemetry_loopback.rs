//! End-to-end loopback tests of the live telemetry plane: in-band
//! `StatsRequest` scraping under concurrent traffic, monotonically
//! advancing time-series samples, slow-request exemplars under an
//! injected latency fault, and the drain-export byte-identity contract
//! (the sampler must never perturb the `fidr.metrics.v1` export).

use fidr::client::{run_traffic, StorageClient};
use fidr::core::FidrConfig;
use fidr::metrics::MetricsSnapshot;
use fidr::nic::protocol::StatsFormat;
use fidr::server::{Server, ServerConfig, StallFault};
use fidr::trace::{parse_json, Json, TraceConfig};
use std::time::Duration;

/// A small, fast backend so batches and container seals actually happen
/// within a few hundred ops.
fn small_system() -> FidrConfig {
    FidrConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 64 << 10,
        hash_batch: 8,
        ..FidrConfig::default()
    }
}

fn num(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_num).unwrap_or(f64::NAN)
}

/// The highest sample `seq` in one scraped timeseries document, if any.
fn max_seq(doc: &Json) -> Option<u64> {
    doc.get("samples")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|s| num(s, "seq") as u64)
        .max()
}

#[test]
fn scrapes_advance_monotonically_and_catch_slow_exemplars() {
    let handle = Server::spawn(ServerConfig {
        system: FidrConfig {
            trace: TraceConfig::enabled(),
            ..small_system()
        },
        // Fast sampling so a short test sees many ticks.
        sample_ms: 10,
        // run_traffic spaces connections 1_000_000 LBAs apart; shift 18
        // (256-Ki-LBA streams) keeps the two connections in distinct
        // stream rollups.
        stream_shift: 18,
        top_streams: 4,
        // Every 40th write sleeps 30 ms — far past the p99 threshold the
        // first 32 fast requests arm, so exemplars are guaranteed.
        stall: Some(StallFault {
            every: 40,
            millis: 30,
        }),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.local_addr();

    let traffic = std::thread::spawn(move || run_traffic(addr, 2, 120, 7).expect("traffic"));

    // Scrape in-band from a separate connection while traffic runs: the
    // visible sample frontier must only ever move forward.
    let mut scraper = StorageClient::connect(addr).expect("connect scraper");
    let mut frontiers: Vec<u64> = Vec::new();
    while !traffic.is_finished() {
        let body = scraper
            .scrape(StatsFormat::Json)
            .expect("scrape mid-traffic");
        let doc = parse_json(std::str::from_utf8(&body).expect("utf-8")).expect("scrape JSON");
        if let Some(seq) = max_seq(&doc) {
            frontiers.push(seq);
        }
        std::thread::sleep(Duration::from_millis(15));
    }
    let report = traffic.join().expect("traffic thread");
    assert_eq!(report.verify_failures, 0);

    // Let at least one more tick land after the last write, then take
    // the final document.
    std::thread::sleep(Duration::from_millis(40));
    let body = scraper.scrape(StatsFormat::Json).expect("final scrape");
    let doc = parse_json(std::str::from_utf8(&body).expect("utf-8")).expect("scrape JSON");

    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("fidr.timeseries.v1")
    );
    // Samples advance monotonically: strictly increasing seq and
    // nondecreasing timestamps within a document, and the frontier seen
    // across scrapes never moves backwards.
    let samples = doc.get("samples").and_then(Json::as_arr).expect("samples");
    assert!(
        samples.len() >= 2,
        "expected several ticks, got {samples:?}"
    );
    for pair in samples.windows(2) {
        assert!(num(&pair[0], "seq") < num(&pair[1], "seq"));
        assert!(num(&pair[0], "t_ms") <= num(&pair[1], "t_ms"));
    }
    for pair in frontiers.windows(2) {
        assert!(pair[0] <= pair[1], "sample frontier moved backwards");
    }
    let final_seq = max_seq(&doc).expect("final samples");
    assert!(
        frontiers.first().copied().unwrap_or(0) < final_seq,
        "sample frontier never advanced: {frontiers:?} -> {final_seq}"
    );

    // The injected stalls must surface as slow exemplars past the armed
    // p99 threshold.
    let exemplars = doc
        .get("exemplars")
        .and_then(Json::as_arr)
        .expect("exemplars");
    assert!(!exemplars.is_empty(), "no slow exemplar captured");
    for e in exemplars {
        assert!(num(e, "latency_us") > num(e, "threshold_us"));
        assert!(e.get("spans").and_then(Json::as_arr).is_some());
    }

    // Per-stream rollups: both connections' streams are visible and the
    // totals add up to real traffic.
    let streams = doc.get("streams").and_then(Json::as_arr).expect("streams");
    assert!(streams.len() >= 2, "expected two streams, got {streams:?}");
    let totals = doc.get("totals").expect("totals");
    assert!(num(totals, "writes") >= f64::from(u8::from(report.writes > 0)));
    assert_eq!(num(totals, "writes") as u64, report.writes);
    assert_eq!(num(totals, "reads") as u64, report.reads);

    // The Prometheus rendering of the same plane serves in-band too.
    let prom = scraper
        .scrape(StatsFormat::Prometheus)
        .expect("prometheus scrape");
    let prom = std::str::from_utf8(&prom).expect("utf-8");
    assert!(prom.contains("# TYPE fidr_server_ops_write_count counter"));
    assert!(prom.contains("fidr_server_window_ops_rate"));
    assert!(prom.contains("fidr_server_stream_writes{stream="));

    handle.shutdown().expect("drain");
}

/// The `fidr.metrics.v1` drain export, minus the `pool.*` block: pool
/// counters carry wall-clock busy/idle times and the worker count
/// itself, which legitimately differ across `--workers`.
fn deterministic_drain_json(metrics: &MetricsSnapshot) -> String {
    metrics
        .to_json()
        .lines()
        .filter(|line| !line.contains("\"pool."))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn sampler_and_workers_never_change_the_drain_export() {
    let run = |workers: usize, sample_ms: u64| {
        let handle = Server::spawn(ServerConfig {
            system: FidrConfig {
                workers,
                ..small_system()
            },
            sample_ms,
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let report = run_traffic(handle.local_addr(), 1, 90, 5).expect("traffic");
        assert_eq!(report.verify_failures, 0);
        deterministic_drain_json(&handle.shutdown().expect("drain"))
    };
    // Sampler off + serial pipeline vs sampler hot + 4 workers: the
    // telemetry plane is read-only over the merged metrics, so the
    // drain-time export must stay byte-identical.
    let baseline = run(1, 0);
    let sampled = run(4, 10);
    assert_eq!(
        baseline, sampled,
        "sampler or worker count leaked into the drain export"
    );
}
