//! The measured-run → DES-pipeline conversion must agree with the
//! analytic projection: the pipeline's capacity is the projection's
//! achievable throughput, and its bottleneck is the same resource.

use fidr::hwsim::PlatformSpec;
use fidr::workload::WorkloadSpec;
use fidr::{run_workload, RunConfig, SystemVariant};

#[test]
fn pipeline_capacity_equals_projection() {
    let platform = PlatformSpec::default();
    for variant in [SystemVariant::Baseline, SystemVariant::FidrFull] {
        let r = run_workload(variant, WorkloadSpec::write_h(4_000), RunConfig::default());
        let analytic = r.achievable_gbps(&platform);
        let capacity = r.to_write_pipeline(&platform).capacity_hz() * 4096.0 / 1e9;
        assert!(
            (capacity - analytic).abs() / analytic < 0.02,
            "{}: DES {capacity:.2} vs analytic {analytic:.2}",
            variant.label()
        );
    }
}

#[test]
fn pipeline_saturates_under_overload() {
    let platform = PlatformSpec::default();
    let r = run_workload(
        SystemVariant::FidrFull,
        WorkloadSpec::write_m(4_000),
        RunConfig::default(),
    );
    let pipeline = r.to_write_pipeline(&platform);
    let result = pipeline.run(20_000, pipeline.capacity_hz() * 2.0);
    assert!(
        (result.throughput_hz - pipeline.capacity_hz()).abs() / pipeline.capacity_hz() < 0.01,
        "overload must pin at capacity"
    );
}
