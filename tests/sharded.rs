//! Multi-socket sharded runs: parallel shards are independent and their
//! capacities aggregate linearly (§3.2's per-socket model).

use fidr::hwsim::{PlatformSpec, TimeModel};
use fidr::workload::WorkloadSpec;
use fidr::{run_workload, run_workload_sharded, shard_seed, RunConfig, SystemVariant};

#[test]
fn shards_aggregate_linearly() {
    let platform = PlatformSpec::default();
    let time = TimeModel::default();
    let spec = WorkloadSpec::write_h(3_000);
    let one = run_workload_sharded(
        SystemVariant::FidrFull,
        spec.clone(),
        RunConfig::default(),
        1,
    );
    let two = run_workload_sharded(SystemVariant::FidrFull, spec, RunConfig::default(), 2);
    assert_eq!(one.shards.len(), 1);
    assert_eq!(two.shards.len(), 2);
    let ratio = two.aggregate_gbps(&platform) / one.aggregate_gbps(&platform);
    assert!((ratio - 2.0).abs() < 0.1, "2-shard scaling {ratio:.3}");
    // The modelled (deterministic) throughput must also scale: twice the
    // bytes over roughly the same slowest-shard modelled time. Bound it
    // with real margins rather than just "positive".
    let modelled_ratio = two.modelled_gbps(&time) / one.modelled_gbps(&time);
    assert!(
        (1.5..=2.5).contains(&modelled_ratio),
        "modelled 2-shard scaling {modelled_ratio:.3}"
    );
    // Wall-clock throughput stays available as a diagnostic.
    assert!(two.functional_gbps() > 0.0);
}

#[test]
fn modelled_throughput_is_deterministic() {
    let time = TimeModel::default();
    let spec = WorkloadSpec::write_m(1_500);
    let a = run_workload_sharded(
        SystemVariant::FidrFull,
        spec.clone(),
        RunConfig::default(),
        2,
    );
    let b = run_workload_sharded(SystemVariant::FidrFull, spec, RunConfig::default(), 2);
    // Bitwise repeatability — the wall-clock `functional_gbps` cannot
    // promise this, which is why results must use the modelled number.
    assert_eq!(
        a.modelled_gbps(&time).to_bits(),
        b.modelled_gbps(&time).to_bits()
    );
    assert!(a.modelled_seconds(&time) > 0.0);
}

#[test]
fn single_shard_matches_direct_run() {
    let platform = PlatformSpec::default();
    let spec = WorkloadSpec::write_m(2_000);
    let direct = run_workload(SystemVariant::Baseline, spec.clone(), RunConfig::default());
    let sharded = run_workload_sharded(SystemVariant::Baseline, spec, RunConfig::default(), 1);
    // Shard 0 keeps the base seed, so the runs are identical.
    assert_eq!(
        direct.ledger.client_bytes(),
        sharded.shards[0].ledger.client_bytes()
    );
    let a = direct.achievable_gbps(&platform);
    let b = sharded.shards[0].achievable_gbps(&platform);
    assert!((a - b).abs() < 1e-9);
    // Identical down to the exported metrics snapshot, byte for byte.
    assert_eq!(
        direct.metrics.to_json(),
        sharded.shards[0].metrics.to_json()
    );
}

#[test]
fn shards_use_distinct_request_streams() {
    let r = run_workload_sharded(
        SystemVariant::FidrFull,
        WorkloadSpec::write_l(2_000),
        RunConfig::default(),
        2,
    );
    // Different seeds → different dedup outcomes (almost surely).
    assert_ne!(
        r.shards[0].reduction.unique_chunks,
        r.shards[1].reduction.unique_chunks
    );
}

#[test]
fn adjacent_base_seeds_produce_disjoint_shard_seed_sets() {
    // Regression: the old striping `seed + i * 0x9E37_79B9` (32-bit
    // constant) made base seed `s + 0x9E37_79B9`'s shard 0 collide with
    // base seed `s`'s shard 1 — two "independent" experiments shared a
    // client stream. The SplitMix64 derivation must keep the shard-seed
    // sets of nearby base seeds disjoint.
    const SHARDS: usize = 8;
    for base in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX - 3] {
        let mut seen = std::collections::HashSet::new();
        for delta in 0..4u64 {
            for shard in 0..SHARDS {
                assert!(
                    seen.insert(shard_seed(base.wrapping_add(delta), shard)),
                    "collision at base {base}+{delta}, shard {shard}"
                );
            }
        }
    }
    // The specific historical collision, pinned.
    let s = 7u64;
    assert_ne!(shard_seed(s.wrapping_add(0x9E37_79B9), 0), shard_seed(s, 1));
    // Shard 0 still reproduces the direct run's seed.
    assert_eq!(shard_seed(12345, 0), 12345);
}
