//! Multi-socket sharded runs: parallel shards are independent and their
//! capacities aggregate linearly (§3.2's per-socket model).

use fidr::hwsim::PlatformSpec;
use fidr::workload::WorkloadSpec;
use fidr::{run_workload, run_workload_sharded, RunConfig, SystemVariant};

#[test]
fn shards_aggregate_linearly() {
    let platform = PlatformSpec::default();
    let spec = WorkloadSpec::write_h(3_000);
    let one = run_workload_sharded(
        SystemVariant::FidrFull,
        spec.clone(),
        RunConfig::default(),
        1,
    );
    let two = run_workload_sharded(SystemVariant::FidrFull, spec, RunConfig::default(), 2);
    assert_eq!(one.shards.len(), 1);
    assert_eq!(two.shards.len(), 2);
    let ratio = two.aggregate_gbps(&platform) / one.aggregate_gbps(&platform);
    assert!((ratio - 2.0).abs() < 0.1, "2-shard scaling {ratio:.3}");
    assert!(two.functional_gbps() > 0.0);
}

#[test]
fn single_shard_matches_direct_run() {
    let platform = PlatformSpec::default();
    let spec = WorkloadSpec::write_m(2_000);
    let direct = run_workload(SystemVariant::Baseline, spec.clone(), RunConfig::default());
    let sharded = run_workload_sharded(SystemVariant::Baseline, spec, RunConfig::default(), 1);
    // Shard 0 keeps the base seed, so the runs are identical.
    assert_eq!(
        direct.ledger.client_bytes(),
        sharded.shards[0].ledger.client_bytes()
    );
    let a = direct.achievable_gbps(&platform);
    let b = sharded.shards[0].achievable_gbps(&platform);
    assert!((a - b).abs() < 1e-9);
}

#[test]
fn shards_use_distinct_request_streams() {
    let r = run_workload_sharded(
        SystemVariant::FidrFull,
        WorkloadSpec::write_l(2_000),
        RunConfig::default(),
        2,
    );
    // Different seeds → different dedup outcomes (almost surely).
    assert_ne!(
        r.shards[0].reduction.unique_chunks,
        r.shards[1].reduction.unique_chunks
    );
}
