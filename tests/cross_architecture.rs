//! Cross-architecture migration: the snapshot format is shared, so a
//! volume checkpointed under the CIDR-style baseline restores under FIDR
//! (and back) with identical contents — the upgrade path a real operator
//! would take when swapping the control plane.

use bytes::Bytes;
use fidr::baseline::{BaselineConfig, BaselineSystem};
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem, Snapshot};

fn baseline_cfg() -> BaselineConfig {
    BaselineConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 64 << 10,
        ..BaselineConfig::default()
    }
}

fn fidr_cfg() -> FidrConfig {
    FidrConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 64 << 10,
        hash_batch: 16,
        ..FidrConfig::default()
    }
}

#[test]
fn upgrade_baseline_volume_to_fidr() {
    let gen = ContentGenerator::new(0.5);
    let mut old = BaselineSystem::new(baseline_cfg());
    for i in 0..300u64 {
        old.write(Lba(i), Bytes::from(gen.chunk(i % 60, 4096)))
            .unwrap();
    }
    let image = old.checkpoint().unwrap().encode();
    drop(old);

    let mut new = FidrSystem::restore(fidr_cfg(), Snapshot::decode(&image).unwrap());
    for i in 0..300u64 {
        assert_eq!(
            new.read(Lba(i)).unwrap(),
            gen.chunk(i % 60, 4096),
            "LBA {i}"
        );
    }
    // The upgraded system keeps deduplicating against migrated content.
    new.write(Lba(9000), Bytes::from(gen.chunk(0, 4096)))
        .unwrap();
    new.flush().unwrap();
    assert_eq!(new.stats().duplicate_chunks, 1);
    assert_eq!(new.stats().unique_chunks, 0);
}

#[test]
fn downgrade_fidr_volume_to_baseline() {
    let gen = ContentGenerator::new(0.5);
    let mut new = FidrSystem::new(fidr_cfg());
    for i in 0..300u64 {
        new.write(Lba(i), Bytes::from(gen.chunk(1000 + i % 40, 4096)))
            .unwrap();
    }
    let snapshot = new.checkpoint().unwrap();
    drop(new);

    let mut old = BaselineSystem::restore(baseline_cfg(), snapshot);
    for i in 0..300u64 {
        assert_eq!(
            old.read(Lba(i)).unwrap(),
            gen.chunk(1000 + i % 40, 4096),
            "LBA {i}"
        );
    }
    old.write(Lba(9000), Bytes::from(gen.chunk(1000, 4096)))
        .unwrap();
    assert_eq!(old.stats().duplicate_chunks, 1);
}
