//! The paper's introductory reduction claims, verified end-to-end:
//! "Data deduplication and compression have been shown to remove the data
//! redundancies in the real systems by over 50% for database datasets and
//! over 80% for virtual desktop infrastructures" (§1).

use fidr::workload::WorkloadSpec;
use fidr::{run_workload, RunConfig, SystemVariant};

#[test]
fn vdi_saves_over_80_percent() {
    let r = run_workload(
        SystemVariant::FidrFull,
        WorkloadSpec::vdi(6_000),
        RunConfig::default(),
    );
    let saved = r.reduction.bytes_saved_fraction();
    assert!(saved > 0.80, "VDI saved only {:.1}%", saved * 100.0);
}

#[test]
fn database_saves_over_50_percent() {
    let r = run_workload(
        SystemVariant::FidrFull,
        WorkloadSpec::database(6_000),
        RunConfig::default(),
    );
    let saved = r.reduction.bytes_saved_fraction();
    assert!(saved > 0.50, "database saved only {:.1}%", saved * 100.0);
    assert!(saved < 0.80, "database should save less than VDI");
}

#[test]
fn both_architectures_agree_on_savings() {
    for spec in [WorkloadSpec::vdi(4_000), WorkloadSpec::database(4_000)] {
        let base = run_workload(SystemVariant::Baseline, spec.clone(), RunConfig::default());
        let fidr = run_workload(SystemVariant::FidrFull, spec, RunConfig::default());
        let delta =
            (base.reduction.bytes_saved_fraction() - fidr.reduction.bytes_saved_fraction()).abs();
        assert!(delta < 0.01, "architectures disagree by {delta}");
    }
}
