//! Span tracing end to end: nesting through the real pipelines,
//! byte-identical seeded exports, bounded-ring drop accounting, and spans
//! on error paths. Tracing runs on modelled time only, so every assertion
//! here is bit-reproducible.

use bytes::Bytes;
use fidr::baseline::{BaselineConfig, BaselineSystem};
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem};
use fidr::experiment::{run_workload, RunConfig, SystemVariant};
use fidr::faults::FaultPlan;
use fidr::trace::{chrome_trace_json, validate_chrome_trace, AttrValue, SpanRecord, TraceConfig};
use fidr::workload::WorkloadSpec;

fn chunk(gen: &ContentGenerator, tag: u64) -> Bytes {
    Bytes::from(gen.chunk(tag, 4096))
}

fn traced_cfg() -> FidrConfig {
    FidrConfig {
        trace: TraceConfig::enabled(),
        ..FidrConfig::default()
    }
}

fn find_root<'a>(spans: &'a [SpanRecord], name: &str) -> &'a SpanRecord {
    spans
        .iter()
        .find(|s| s.name == name && s.parent.is_none())
        .unwrap_or_else(|| panic!("no root {name} span"))
}

fn children_of<'a>(spans: &'a [SpanRecord], parent: &SpanRecord) -> Vec<&'a SpanRecord> {
    spans
        .iter()
        .filter(|s| s.parent == Some(parent.id))
        .collect()
}

/// A traced write lands as a root `write` span whose pipeline stages are
/// child spans nested inside the parent's time window.
#[test]
fn write_and_read_spans_nest_stage_children() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig {
        hash_batch: 1, // commit on every write so one op shows all stages
        trace: TraceConfig::enabled(),
        ..FidrConfig::default()
    });
    sys.write(Lba(7), chunk(&gen, 1)).unwrap();
    sys.flush().unwrap();
    let _ = sys.read(Lba(7)).unwrap();

    let spans = sys.tracer().spans();
    let write = find_root(&spans, "write");
    let kids = children_of(&spans, write);
    for stage in ["nic", "hash", "cache"] {
        let child = kids
            .iter()
            .find(|s| s.name == stage)
            .unwrap_or_else(|| panic!("write missing {stage} child"));
        assert!(child.start_ns >= write.start_ns && child.end_ns <= write.end_ns);
    }
    // FIDR batches dedup decisions, so `dedup_hit` rides on the per-chunk
    // `commit` child rather than the root write span.
    let commit = kids
        .iter()
        .find(|s| s.name == "commit")
        .expect("write missing commit child");
    assert!(
        matches!(commit.attr("dedup_hit"), Some(AttrValue::Bool(false))),
        "first write of fresh content must be unique"
    );

    let read = find_root(&spans, "read");
    let kids = children_of(&spans, read);
    let ssd = kids.iter().find(|s| s.name == "ssd").expect("ssd child");
    assert!(matches!(ssd.attr("bytes"), Some(AttrValue::U64(b)) if *b > 0));
    assert!(
        kids.iter().any(|s| s.name == "compress"),
        "read must decompress"
    );
    // Modelled clocks are monotone: no span may end before it starts.
    assert!(spans.iter().all(|s| s.end_ns >= s.start_ns));
}

/// The same seeded workload exports byte-identical Chrome-trace JSON and
/// byte-identical metrics JSON on every run.
#[test]
fn same_seed_runs_export_byte_identical_json() {
    let run = || {
        run_workload(
            SystemVariant::FidrFull,
            WorkloadSpec::read_mixed(600),
            RunConfig {
                trace: TraceConfig::enabled(),
                ..RunConfig::default()
            },
        )
    };
    let a = run();
    let b = run();
    let ja = chrome_trace_json(&a.spans);
    let jb = chrome_trace_json(&b.spans);
    assert_eq!(ja, jb, "seeded span exports must be byte-identical");
    let events = validate_chrome_trace(&ja).expect("exported trace must validate");
    assert_eq!(events, a.spans.len());
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "seeded metrics JSON must be byte-identical"
    );
}

/// A small ring drops the oldest spans, counts every drop, and still feeds
/// the critical-path analyzer with every op (it accumulates at span close,
/// before the ring).
#[test]
fn bounded_ring_drops_are_counted_not_silent() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig {
        trace: TraceConfig::with_capacity(32),
        ..FidrConfig::default()
    });
    let writes = 200u64;
    for i in 0..writes {
        sys.write(Lba(i), chunk(&gen, i)).unwrap();
    }
    let tracer = sys.tracer();
    assert_eq!(tracer.spans().len(), 32, "ring keeps exactly its capacity");
    assert!(tracer.dropped() > 0);
    assert_eq!(tracer.recorded(), tracer.dropped() + 32);

    let m = sys.metrics();
    assert_eq!(
        m.counter("trace.dropped_spans"),
        Some(sys.tracer().dropped())
    );
    assert_eq!(
        m.counter("trace.spans.count"),
        Some(sys.tracer().recorded())
    );

    let report = sys.tracer().critical_path();
    let write_class = report.class("write").expect("write class");
    assert_eq!(
        write_class.ops, writes,
        "analyzer must see ops the ring dropped"
    );
}

/// Failed ops still produce spans — with an `error` attribute naming the
/// failure kind — rather than vanishing from the trace.
#[test]
fn error_paths_emit_spans_with_error_attrs() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(traced_cfg());
    assert!(sys.read(Lba(99)).is_err());
    let spans = sys.tracer().spans();
    let read = find_root(&spans, "read");
    assert!(
        matches!(read.attr("error"), Some(AttrValue::Str(s)) if *s == "not_mapped"),
        "unmapped read span must carry error=not_mapped, got {:?}",
        read.attr("error")
    );

    // Transient read corruption heals via checksum re-reads; the ssd span
    // records the extra attempts instead of disappearing.
    let plan = FaultPlan::parse("seed=11,corrupt=0.6").unwrap();
    let mut sys = FidrSystem::new(FidrConfig {
        faults: plan,
        trace: TraceConfig::enabled(),
        ..FidrConfig::default()
    });
    for i in 0..32u64 {
        sys.write(Lba(i), chunk(&gen, 1000 + i)).unwrap();
    }
    sys.flush().unwrap();
    for i in 0..32u64 {
        let _ = sys.read(Lba(i));
    }
    let spans = sys.tracer().spans();
    let retried = spans
        .iter()
        .filter(|s| s.name == "ssd" && s.attr("retries").is_some())
        .count();
    assert!(
        retried > 0,
        "corrupt reads must surface as ssd spans with a retries attr"
    );
    // Chrome export stays well-formed even with error attrs present.
    validate_chrome_trace(&sys.tracer().export_chrome_json()).unwrap();
}

/// The default (disabled) tracer records nothing and reports zero drops,
/// so always-on instrumentation costs nothing when unused.
#[test]
fn disabled_tracer_is_a_no_op() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig::default());
    for i in 0..16u64 {
        sys.write(Lba(i), chunk(&gen, i)).unwrap();
    }
    let tracer = sys.tracer();
    assert!(!tracer.is_enabled());
    assert!(tracer.spans().is_empty());
    assert_eq!(tracer.recorded(), 0);
    assert_eq!(tracer.dropped(), 0);
    let m = sys.metrics();
    assert_eq!(m.counter("trace.spans.count"), Some(0));
    assert_eq!(m.counter("trace.dropped_spans"), Some(0));
}

/// The baseline system traces the same op classes with the same root
/// attributes, so critical paths are comparable across variants.
#[test]
fn baseline_spans_mirror_the_op_classes() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = BaselineSystem::new(BaselineConfig {
        trace: TraceConfig::enabled(),
        ..BaselineConfig::default()
    });
    sys.write(Lba(1), chunk(&gen, 1)).unwrap();
    sys.write(Lba(2), chunk(&gen, 1)).unwrap(); // duplicate content
    sys.flush().unwrap();
    let _ = sys.read(Lba(1)).unwrap();

    let spans = sys.tracer().spans();
    let dup = spans
        .iter()
        .filter(|s| s.name == "write" && s.parent.is_none())
        .find(|s| matches!(s.attr("dedup_hit"), Some(AttrValue::Bool(true))))
        .expect("second identical write must be a dedup hit");
    assert!(children_of(&spans, dup).iter().any(|s| s.name == "hash"));
    let read = find_root(&spans, "read");
    assert!(children_of(&spans, read).iter().any(|s| s.name == "ssd"));
    validate_chrome_trace(&sys.tracer().export_chrome_json()).unwrap();
}

/// `RunReport::critical_path` breaks both reads and writes into stages
/// whose shares cover most of the op and whose percentiles are ordered.
#[test]
fn critical_path_reports_read_and_write_breakdowns() {
    let r = run_workload(
        SystemVariant::FidrFull,
        WorkloadSpec::read_mixed(800),
        RunConfig {
            trace: TraceConfig::enabled(),
            ..RunConfig::default()
        },
    );
    for class in ["write", "read"] {
        let c = r
            .critical_path
            .class(class)
            .unwrap_or_else(|| panic!("no {class} class"));
        assert!(c.ops > 0);
        assert!(!c.stages.is_empty(), "{class} has no stage breakdown");
        let total_share: f64 = c.stages.iter().map(|s| s.share).sum();
        assert!(
            (0.99..=1.01).contains(&total_share),
            "{class} stage shares sum to {total_share:.3}, want ~1"
        );
        assert!(c.p50_ns <= c.p99_ns && c.p99_ns <= c.max_ns);
        assert!(
            !c.longest_chain.is_empty(),
            "{class} must expose its longest serial chain"
        );
        // The rendered report names the class for the CLI to print.
        assert!(format!("{}", r.critical_path).contains(class));
    }
}
