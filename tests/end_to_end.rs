//! End-to-end integration: every Table 3 workload runs through both
//! architectures with full read-back verification — each LBA must return
//! the latest content written to it, through the real chunk → hash →
//! dedup → compress → container → SSD → decompress pipeline.

use bytes::Bytes;
use fidr::baseline::{BaselineConfig, BaselineSystem};
use fidr::chunk::Lba;
use fidr::core::{CacheMode, FidrConfig, FidrSystem};
use fidr::trace::chrome_trace_json;
use fidr::workload::{Request, Workload, WorkloadSpec};
use fidr::{run_workload, RunConfig, SystemVariant};
use std::collections::HashMap;

const OPS: usize = 3_000;

fn specs() -> Vec<WorkloadSpec> {
    WorkloadSpec::table3(OPS)
}

#[test]
fn baseline_serves_latest_content_for_all_workloads() {
    for spec in specs() {
        let name = spec.name.clone();
        let mut sys = BaselineSystem::new(BaselineConfig {
            cache_lines: 512,
            table_buckets: 1 << 13,
            container_threshold: 256 << 10,
            ..BaselineConfig::default()
        });
        let mut expected: HashMap<Lba, Bytes> = HashMap::new();
        for req in Workload::new(spec) {
            match req {
                Request::Write { lba, data } => {
                    sys.write(lba, data.clone()).unwrap();
                    expected.insert(lba, data);
                }
                Request::Read { lba } => {
                    let got = sys.read(lba).unwrap();
                    assert_eq!(got, expected[&lba].to_vec(), "{name}: mid-run read {lba}");
                }
            }
        }
        sys.flush().unwrap();
        for (lba, data) in &expected {
            assert_eq!(
                sys.read(*lba).unwrap(),
                data.to_vec(),
                "{name}: final read {lba}"
            );
        }
        // Reduction sanity: dedup must be within a few points of target.
        let measured = sys.stats().dedup_ratio();
        assert!(
            measured > 0.2,
            "{name}: dedup ratio {measured} suspiciously low"
        );
    }
}

#[test]
fn fidr_serves_latest_content_for_all_workloads() {
    for spec in specs() {
        let name = spec.name.clone();
        let mut sys = FidrSystem::new(FidrConfig {
            cache_lines: 512,
            table_buckets: 1 << 13,
            container_threshold: 256 << 10,
            hash_batch: 32,
            cache_mode: CacheMode::HwEngine { update_slots: 4 },
            ..FidrConfig::default()
        });
        let mut expected: HashMap<Lba, Bytes> = HashMap::new();
        for req in Workload::new(spec) {
            match req {
                Request::Write { lba, data } => {
                    sys.write(lba, data.clone()).unwrap();
                    expected.insert(lba, data);
                }
                Request::Read { lba } => {
                    let got = sys.read(lba).unwrap();
                    assert_eq!(got, expected[&lba].to_vec(), "{name}: mid-run read {lba}");
                }
            }
        }
        sys.flush().unwrap();
        for (lba, data) in &expected {
            assert_eq!(
                sys.read(*lba).unwrap(),
                data.to_vec(),
                "{name}: final read {lba}"
            );
        }
    }
}

#[test]
fn fidr_software_cache_variant_is_also_correct() {
    let spec = WorkloadSpec::write_m(OPS);
    let mut sys = FidrSystem::new(FidrConfig {
        cache_lines: 512,
        table_buckets: 1 << 13,
        container_threshold: 256 << 10,
        hash_batch: 32,
        cache_mode: CacheMode::Software,
        ..FidrConfig::default()
    });
    let mut expected: HashMap<Lba, Bytes> = HashMap::new();
    for req in Workload::new(spec) {
        if let Request::Write { lba, data } = req {
            sys.write(lba, data.clone()).unwrap();
            expected.insert(lba, data);
        }
    }
    sys.flush().unwrap();
    for (lba, data) in &expected {
        assert_eq!(sys.read(*lba).unwrap(), data.to_vec());
    }
}

/// The determinism contract of the parallel pipeline: for a fixed seed,
/// the `fidr.metrics.v1` and `fidr.spans.v1` exports are byte-identical
/// regardless of worker count — workers change wall-clock only. Runs
/// with the cache sharded (4 ways) so the parallel shard-owned lookup
/// path is actually exercised, for both the FIDR variants and the
/// baseline's batched write path.
#[test]
fn worker_count_never_changes_metrics_or_spans_exports() {
    let spec = WorkloadSpec::write_h(OPS);
    for variant in [
        SystemVariant::FidrFull,
        SystemVariant::FidrNicP2p,
        SystemVariant::Baseline,
    ] {
        let run_with = |workers: usize| {
            run_workload(
                variant,
                spec.clone(),
                RunConfig {
                    workers,
                    cache_shards: 4,
                    trace: fidr::trace::TraceConfig::enabled(),
                    ..RunConfig::default()
                },
            )
        };
        // 1 (serial path, no pool), 4 (pool, one shard per worker) and
        // 8 (pool wider than the 4 cache shards, so lookup jobs clamp
        // to the shard count while hashing fans wider) must all export
        // the same bytes.
        let serial = run_with(1);
        for workers in [4usize, 8] {
            let parallel = run_with(workers);
            assert_eq!(
                serial.metrics.to_json(),
                parallel.metrics.to_json(),
                "{variant:?}: metrics export must not depend on --workers {workers}"
            );
            assert_eq!(
                chrome_trace_json(&serial.spans),
                chrome_trace_json(&parallel.spans),
                "{variant:?}: spans export must not depend on --workers {workers}"
            );
        }
    }
}
