//! Multi-chunk client requests: the chunking front end (§2.1.1) splits
//! large aligned writes into 4-KB chunks; `read_range` reassembles them.

use bytes::Bytes;
use fidr::baseline::{BaselineConfig, BaselineSystem, SystemError};
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrError, FidrSystem};

fn big_request(gen: &ContentGenerator, base_seed: u64, chunks: usize) -> Bytes {
    let mut buf = Vec::with_capacity(chunks * 4096);
    for i in 0..chunks as u64 {
        buf.extend(gen.chunk(base_seed + i, 4096));
    }
    Bytes::from(buf)
}

#[test]
fn fidr_large_write_roundtrips() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig::default());
    let req = big_request(&gen, 100, 16); // 64-KB write
    let n = sys.write_request(Lba(8), req.clone()).unwrap();
    assert_eq!(n, 16);
    sys.flush().unwrap();
    assert_eq!(sys.read_range(Lba(8), 16).unwrap(), req.to_vec());
    // Interior chunks are individually addressable.
    assert_eq!(sys.read(Lba(11)).unwrap(), gen.chunk(103, 4096));
}

#[test]
fn baseline_large_write_roundtrips() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = BaselineSystem::new(BaselineConfig::default());
    let req = big_request(&gen, 500, 8);
    assert_eq!(sys.write_request(Lba(0), req.clone()).unwrap(), 8);
    sys.flush().unwrap();
    assert_eq!(sys.read_range(Lba(0), 8).unwrap(), req.to_vec());
}

#[test]
fn repeated_large_requests_dedup_per_chunk() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig::default());
    let req = big_request(&gen, 0, 8);
    sys.write_request(Lba(0), req.clone()).unwrap();
    // The same 32-KB payload at a different address: all chunks dedup.
    sys.write_request(Lba(100), req).unwrap();
    sys.flush().unwrap();
    assert_eq!(sys.stats().unique_chunks, 8);
    assert_eq!(sys.stats().duplicate_chunks, 8);
}

#[test]
fn ragged_requests_are_rejected() {
    let mut fidr = FidrSystem::new(FidrConfig::default());
    assert!(matches!(
        fidr.write_request(Lba(0), Bytes::from(vec![0u8; 6000])),
        Err(FidrError::BadChunkSize(6000))
    ));
    assert!(matches!(
        fidr.write_request(Lba(0), Bytes::new()),
        Err(FidrError::BadChunkSize(0))
    ));
    let mut base = BaselineSystem::new(BaselineConfig::default());
    assert!(matches!(
        base.write_request(Lba(0), Bytes::from(vec![0u8; 100])),
        Err(SystemError::BadChunkSize(100))
    ));
}
