//! Integrity scrub: clean stores verify end-to-end; verification
//! composes with GC, compaction and restore.

use bytes::Bytes;
use fidr::baseline::{BaselineConfig, BaselineSystem};
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem};

fn fidr_cfg() -> FidrConfig {
    FidrConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 64 << 10,
        hash_batch: 16,
        ..FidrConfig::default()
    }
}

#[test]
fn clean_stores_verify() {
    let gen = ContentGenerator::new(0.5);
    let mut fidr = FidrSystem::new(fidr_cfg());
    let mut base = BaselineSystem::new(BaselineConfig::default());
    for i in 0..200u64 {
        let data = Bytes::from(gen.chunk(i % 50, 4096));
        fidr.write(Lba(i), data.clone()).unwrap();
        base.write(Lba(i), data).unwrap();
    }
    fidr.flush().unwrap();
    base.flush().unwrap();
    assert_eq!(fidr.verify_integrity().unwrap(), 50);
    assert_eq!(base.verify_integrity().unwrap(), 50);
}

#[test]
fn scrub_survives_gc_and_compaction() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(fidr_cfg());
    for i in 0..128u64 {
        sys.write(Lba(i), Bytes::from(gen.chunk(i, 4096))).unwrap();
    }
    sys.flush().unwrap();
    for i in 0..96u64 {
        sys.write(Lba(i), Bytes::from(gen.chunk(500 + i, 4096)))
            .unwrap();
    }
    sys.flush().unwrap();
    sys.collect_garbage(0.5).unwrap();
    sys.flush().unwrap();
    assert_eq!(sys.verify_integrity().unwrap(), 128);
}

#[test]
fn scrub_survives_checkpoint_restore() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(fidr_cfg());
    for i in 0..100u64 {
        sys.write(Lba(i), Bytes::from(gen.chunk(i % 30, 4096)))
            .unwrap();
    }
    let snap = sys.checkpoint().unwrap();
    let mut restored = FidrSystem::restore(fidr_cfg(), snap);
    assert_eq!(restored.verify_integrity().unwrap(), 30);
}

#[test]
fn scrub_detects_injected_corruption() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig {
        container_threshold: 32 << 10,
        ..fidr_cfg()
    });
    for i in 0..64u64 {
        sys.write(Lba(i), Bytes::from(gen.chunk(i, 4096))).unwrap();
    }
    sys.flush().unwrap();
    assert!(sys.stats().containers_sealed >= 1);
    assert!(sys.verify_integrity().is_ok());

    assert!(sys.inject_data_corruption(0, 100));
    let scrub = sys.verify_integrity();
    assert!(
        scrub.is_err(),
        "scrub must detect the flipped bit: {scrub:?}"
    );
}

#[test]
fn baseline_scrub_detects_injected_corruption() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = BaselineSystem::new(BaselineConfig {
        container_threshold: 32 << 10,
        ..BaselineConfig::default()
    });
    for i in 0..64u64 {
        sys.write(Lba(i), Bytes::from(gen.chunk(500 + i, 4096)))
            .unwrap();
    }
    sys.flush().unwrap();
    assert!(sys.verify_integrity().is_ok());
    assert!(sys.inject_data_corruption(0, 64));
    assert!(sys.verify_integrity().is_err());
}

#[test]
fn corrupting_nonexistent_location_is_reported() {
    let mut sys = FidrSystem::new(fidr_cfg());
    assert!(!sys.inject_data_corruption(999, 0));
}
