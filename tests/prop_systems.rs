//! Model-based property tests: arbitrary interleavings of writes,
//! overwrites, reads, flushes and GC passes against a plain `HashMap`
//! model. If either architecture ever returns anything but the newest
//! content — across batching, container sealing, cache eviction, NIC
//! coalescing, compaction — these shrink to a minimal counterexample.

use bytes::Bytes;
use fidr::baseline::{BaselineConfig, BaselineSystem};
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{CacheMode, FidrConfig, FidrSystem};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Write content id at an LBA (small spaces force overwrites/dups).
    Write {
        lba: u64,
        content: u64,
    },
    Read {
        lba: u64,
    },
    Flush,
    Gc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..24, 0u64..12).prop_map(|(lba, content)| Op::Write { lba, content }),
        2 => (0u64..24).prop_map(|lba| Op::Read { lba }),
        1 => Just(Op::Flush),
        1 => Just(Op::Gc),
    ]
}

fn payload(gen: &ContentGenerator, content: u64) -> Bytes {
    Bytes::from(gen.chunk(content, 4096))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fidr_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let gen = ContentGenerator::new(0.5);
        let mut sys = FidrSystem::new(FidrConfig {
            cache_lines: 8,
            table_buckets: 64,
            container_threshold: 16 << 10,
            hash_batch: 4,
            cache_mode: CacheMode::HwEngine { update_slots: 4 },
            hot_read_cache_chunks: 4,
            ..FidrConfig::default()
        });
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Write { lba, content } => {
                    sys.write(Lba(lba), payload(&gen, content)).unwrap();
                    model.insert(lba, content);
                }
                Op::Read { lba } => match model.get(&lba) {
                    Some(&content) => {
                        prop_assert_eq!(
                            sys.read(Lba(lba)).unwrap(),
                            payload(&gen, content).to_vec(),
                            "read of LBA {}", lba
                        );
                    }
                    None => prop_assert!(sys.read(Lba(lba)).is_err()),
                },
                Op::Flush => sys.flush().unwrap(),
                Op::Gc => {
                    sys.flush().unwrap();
                    sys.collect_garbage(0.6).unwrap();
                }
            }
        }
        sys.flush().unwrap();
        for (&lba, &content) in &model {
            prop_assert_eq!(
                sys.read(Lba(lba)).unwrap(),
                payload(&gen, content).to_vec(),
                "final read of LBA {}", lba
            );
        }
    }

    #[test]
    fn baseline_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let gen = ContentGenerator::new(0.5);
        let mut sys = BaselineSystem::new(BaselineConfig {
            cache_lines: 8,
            table_buckets: 64,
            container_threshold: 16 << 10,
            ..BaselineConfig::default()
        });
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Write { lba, content } => {
                    sys.write(Lba(lba), payload(&gen, content)).unwrap();
                    model.insert(lba, content);
                }
                Op::Read { lba } => match model.get(&lba) {
                    Some(&content) => {
                        prop_assert_eq!(
                            sys.read(Lba(lba)).unwrap(),
                            payload(&gen, content).to_vec(),
                            "read of LBA {}", lba
                        );
                    }
                    None => prop_assert!(sys.read(Lba(lba)).is_err()),
                },
                Op::Flush => sys.flush().unwrap(),
                Op::Gc => {
                    sys.flush().unwrap();
                    sys.collect_garbage(0.6).unwrap();
                }
            }
        }
        sys.flush().unwrap();
        for (&lba, &content) in &model {
            prop_assert_eq!(
                sys.read(Lba(lba)).unwrap(),
                payload(&gen, content).to_vec(),
                "final read of LBA {}", lba
            );
        }
    }

    /// Dedup invariant: unique chunks never exceed distinct content ids.
    #[test]
    fn unique_chunks_bounded_by_distinct_contents(
        ops in proptest::collection::vec((0u64..32, 0u64..8), 1..100)
    ) {
        let gen = ContentGenerator::new(0.5);
        let mut sys = FidrSystem::new(FidrConfig {
            cache_lines: 16,
            table_buckets: 128,
            container_threshold: 32 << 10,
            hash_batch: 8,
            ..FidrConfig::default()
        });
        let mut contents = std::collections::HashSet::new();
        for (lba, content) in ops {
            sys.write(Lba(lba), payload(&gen, content)).unwrap();
            contents.insert(content);
        }
        sys.flush().unwrap();
        prop_assert!(sys.stats().unique_chunks as usize <= contents.len());
        prop_assert_eq!(
            sys.stats().unique_chunks + sys.stats().duplicate_chunks
                + (sys.stats().write_chunks
                    - sys.stats().unique_chunks
                    - sys.stats().duplicate_chunks),
            sys.stats().write_chunks
        );
    }
}
