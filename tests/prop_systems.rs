//! Model-based property tests: arbitrary interleavings of writes,
//! overwrites, reads, deletes, flushes and GC passes against a plain
//! `HashMap` model. If either architecture ever returns anything but the newest
//! content — across batching, container sealing, cache eviction, NIC
//! coalescing, compaction — these shrink to a minimal counterexample.

use bytes::Bytes;
use fidr::baseline::{BaselineConfig, BaselineSystem};
use fidr::cache::TieredPolicyConfig;
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{CacheMode, FidrConfig, FidrSystem, TieredDedupConfig};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Write content id at an LBA (small spaces force overwrites/dups).
    Write {
        lba: u64,
        content: u64,
    },
    Read {
        lba: u64,
    },
    /// Unmap an LBA (succeeds iff mapped; the model mirrors the unmap).
    Delete {
        lba: u64,
    },
    Flush,
    Gc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..24, 0u64..12).prop_map(|(lba, content)| Op::Write { lba, content }),
        2 => (0u64..24).prop_map(|lba| Op::Read { lba }),
        2 => (0u64..24).prop_map(|lba| Op::Delete { lba }),
        1 => Just(Op::Flush),
        1 => Just(Op::Gc),
    ]
}

fn payload(gen: &ContentGenerator, content: u64) -> Bytes {
    Bytes::from(gen.chunk(content, 4096))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fidr_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let gen = ContentGenerator::new(0.5);
        let mut sys = FidrSystem::new(FidrConfig {
            cache_lines: 8,
            table_buckets: 64,
            container_threshold: 16 << 10,
            hash_batch: 4,
            cache_mode: CacheMode::HwEngine { update_slots: 4 },
            hot_read_cache_chunks: 4,
            ..FidrConfig::default()
        });
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Write { lba, content } => {
                    sys.write(Lba(lba), payload(&gen, content)).unwrap();
                    model.insert(lba, content);
                }
                Op::Read { lba } => match model.get(&lba) {
                    Some(&content) => {
                        prop_assert_eq!(
                            sys.read(Lba(lba)).unwrap(),
                            payload(&gen, content).to_vec(),
                            "read of LBA {}", lba
                        );
                    }
                    None => prop_assert!(sys.read(Lba(lba)).is_err()),
                },
                Op::Delete { lba } => match model.remove(&lba) {
                    Some(_) => sys.delete(Lba(lba)).unwrap(),
                    None => prop_assert!(sys.delete(Lba(lba)).is_err()),
                },
                Op::Flush => sys.flush().unwrap(),
                Op::Gc => {
                    sys.flush().unwrap();
                    sys.collect_garbage(0.6).unwrap();
                }
            }
        }
        sys.flush().unwrap();
        for (&lba, &content) in &model {
            prop_assert_eq!(
                sys.read(Lba(lba)).unwrap(),
                payload(&gen, content).to_vec(),
                "final read of LBA {}", lba
            );
        }
    }

    #[test]
    fn baseline_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let gen = ContentGenerator::new(0.5);
        let mut sys = BaselineSystem::new(BaselineConfig {
            cache_lines: 8,
            table_buckets: 64,
            container_threshold: 16 << 10,
            ..BaselineConfig::default()
        });
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Write { lba, content } => {
                    sys.write(Lba(lba), payload(&gen, content)).unwrap();
                    model.insert(lba, content);
                }
                Op::Read { lba } => match model.get(&lba) {
                    Some(&content) => {
                        prop_assert_eq!(
                            sys.read(Lba(lba)).unwrap(),
                            payload(&gen, content).to_vec(),
                            "read of LBA {}", lba
                        );
                    }
                    None => prop_assert!(sys.read(Lba(lba)).is_err()),
                },
                Op::Delete { lba } => match model.remove(&lba) {
                    Some(_) => sys.delete(Lba(lba)).unwrap(),
                    None => prop_assert!(sys.delete(Lba(lba)).is_err()),
                },
                Op::Flush => sys.flush().unwrap(),
                Op::Gc => {
                    sys.flush().unwrap();
                    sys.collect_garbage(0.6).unwrap();
                }
            }
        }
        sys.flush().unwrap();
        for (&lba, &content) in &model {
            prop_assert_eq!(
                sys.read(Lba(lba)).unwrap(),
                payload(&gen, content).to_vec(),
                "final read of LBA {}", lba
            );
        }
    }

    /// Tiered admission with every stream classified hot must be
    /// *byte-identical* to the flat cache — same reads, same metrics
    /// export — for any interleaving of writes, reads, flushes and GC.
    /// (`hot_threshold` 0.0 keeps all streams hot, so no write ever
    /// defers and the tier/scrub metrics stay unexported.)
    #[test]
    fn tiered_all_hot_matches_flat(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let gen = ContentGenerator::new(0.5);
        let base = FidrConfig {
            cache_lines: 8,
            table_buckets: 64,
            container_threshold: 16 << 10,
            hash_batch: 4,
            cache_mode: CacheMode::HwEngine { update_slots: 4 },
            ..FidrConfig::default()
        };
        let mut flat = FidrSystem::new(base.clone());
        let mut tiered = FidrSystem::new(FidrConfig {
            tiered: Some(TieredDedupConfig {
                policy: TieredPolicyConfig {
                    hot_threshold: 0.0,
                    min_observations: 0,
                    ..TieredPolicyConfig::default()
                },
                ..TieredDedupConfig::default()
            }),
            ..base
        });
        for op in ops {
            match op {
                Op::Write { lba, content } => {
                    flat.write(Lba(lba), payload(&gen, content)).unwrap();
                    tiered.write(Lba(lba), payload(&gen, content)).unwrap();
                }
                Op::Read { lba } => {
                    let (a, b) = (flat.read(Lba(lba)), tiered.read(Lba(lba)));
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "read of LBA {}", lba);
                    if let (Ok(a), Ok(b)) = (a, b) {
                        prop_assert_eq!(a, b, "read of LBA {}", lba);
                    }
                }
                Op::Delete { lba } => {
                    let (a, b) = (flat.delete(Lba(lba)), tiered.delete(Lba(lba)));
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "delete of LBA {}", lba);
                }
                Op::Flush => {
                    flat.flush().unwrap();
                    tiered.flush().unwrap();
                }
                Op::Gc => {
                    flat.flush().unwrap();
                    flat.collect_garbage(0.6).unwrap();
                    tiered.flush().unwrap();
                    tiered.collect_garbage(0.6).unwrap();
                }
            }
        }
        flat.flush().unwrap();
        tiered.flush().unwrap();
        prop_assert_eq!(flat.metrics().to_json(), tiered.metrics().to_json());
    }

    /// The other extreme: with every stream cold, every write defers and
    /// dedups through the scrubber — yet reads stay correct and the final
    /// reduction converges to exactly what inline dedup produces.
    /// Distinct LBAs keep overwrites out: an overwrite racing the
    /// scrubber legitimately diverges (the stale pre-filter drops the
    /// orphaned write instead of indexing it as a dedup target).
    #[test]
    fn tiered_all_cold_converges_to_flat_reduction(
        contents in proptest::collection::vec(0u64..12, 1..100)
    ) {
        let gen = ContentGenerator::new(0.5);
        let base = FidrConfig {
            cache_lines: 8,
            table_buckets: 64,
            container_threshold: 16 << 10,
            hash_batch: 4,
            cache_mode: CacheMode::HwEngine { update_slots: 4 },
            ..FidrConfig::default()
        };
        let mut flat = FidrSystem::new(base.clone());
        let mut tiered = FidrSystem::new(FidrConfig {
            tiered: Some(TieredDedupConfig {
                policy: TieredPolicyConfig {
                    hot_threshold: 1.1, // locality never reaches 110%
                    min_observations: 0,
                    ..TieredPolicyConfig::default()
                },
                scrub_batch: 8,
                ..TieredDedupConfig::default()
            }),
            ..base
        });
        for (i, &content) in contents.iter().enumerate() {
            flat.write(Lba(i as u64), payload(&gen, content)).unwrap();
            tiered.write(Lba(i as u64), payload(&gen, content)).unwrap();
        }
        flat.flush().unwrap();
        tiered.flush().unwrap();
        prop_assert_eq!(tiered.deferred_pending(), 0, "flush must drain the scrub queue");
        prop_assert_eq!(tiered.stats().unique_chunks, flat.stats().unique_chunks);
        prop_assert_eq!(tiered.stats().duplicate_chunks, flat.stats().duplicate_chunks);
        for (i, &content) in contents.iter().enumerate() {
            prop_assert_eq!(
                tiered.read(Lba(i as u64)).unwrap(),
                payload(&gen, content).to_vec(),
                "read of LBA {}", i
            );
        }
    }

    /// Dedup invariant: unique chunks never exceed distinct content ids.
    #[test]
    fn unique_chunks_bounded_by_distinct_contents(
        ops in proptest::collection::vec((0u64..32, 0u64..8), 1..100)
    ) {
        let gen = ContentGenerator::new(0.5);
        let mut sys = FidrSystem::new(FidrConfig {
            cache_lines: 16,
            table_buckets: 128,
            container_threshold: 32 << 10,
            hash_batch: 8,
            ..FidrConfig::default()
        });
        let mut contents = std::collections::HashSet::new();
        for (lba, content) in ops {
            sys.write(Lba(lba), payload(&gen, content)).unwrap();
            contents.insert(content);
        }
        sys.flush().unwrap();
        prop_assert!(sys.stats().unique_chunks as usize <= contents.len());
        prop_assert_eq!(
            sys.stats().unique_chunks + sys.stats().duplicate_chunks
                + (sys.stats().write_chunks
                    - sys.stats().unique_chunks
                    - sys.stats().duplicate_chunks),
            sys.stats().write_chunks
        );
    }
}
