//! Pipeline observability integration: drive a trace through the full
//! FIDR system and check that the `fidr.metrics.v1` snapshot covers
//! every pipeline stage with counters that agree with the independent
//! [`ReductionStats`]/[`CacheStats`] accounting.

use bytes::Bytes;
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem};
use fidr::metrics::MetricValue;
use fidr::workload::{parse_trace, write_trace, TraceOp, TraceRecord};
use fidr::{run_workload, RunConfig, SystemVariant};

fn synthetic_trace(n: u64) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| TraceRecord {
            timestamp: i as f64 * 1e-4,
            op: if i % 5 == 4 {
                TraceOp::Read
            } else {
                TraceOp::Write
            },
            lba: (i * 7) % 256,
            blocks: 1 + (i % 3) as u32,
            content: if i % 3 == 0 { 0xAAAA } else { 0x1000 + i },
        })
        .collect()
}

fn trace_driven_system() -> FidrSystem {
    let trace = synthetic_trace(600);
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).unwrap();
    let parsed = parse_trace(buf.as_slice()).unwrap();

    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 128 << 10,
        hash_batch: 16,
        ..FidrConfig::default()
    });
    let mut written = std::collections::HashSet::new();
    for rec in &parsed {
        for b in 0..u64::from(rec.blocks) {
            let lba = Lba(rec.lba + b);
            match rec.op {
                TraceOp::Write => {
                    let content = rec.content.wrapping_add(b);
                    sys.write(lba, Bytes::from(gen.chunk(content, 4096)))
                        .unwrap();
                    written.insert(lba);
                }
                TraceOp::Read => {
                    if written.contains(&lba) {
                        sys.read(lba).unwrap();
                    }
                }
            }
        }
    }
    sys.flush().unwrap();
    sys
}

#[test]
fn snapshot_covers_every_pipeline_stage() {
    let sys = trace_driven_system();
    let m = sys.metrics();

    // Latency (or distribution) histograms for at least five distinct
    // stages: NIC ingest, hashing, table-cache lookup, compression and
    // SSD I/O — plus the end-to-end system view.
    for name in [
        "nic.ingest.ns",
        "hash.batch.ns",
        "cache.lookup.ns",
        "compress.chunk.ns",
        "ssd.table.io.ns",
        "ssd.data.io.ns",
        "system.write.ns",
        "system.read.ns",
    ] {
        let h = m
            .histogram(name)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert!(h.count > 0, "{name} recorded no samples");
        assert!(
            h.p50 <= h.p95 && h.p95 <= h.p99,
            "{name} percentiles out of order"
        );
        assert!(
            h.min <= h.p50 && h.p99 <= h.max,
            "{name} percentiles out of range"
        );
    }
}

#[test]
fn snapshot_counters_agree_with_reduction_and_cache_stats() {
    let sys = trace_driven_system();
    let stats = sys.stats();
    let cache = sys.cache_stats();
    let m = sys.metrics();

    assert!(stats.duplicate_chunks > 0, "trace content must dedup");
    for (name, expected) in [
        ("reduction.write_chunks.count", stats.write_chunks),
        ("reduction.read_chunks.count", stats.read_chunks),
        ("reduction.duplicate_chunks.count", stats.duplicate_chunks),
        ("reduction.unique_chunks.count", stats.unique_chunks),
        ("reduction.raw.bytes", stats.raw_bytes),
        ("reduction.stored.bytes", stats.stored_bytes),
        ("cache.accesses.count", cache.accesses),
        ("cache.hits.count", cache.hits),
        ("cache.misses.count", cache.misses),
        ("hash.chunks_hashed.chunks", stats.write_chunks),
    ] {
        assert_eq!(m.counter(name), Some(expected), "{name}");
    }

    // Cross-checks between stages: every cache lookup was timed, and
    // every stored unique chunk went through the compressor.
    assert_eq!(
        m.histogram("cache.lookup.ns").unwrap().count,
        cache.accesses
    );
    let compressed = m.counter("compress.lzss.chunks").unwrap()
        + m.counter("compress.raw_fallback.chunks").unwrap();
    assert!(
        compressed >= stats.unique_chunks,
        "compressed {compressed} < unique {}",
        stats.unique_chunks
    );
}

#[test]
fn run_report_carries_the_same_snapshot_shape() {
    let spec = fidr::workload::WorkloadSpec::table3(1_000)
        .into_iter()
        .next()
        .unwrap();
    let r = run_workload(SystemVariant::FidrFull, spec, RunConfig::default());
    assert_eq!(
        r.metrics.counter("reduction.write_chunks.count"),
        Some(r.reduction.write_chunks)
    );
    assert_eq!(
        r.metrics.counter("cache.accesses.count"),
        Some(r.cache.accesses)
    );
    assert!(r.metrics.histogram("system.write.ns").unwrap().count > 0);

    let json = r.metrics.to_json();
    assert!(json.starts_with("{\n  \"schema\": \"fidr.metrics.v1\""));
    // Every metric renders as a typed object.
    for (_, v) in r.metrics.iter() {
        match v {
            MetricValue::Counter(_) | MetricValue::Gauge(_) | MetricValue::Histogram(_) => {}
        }
    }
}

#[test]
fn baseline_snapshot_reports_predictor_and_no_hw_engine() {
    let spec = fidr::workload::WorkloadSpec::table3(1_000)
        .into_iter()
        .next()
        .unwrap();
    let r = run_workload(SystemVariant::Baseline, spec, RunConfig::default());
    assert_eq!(r.metrics.counter("cache.hw_engine.enabled"), Some(0));
    assert!(r.metrics.counter("predictor.predictions.count").unwrap() > 0);
    assert!(r.metrics.histogram("system.write.ns").unwrap().count > 0);
    assert!(r.metrics.histogram("compress.chunk.ns").unwrap().count > 0);
}
