//! End-to-end data-lifecycle tests: write → overwrite → delete → GC →
//! verify, over the wire and in-process.
//!
//! The lifecycle contract under test: every acked delete unmaps its
//! LBA; shared chunks survive until their *last* reference drops; GC
//! reclaims real space without ever touching a referenced chunk; and
//! the whole pipeline stays deterministic — the same churn schedule
//! produces byte-identical metrics and spans exports for any
//! `--workers` value.

use bytes::Bytes;
use fidr::chunk::Lba;
use fidr::client::{run_churn, run_churn_verify, StorageClient};
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem, DEFAULT_STREAM_SHIFT};
use fidr::server::{Server, ServerConfig};
use fidr::trace::TraceConfig;
use fidr::workload::{churn_tag, ChurnKind, ChurnSchedule, ChurnSpec};

/// A small, fast backend so container seals and compaction actually
/// happen within a few hundred ops.
fn small_system() -> FidrConfig {
    FidrConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 64 << 10,
        hash_batch: 8,
        ..FidrConfig::default()
    }
}

fn churn_spec() -> ChurnSpec {
    ChurnSpec {
        tenants: 2,
        blocks_per_tenant: 40,
        rounds: 3,
        delete_pct: 40,
        seed: 9,
    }
}

/// Replays a churn schedule directly into an in-process system.
fn churn_in_process(sys: &mut FidrSystem, spec: ChurnSpec) {
    let gen = ContentGenerator::new(0.5);
    let schedule = ChurnSchedule::generate(spec);
    for op in schedule.ops() {
        let lba = Lba((op.tenant << DEFAULT_STREAM_SHIFT) | op.offset);
        match op.kind {
            ChurnKind::Write { round } => {
                let tag = churn_tag(spec.seed, op.tenant, op.offset, round);
                sys.write(lba, Bytes::from(gen.chunk(tag, 4096))).unwrap();
            }
            ChurnKind::Delete => sys.delete(lba).unwrap(),
        }
    }
}

#[test]
fn wire_lifecycle_deletes_gc_and_survivors_verify() {
    let spec = churn_spec();
    let schedule = ChurnSchedule::generate(spec);
    assert!(schedule.deletes() > 0, "spec must actually churn");

    // --gc-every 16: GC runs inline on the delete path, plus whenever
    // the serving loop goes idle with dead chunks pending.
    let handle = Server::spawn(ServerConfig {
        system: small_system(),
        gc_every: 16,
        gc_threshold: 0.5,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.local_addr();

    let mut client = StorageClient::connect(addr).expect("connect");
    let report = run_churn(&mut client, spec, DEFAULT_STREAM_SHIFT).expect("churn completes");
    assert_eq!(report.deletes, schedule.deletes(), "every delete acked");

    // Survivors — derived purely from the spec — read back byte-exact
    // through a *fresh* connection, after GC has been running inline.
    let mut fresh = StorageClient::connect(addr).expect("connect");
    let verify = run_churn_verify(&mut fresh, spec, DEFAULT_STREAM_SHIFT)
        .expect("survivor reads succeed")
        .ensure_verified()
        .expect("every survivor byte-identical");
    assert_eq!(verify.reads, schedule.survivors().len() as u64);
    drop(fresh);

    // A deleted block is gone at the wire level: reading it is a
    // connection-closing failure, same contract as a never-written LBA.
    let deleted = {
        let mut found = None;
        'outer: for tenant in 0..spec.tenants {
            for offset in 0..spec.blocks_per_tenant {
                if !schedule.survivors().contains_key(&(tenant, offset)) {
                    found = Some(Lba((tenant << DEFAULT_STREAM_SHIFT) | offset));
                    break 'outer;
                }
            }
        }
        found.expect("churn left at least one deleted block")
    };
    let mut probe = StorageClient::connect(addr).expect("connect");
    assert!(
        probe.read(deleted).is_err(),
        "read of a deleted LBA must not be served"
    );
    drop(probe);
    drop(client);

    let metrics = handle.shutdown().expect("drain");
    let count = |name: &str| metrics.counter(name).unwrap_or(0);
    assert_eq!(count("server.ops.delete.count"), schedule.deletes());
    assert_eq!(count("delete.acked.count"), schedule.deletes());
    assert!(count("server.gc.passes.count") > 0, "inline GC cadence ran");
    assert!(count("gc.runs.count") > 0);
    assert!(
        count("gc.reclaimed_bytes") > 0,
        "churn-then-gc must free real space"
    );
}

#[test]
fn lifecycle_metrics_and_spans_are_byte_identical_across_worker_counts() {
    let spec = churn_spec();
    let mut exports = Vec::new();
    for workers in [1usize, 4] {
        let mut sys = FidrSystem::new(FidrConfig {
            workers,
            trace: TraceConfig::enabled(),
            ..small_system()
        });
        churn_in_process(&mut sys, spec);
        sys.flush().unwrap();
        let report = sys.collect_garbage(0.5).unwrap();
        assert!(report.freed_bytes > 0, "workers={workers}: gc freed space");
        exports.push((
            sys.metrics().to_json(),
            fidr::trace::chrome_trace_json(&sys.tracer().spans()),
        ));
    }
    assert_eq!(
        exports[0].0, exports[1].0,
        "metrics export must be byte-identical across worker counts"
    );
    assert_eq!(
        exports[0].1, exports[1].1,
        "spans export must be byte-identical across worker counts"
    );
}

#[test]
fn gc_never_reclaims_a_referenced_chunk_even_under_shared_content() {
    // Two LBAs share one chunk; deleting one and collecting aggressively
    // (threshold 1.1 selects *every* sealed container) must keep the
    // other readable byte-exactly.
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(small_system());
    sys.write(Lba(1), Bytes::from(gen.chunk(7, 4096))).unwrap();
    sys.write(Lba(2), Bytes::from(gen.chunk(7, 4096))).unwrap();
    // Enough distinct filler to seal the container holding the shared
    // chunk.
    for i in 0..40u64 {
        sys.write(Lba(100 + i), Bytes::from(gen.chunk(1000 + i, 4096)))
            .unwrap();
        sys.delete(Lba(100 + i)).unwrap();
    }
    sys.flush().unwrap();
    sys.delete(Lba(1)).unwrap();
    let report = sys.collect_garbage(1.1).unwrap();
    assert!(report.reclaimed_pbns > 0);
    assert_eq!(
        sys.read(Lba(2)).unwrap(),
        gen.chunk(7, 4096),
        "surviving reference reads back byte-identical after compaction"
    );
    assert!(sys.read(Lba(1)).is_err(), "deleted LBA stays deleted");
    assert!(sys.verify_integrity().unwrap() > 0);
}
