//! Architectural equivalence: the baseline and FIDR are different
//! *machines* but the same *storage system* — identical dedup decisions,
//! identical logical state, identical read-back — while their resource
//! ledgers differ exactly the way the paper says they should.

use fidr::hwsim::{CpuTask, MemPath, PcieLink};
use fidr::workload::WorkloadSpec;
use fidr::{run_workload, RunConfig, SystemVariant};

const OPS: usize = 4_000;

fn run_pair(spec: WorkloadSpec) -> (fidr::RunReport, fidr::RunReport) {
    let cfg = RunConfig {
        cache_lines: 1024,
        table_buckets: 1 << 14,
        container_threshold: 512 << 10,
        ..RunConfig::default()
    };
    let base = run_workload(SystemVariant::Baseline, spec.clone(), cfg);
    let fidr = run_workload(SystemVariant::FidrFull, spec, cfg);
    (base, fidr)
}

#[test]
fn identical_reduction_outcomes() {
    // FIDR's NIC legitimately coalesces same-LBA rewrites inside one hash
    // batch (the superseded payload never reaches dedup), so counts may
    // differ by the handful of LBA collisions the random trace produces.
    let slack = 8;
    for spec in WorkloadSpec::table3(OPS) {
        let name = spec.name.clone();
        let (base, fidr) = run_pair(spec);
        assert!(
            base.reduction
                .unique_chunks
                .abs_diff(fidr.reduction.unique_chunks)
                <= slack,
            "{name}: unique chunks {} vs {}",
            base.reduction.unique_chunks,
            fidr.reduction.unique_chunks
        );
        assert!(
            base.reduction
                .duplicate_chunks
                .abs_diff(fidr.reduction.duplicate_chunks)
                <= slack,
            "{name}: duplicates {} vs {}",
            base.reduction.duplicate_chunks,
            fidr.reduction.duplicate_chunks
        );
        let byte_slack = slack * 4096;
        assert!(
            base.reduction
                .stored_bytes
                .abs_diff(fidr.reduction.stored_bytes)
                <= byte_slack,
            "{name}: stored bytes {} vs {}",
            base.reduction.stored_bytes,
            fidr.reduction.stored_bytes
        );
    }
}

#[test]
fn fidr_removes_the_right_resources() {
    let (base, fidr) = run_pair(WorkloadSpec::write_h(OPS));

    // The predictor and its memory traffic exist only in the baseline.
    assert!(base.ledger.cpu_cycles(CpuTask::UniquePrediction) > 0);
    assert_eq!(fidr.ledger.cpu_cycles(CpuTask::UniquePrediction), 0);
    assert_eq!(fidr.ledger.mem_bytes(MemPath::UniquePrediction), 0);

    // Tree indexing and the table-SSD stack moved off the CPU.
    assert!(base.ledger.cpu_cycles(CpuTask::TreeIndexing) > 0);
    assert_eq!(fidr.ledger.cpu_cycles(CpuTask::TreeIndexing), 0);
    assert_eq!(fidr.ledger.cpu_cycles(CpuTask::TableSsdStack), 0);

    // Client payloads moved from host-bounced DMA to P2P links.
    assert!(base.ledger.pcie_bytes(PcieLink::NicCompressionP2p) == 0);
    assert!(fidr.ledger.pcie_bytes(PcieLink::NicCompressionP2p) > 0);
    assert!(fidr.ledger.pcie_bytes(PcieLink::CompressionDataSsdP2p) > 0);

    // Net effect: far less host memory bandwidth and CPU.
    assert!(
        fidr.ledger.mem_bytes_per_client_byte() < base.ledger.mem_bytes_per_client_byte() * 0.45,
        "memory traffic should drop by more than 55%"
    );
    assert!(
        fidr.ledger.cpu_cycles_per_client_byte() < base.ledger.cpu_cycles_per_client_byte() * 0.45,
        "CPU should drop by more than 55%"
    );
}

#[test]
fn both_systems_hit_the_dedup_targets() {
    for (spec, target) in [
        (WorkloadSpec::write_h(OPS), 0.88),
        (WorkloadSpec::write_l(OPS), 0.431),
    ] {
        let name = spec.name.clone();
        let (base, fidr) = run_pair(spec);
        for (sys, r) in [("baseline", &base), ("fidr", &fidr)] {
            let measured = r.reduction.dedup_ratio();
            assert!(
                (measured - target).abs() < 0.05,
                "{name}/{sys}: dedup {measured:.3} vs target {target}"
            );
        }
    }
}

#[test]
fn ledger_fractions_are_well_formed() {
    for spec in WorkloadSpec::table3(2_000) {
        let (base, fidr) = run_pair(spec);
        for r in [&base, &fidr] {
            let mem_sum: f64 = MemPath::ALL.iter().map(|&p| r.ledger.mem_fraction(p)).sum();
            assert!((mem_sum - 1.0).abs() < 1e-9, "memory fractions sum to 1");
            let cpu_sum: f64 = CpuTask::ALL.iter().map(|&t| r.ledger.cpu_fraction(t)).sum();
            assert!((cpu_sum - 1.0).abs() < 1e-9, "CPU fractions sum to 1");
            let mgmt = r.ledger.cpu_management_fraction();
            assert!((0.0..=1.0).contains(&mgmt));
        }
    }
}

#[test]
fn hwtree_crash_rate_stays_negligible() {
    let (_, fidr) = run_pair(WorkloadSpec::write_l(OPS));
    let stats = fidr.hwtree.expect("FIDR full runs the HW engine");
    assert!(stats.updates > 0, "Write-L must exercise replacements");
    assert!(
        stats.crash_rate() < 0.001,
        "crash rate {:.5} should stay below 0.1% (paper §7.4)",
        stats.crash_rate()
    );
}
