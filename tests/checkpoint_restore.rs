//! Restart recovery: checkpoint a loaded FIDR server, serialize the
//! snapshot through its binary image, restore into a fresh process-worth
//! of state, and verify the restored server is indistinguishable — every
//! read, continued dedup against old content, and pending GC state.

use bytes::Bytes;
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem, Snapshot};
use fidr::workload::{Request, Workload, WorkloadSpec};
use std::collections::HashMap;

fn cfg() -> FidrConfig {
    FidrConfig {
        cache_lines: 128,
        table_buckets: 1 << 12,
        container_threshold: 128 << 10,
        hash_batch: 16,
        ..FidrConfig::default()
    }
}

#[test]
fn restored_server_answers_every_read() {
    let mut sys = FidrSystem::new(cfg());
    let mut expected: HashMap<Lba, Bytes> = HashMap::new();
    for req in Workload::new(WorkloadSpec::write_m(2_000)) {
        if let Request::Write { lba, data } = req {
            sys.write(lba, data.clone()).unwrap();
            expected.insert(lba, data);
        }
    }
    let image = sys.checkpoint().unwrap().encode();
    drop(sys);

    let snapshot = Snapshot::decode(&image).unwrap();
    let mut restored = FidrSystem::restore(cfg(), snapshot);
    for (lba, data) in &expected {
        assert_eq!(restored.read(*lba).unwrap(), data.to_vec(), "{lba}");
    }
}

#[test]
fn restored_server_dedups_against_old_content() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(cfg());
    for i in 0..100u64 {
        sys.write(Lba(i), Bytes::from(gen.chunk(i, 4096))).unwrap();
    }
    let snapshot = sys.checkpoint().unwrap();
    let uniques_before = sys.stats().unique_chunks;
    assert_eq!(uniques_before, 100);

    let mut restored = FidrSystem::restore(cfg(), snapshot);
    // Re-writing pre-checkpoint content must dedup, not re-store.
    for i in 0..100u64 {
        restored
            .write(Lba(1000 + i), Bytes::from(gen.chunk(i, 4096)))
            .unwrap();
    }
    restored.flush().unwrap();
    assert_eq!(restored.stats().unique_chunks, 0, "all dups of old content");
    assert_eq!(restored.stats().duplicate_chunks, 100);
    // And new content still allocates fresh PBNs beyond the old cursor.
    restored
        .write(Lba(5000), Bytes::from(gen.chunk(999_999, 4096)))
        .unwrap();
    restored.flush().unwrap();
    assert_eq!(restored.stats().unique_chunks, 1);
}

#[test]
fn gc_state_survives_restart() {
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(cfg());
    for i in 0..64u64 {
        sys.write(Lba(i), Bytes::from(gen.chunk(i, 4096))).unwrap();
    }
    sys.flush().unwrap();
    // Kill three quarters of the chunks, then checkpoint with the dead
    // list still pending.
    for i in 0..48u64 {
        sys.write(Lba(i), Bytes::from(gen.chunk(1000 + i, 4096)))
            .unwrap();
    }
    let snapshot = sys.checkpoint().unwrap();
    assert_eq!(sys.pending_dead_chunks(), 48);

    let mut restored = FidrSystem::restore(cfg(), snapshot);
    assert_eq!(restored.pending_dead_chunks(), 48);
    let report = restored.collect_garbage(0.5).unwrap();
    assert_eq!(report.reclaimed_pbns, 48);
    assert!(report.compacted_containers >= 1);
    // Everything still reads correctly after a post-restart GC.
    for i in 0..64u64 {
        let want = if i < 48 {
            gen.chunk(1000 + i, 4096)
        } else {
            gen.chunk(i, 4096)
        };
        assert_eq!(restored.read(Lba(i)).unwrap(), want, "LBA {i}");
    }
}

#[test]
fn corrupt_image_is_rejected_not_misread() {
    let mut sys = FidrSystem::new(cfg());
    sys.write(Lba(0), Bytes::from(vec![7u8; 4096])).unwrap();
    let mut image = sys.checkpoint().unwrap().encode();
    let mid = image.len() / 2;
    image.truncate(mid);
    assert!(Snapshot::decode(&image).is_err());
}
