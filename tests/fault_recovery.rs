//! Fault injection and recovery: seeded fault plans drive the device
//! models while both systems recover transparently — no acked write may
//! be lost, transient read corruption must heal via checksum re-reads,
//! and a dead Cache HW-Engine must degrade to the software cache.
//!
//! Every plan here is seeded, so each test is bit-reproducible: a seed
//! that passes once passes forever.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use fidr::baseline::{BaselineConfig, BaselineSystem};
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem};
use fidr::faults::FaultPlan;
use fidr::ssd::{DataSsdArray, DataSsdError};
use fidr::tables::ContainerBuilder;

fn chunk(gen: &ContentGenerator, tag: u64) -> Bytes {
    Bytes::from(gen.chunk(tag, 4096))
}

fn faulty_cfg(plan: FaultPlan) -> FidrConfig {
    FidrConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 64 << 10,
        hash_batch: 8,
        faults: plan,
        ..FidrConfig::default()
    }
}

/// Flush with a bounded retry loop: injected device faults can fail a
/// flush transiently, but fresh draws on the next attempt let it land.
fn flush_until_ok(sys: &mut FidrSystem) {
    for _ in 0..32 {
        if sys.flush().is_ok() {
            return;
        }
    }
    panic!("flush still failing after 32 attempts");
}

#[test]
fn seeded_fault_runs_are_bit_reproducible() {
    let plan = FaultPlan::parse(
        "seed=42,data_write=0.05,data_read=0.05,corrupt=0.05,table_read=0.03,table_write=0.03,nic=0.05",
    )
    .unwrap();
    let run = || {
        let gen = ContentGenerator::new(0.5);
        let mut sys = FidrSystem::new(faulty_cfg(plan));
        let mut failed_writes = Vec::new();
        for i in 0..400u64 {
            if sys.write(Lba(i % 150), chunk(&gen, i)).is_err() {
                failed_writes.push(i);
            }
        }
        flush_until_ok(&mut sys);
        let mut failed_reads = Vec::new();
        for i in 0..150u64 {
            if sys.read(Lba(i)).is_err() {
                failed_reads.push(i);
            }
        }
        let snapshot = sys.metrics();
        let counters: Vec<(String, u64)> = snapshot
            .iter()
            .filter_map(|(name, _)| snapshot.counter(name).map(|v| (name.to_string(), v)))
            .collect();
        (failed_writes, failed_reads, counters)
    };
    let first = run();
    let second = run();
    let injected_total: u64 = first
        .2
        .iter()
        .filter(|(name, _)| name.starts_with("faults.") && name.ends_with(".injected"))
        .map(|(_, v)| v)
        .sum();
    assert!(injected_total > 0, "plan should actually inject faults");
    assert_eq!(
        first, second,
        "same seed + same workload must replay bit-identically"
    );
}

#[test]
fn no_acked_write_is_lost_under_mixed_faults() {
    let plan = FaultPlan::parse(
        "seed=7,data_write=0.35,data_read=0.05,corrupt=0.08,table_read=0.05,table_write=0.25,nic=0.05",
    )
    .unwrap();
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(faulty_cfg(plan));

    // `expect` tracks the last acked value per LBA; `ambiguous` marks
    // LBAs whose most recent write errored — the chunk may or may not
    // have entered the NIC buffer before the failure, so the committed
    // value is legitimately either the old or the attempted one.
    let mut expect: HashMap<u64, u64> = HashMap::new();
    let mut ambiguous: HashSet<u64> = HashSet::new();
    for i in 0..600u64 {
        let lba = i % 150;
        let tag = 1000 + i;
        match sys.write(Lba(lba), chunk(&gen, tag)) {
            Ok(()) => {
                expect.insert(lba, tag);
                ambiguous.remove(&lba);
            }
            Err(_) => {
                ambiguous.insert(lba);
            }
        }
    }
    flush_until_ok(&mut sys);

    for (lba, tag) in &expect {
        if ambiguous.contains(lba) {
            continue;
        }
        let got = sys
            .read(Lba(*lba))
            .unwrap_or_else(|e| panic!("acked write to lba {lba} lost: read failed with {e}"));
        assert_eq!(
            got,
            gen.chunk(*tag, 4096),
            "acked write to lba {lba} corrupted"
        );
    }

    // Recovery left the store scrubbable: every stored chunk verifies
    // against its fingerprint (transient read corruption heals inline).
    sys.verify_integrity()
        .expect("post-fault scrub must be clean");

    let m = sys.metrics();
    assert!(
        m.counter("ssd.data.retry.attempts").unwrap_or(0) > 0,
        "aggressive data_write plan must exercise the device retry path"
    );
}

#[test]
fn hw_engine_failure_degrades_to_software_cache() {
    let plan = FaultPlan::parse("seed=1,engine_at=50").unwrap();
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(faulty_cfg(plan));
    for i in 0..200u64 {
        sys.write(Lba(i), chunk(&gen, i)).unwrap();
    }
    sys.flush().unwrap();
    assert!(
        sys.hw_engine_degraded(),
        "engine_at=50 must trip within a 200-write workload"
    );

    // Reads still serve correctly through the software cache.
    for i in 0..200u64 {
        assert_eq!(sys.read(Lba(i)).unwrap(), gen.chunk(i, 4096));
    }
    sys.verify_integrity().unwrap();

    let m = sys.metrics();
    assert_eq!(m.counter("degraded.hw_engine.count"), Some(1));
    assert_eq!(m.counter("cache.hw_engine.enabled"), Some(0));
    // The retired engine's stats survive degradation instead of vanishing.
    assert!(
        m.counter("hwtree.searches.count").unwrap_or(0) > 0,
        "pre-failure HW-tree traffic must remain visible after degradation"
    );
    // Cache accesses span both backends: the merged view keeps counting.
    assert!(sys.cache_stats().accesses > 0);
}

#[test]
fn transient_read_corruption_heals_via_reread() {
    let plan = FaultPlan::parse("seed=9,corrupt=0.15").unwrap();
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(faulty_cfg(plan));
    for i in 0..80u64 {
        sys.write(Lba(i), chunk(&gen, i)).unwrap();
    }
    sys.flush().unwrap();
    for pass in 0..2 {
        for i in 0..80u64 {
            assert_eq!(
                sys.read(Lba(i)).unwrap(),
                gen.chunk(i, 4096),
                "pass {pass} lba {i}: in-flight corruption must heal transparently"
            );
        }
    }
    assert_eq!(sys.verify_integrity().unwrap(), 80);

    let m = sys.metrics();
    let detected = m.counter("retry.read_repair.detected").unwrap_or(0);
    let repaired = m.counter("retry.read_repair.repaired").unwrap_or(0);
    assert!(
        detected > 0,
        "corrupt=0.15 over 240 reads must trip detection"
    );
    assert_eq!(repaired, detected, "every transient corruption must repair");
    assert_eq!(m.counter("retry.read_repair.unrecovered"), Some(0));
}

#[test]
fn persistent_corruption_still_fails_scrub() {
    // The recovery layer must not mask real (stored) corruption: only
    // in-flight faults heal on re-read; a flipped byte on the device
    // mismatches the fingerprint on every attempt.
    let plan = FaultPlan::parse("seed=3,corrupt=0.05").unwrap();
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(FidrConfig {
        container_threshold: 32 << 10,
        ..faulty_cfg(plan)
    });
    for i in 0..64u64 {
        sys.write(Lba(i), chunk(&gen, i)).unwrap();
    }
    sys.flush().unwrap();
    assert!(sys.verify_integrity().is_ok());

    assert!(sys.inject_data_corruption(0, 100));
    assert!(
        sys.verify_integrity().is_err(),
        "persistent corruption must survive the re-read budget and fail the scrub"
    );
    let m = sys.metrics();
    assert!(
        m.counter("retry.read_repair.unrecovered").unwrap_or(0) >= 1,
        "exhausted re-reads must be counted as unrecovered"
    );
}

#[test]
fn nic_pressure_drains_without_losing_writes() {
    // Seed chosen so the longest injected-pressure streak stays inside
    // the bounded backoff budget: with p=0.15 the expected streak is
    // short, but an unlucky seed can exceed max_retries and correctly
    // surface NicBufferFull — which is not what this test is about.
    let plan = FaultPlan::parse("seed=13,nic=0.15").unwrap();
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(faulty_cfg(plan));
    for i in 0..200u64 {
        sys.write(Lba(i), chunk(&gen, i))
            .unwrap_or_else(|e| panic!("write {i} must ride out NIC pressure: {e}"));
    }
    sys.flush().unwrap();
    for i in 0..200u64 {
        assert_eq!(sys.read(Lba(i)).unwrap(), gen.chunk(i, 4096));
    }
    let m = sys.metrics();
    assert!(
        m.counter("faults.nic_pressure.injected").unwrap_or(0) > 0,
        "nic=0.25 over 200 writes must inject pressure"
    );
    assert_eq!(
        m.counter("nic.faults.pressure"),
        m.counter("faults.nic_pressure.injected")
    );
}

#[test]
fn failed_operations_still_record_latency() {
    // Regression for the success-only latency recording bug: error
    // outcomes must land in the op histograms and per-kind counters.
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(faulty_cfg(FaultPlan::default()));
    assert!(sys.read(Lba(99)).is_err());
    assert!(sys.write(Lba(0), Bytes::from(vec![0u8; 100])).is_err());
    sys.write(Lba(0), chunk(&gen, 0)).unwrap();
    let m = sys.metrics();
    assert_eq!(m.counter("system.read.errors.not_mapped"), Some(1));
    assert_eq!(m.counter("system.write.errors.bad_chunk_size"), Some(1));
    assert_eq!(m.histogram("system.read.ns").unwrap().count, 1);
    assert_eq!(m.histogram("system.write.ns").unwrap().count, 2);

    let mut base = BaselineSystem::new(BaselineConfig::default());
    assert!(base.read(Lba(99)).is_err());
    assert!(base.write(Lba(0), Bytes::from(vec![0u8; 100])).is_err());
    base.write(Lba(0), chunk(&gen, 0)).unwrap();
    let m = base.metrics();
    assert_eq!(m.counter("system.read.errors.not_mapped"), Some(1));
    assert_eq!(m.counter("system.write.errors.bad_chunk_size"), Some(1));
    assert_eq!(m.histogram("system.read.ns").unwrap().count, 1);
    assert_eq!(m.histogram("system.write.ns").unwrap().count, 2);
}

#[test]
fn baseline_recovers_from_transient_faults() {
    let plan = FaultPlan::parse("seed=13,data_write=0.2,corrupt=0.1,table_write=0.15").unwrap();
    let gen = ContentGenerator::new(0.5);
    let mut sys = BaselineSystem::new(BaselineConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 64 << 10,
        faults: plan,
        ..BaselineConfig::default()
    });
    let mut acked: HashMap<u64, u64> = HashMap::new();
    let mut ambiguous: HashSet<u64> = HashSet::new();
    for i in 0..300u64 {
        let lba = i % 100;
        match sys.write(Lba(lba), chunk(&gen, 2000 + i)) {
            Ok(()) => {
                acked.insert(lba, 2000 + i);
                ambiguous.remove(&lba);
            }
            Err(_) => {
                ambiguous.insert(lba);
            }
        }
    }
    let mut flushed = false;
    for _ in 0..32 {
        if sys.flush().is_ok() {
            flushed = true;
            break;
        }
    }
    assert!(flushed, "baseline flush still failing after 32 attempts");
    for (lba, tag) in &acked {
        if ambiguous.contains(lba) {
            continue;
        }
        assert_eq!(
            sys.read(Lba(*lba)).unwrap(),
            gen.chunk(*tag, 4096),
            "baseline acked write to lba {lba} lost"
        );
    }
    sys.verify_integrity()
        .expect("baseline post-fault scrub must be clean");
}

/// Ages a store with churn: 64 blocks written, the first 40 overwritten
/// (stranding dead generations), 24 of those then deleted outright.
/// Returns the expected live contents.
fn age_store(sys: &mut FidrSystem, gen: &ContentGenerator) -> HashMap<u64, u64> {
    let mut live = HashMap::new();
    for i in 0..64u64 {
        sys.write(Lba(i), chunk(gen, i)).unwrap();
        live.insert(i, i);
    }
    sys.flush().unwrap();
    for i in 0..40u64 {
        sys.write(Lba(i), chunk(gen, 500 + i)).unwrap();
        live.insert(i, 500 + i);
    }
    for i in 0..24u64 {
        sys.delete(Lba(i)).unwrap();
        live.remove(&i);
    }
    sys.flush().unwrap();
    live
}

#[test]
fn crash_mid_gc_never_reclaims_a_referenced_chunk() {
    // A GC pass that dies partway — device faults on the survivor
    // copy-out or the table update — must never cost a referenced
    // chunk: not in the still-running process, and not after a crash
    // that recovers from the last durable checkpoint.
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(faulty_cfg(FaultPlan::default()));
    let live = age_store(&mut sys, &gen);
    assert!(sys.pending_dead_chunks() > 0, "churn left garbage behind");

    // The durable image a crash recovers from, taken before GC starts.
    let image = sys.checkpoint().unwrap().encode();
    drop(sys);

    // Restore into a config with an aggressive device-fault plan and
    // run GC until a pass fails mid-flight.
    let plan = FaultPlan::parse("seed=5,data_write=0.9,table_write=0.9,data_read=0.2").unwrap();
    let snapshot = fidr::core::Snapshot::decode(&image).unwrap();
    let mut faulty = FidrSystem::restore(faulty_cfg(plan), snapshot);
    let mut failed_passes = 0u32;
    for _ in 0..12 {
        if faulty.collect_garbage(1.1).is_err() {
            failed_passes += 1;
        }
    }
    assert!(
        failed_passes > 0,
        "the fault plan must actually kill at least one GC pass mid-flight"
    );
    // The interrupted collector left every referenced chunk readable in
    // the still-running process (bounded retries ride out the injected
    // read faults).
    for (&lba, &tag) in &live {
        let mut got = None;
        for _ in 0..32 {
            if let Ok(data) = faulty.read(Lba(lba)) {
                got = Some(data);
                break;
            }
        }
        assert_eq!(
            got.expect("read must succeed within the retry budget"),
            gen.chunk(tag, 4096),
            "lba {lba} after interrupted GC"
        );
    }
    drop(faulty); // the crash: in-memory GC progress is gone

    // Recovery: restore the durable checkpoint, collect cleanly, and
    // prove byte-exact survivors, dead deletes, and a clean scrub.
    let snapshot = fidr::core::Snapshot::decode(&image).unwrap();
    let mut recovered = FidrSystem::restore(faulty_cfg(FaultPlan::default()), snapshot);
    let report = recovered.collect_garbage(0.9).unwrap();
    assert!(
        report.reclaimed_pbns > 0,
        "recovered GC reclaims the garbage"
    );
    assert!(report.freed_bytes > 0, "recovered GC frees real space");
    for (&lba, &tag) in &live {
        assert_eq!(
            recovered.read(Lba(lba)).unwrap(),
            gen.chunk(tag, 4096),
            "lba {lba} after crash-recovery GC"
        );
    }
    for i in 0..24u64 {
        assert!(
            recovered.read(Lba(i)).is_err(),
            "deleted lba {i} must stay deleted through crash recovery"
        );
    }
    recovered
        .verify_integrity()
        .expect("post-recovery scrub must be clean");
}

#[test]
fn acked_deletes_survive_recovery() {
    // An acked delete is a durability promise in both directions: the
    // unmap must survive a restart (the LBA stays gone), and so must
    // the pending-garbage bookkeeping that lets the post-restart
    // collector reclaim the dead chunks.
    let gen = ContentGenerator::new(0.5);
    let mut sys = FidrSystem::new(faulty_cfg(FaultPlan::default()));
    let live = age_store(&mut sys, &gen);
    let pending = sys.pending_dead_chunks();
    assert!(pending > 0);

    let image = sys.checkpoint().unwrap().encode();
    drop(sys); // the crash

    let snapshot = fidr::core::Snapshot::decode(&image).unwrap();
    let mut restored = FidrSystem::restore(faulty_cfg(FaultPlan::default()), snapshot);
    assert_eq!(
        restored.pending_dead_chunks(),
        pending,
        "the garbage queue survives the restart"
    );
    for i in 0..24u64 {
        assert!(
            restored.read(Lba(i)).is_err(),
            "acked delete of lba {i} lost across restart"
        );
    }
    for (&lba, &tag) in &live {
        assert_eq!(restored.read(Lba(lba)).unwrap(), gen.chunk(tag, 4096));
    }
    // Deleting an already-deleted LBA is still refused after restart.
    assert!(restored.delete(Lba(0)).is_err());
    // And the post-restart collector turns the queue into real space.
    let report = restored.collect_garbage(0.9).unwrap();
    assert!(report.freed_bytes > 0);
    restored.verify_integrity().expect("clean scrub");
}

#[test]
fn container_id_reuse_is_a_hard_error() {
    // Regression for the debug_assert!-only guard: the check must hold
    // in every profile (CI also runs this suite under --release).
    let mut array = DataSsdArray::new(2);
    array
        .write_container(ContainerBuilder::new(7, 1024).seal())
        .unwrap();
    match array.write_container(ContainerBuilder::new(7, 1024).seal()) {
        Err(DataSsdError::ContainerIdReuse(7)) => {}
        other => panic!("expected ContainerIdReuse(7), got {other:?}"),
    }
}
