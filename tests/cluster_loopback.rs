//! Multi-node loopback e2e for the sharded serving tier: the
//! consistent-hash fan-out client spreads writes across every node, a
//! node drain hands its shard off with zero acked-write loss, the
//! stateless front tier serves the fleet over the single-node protocol
//! byte-for-byte, per-node drain exports stay byte-stable across
//! worker counts, and the client-side verification plumbing fails
//! loudly (injected corruption, late port files).

use bytes::Bytes;
use fidr::chunk::Lba;
use fidr::client::{
    read_port_file, run_churn, run_churn_verify, run_cluster_traffic, run_open_loop, run_traffic,
    run_verify, ClientError, ClusterClient, StorageClient,
};
use fidr::core::{FidrConfig, DEFAULT_STREAM_SHIFT};
use fidr::metrics::MetricsSnapshot;
use fidr::nic::{ShardNode, ShardRouter};
use fidr::router::{drain_node, push_map, Router, RouterConfig};
use fidr::server::{CorruptFault, Server, ServerConfig, ServerHandle};
use fidr::workload::{ChurnSchedule, ChurnSpec, OpenLoopSchedule, OpenLoopSpec};
use std::time::Duration;

/// A small, fast backend so batches and container seals actually happen
/// within a few hundred ops.
fn small_system() -> FidrConfig {
    FidrConfig {
        cache_lines: 64,
        table_buckets: 1 << 12,
        container_threshold: 64 << 10,
        hash_batch: 8,
        ..FidrConfig::default()
    }
}

fn spawn_node(node_id: u64, workers: usize) -> ServerHandle {
    Server::spawn(ServerConfig {
        node_id,
        system: FidrConfig {
            workers,
            ..small_system()
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// The bootstrap map for a fleet of spawned nodes, ids taken from each
/// node's `ServerConfig` (1-based, in order).
fn fleet_map(handles: &[&ServerHandle]) -> ShardRouter {
    let nodes = handles
        .iter()
        .enumerate()
        .map(|(i, h)| ShardNode {
            id: i as u64 + 1,
            addr: h.local_addr().to_string(),
        })
        .collect();
    ShardRouter::from_nodes(nodes).expect("bootstrap map")
}

#[test]
fn traffic_spreads_across_nodes_and_drain_hands_off_every_acked_write() {
    let n1 = spawn_node(1, 1);
    let n2 = spawn_node(2, 1);
    let map = fleet_map(&[&n1, &n2]);
    push_map(&map).expect("install bootstrap map");

    // Open-loop multi-tenant traffic through the fan-out client.
    let spec = OpenLoopSpec {
        tenants: 8,
        ops: 300,
        rate: 0.0,
        zipf_s: 1.0,
        seed: 42,
    };
    let report = run_open_loop(
        || ClusterClient::connect(map.clone()),
        3,
        spec,
        DEFAULT_STREAM_SHIFT,
    )
    .expect("open-loop traffic")
    .ensure_verified()
    .expect("every mid-traffic read matched its write");
    assert!(report.writes > 0 && report.reads > 0, "interleaved traffic");

    // Consistent-hash routing spread the writes across BOTH nodes, and
    // nothing was double-served: the per-node counters partition the
    // client's acked total exactly.
    let writes_on = |h: &ServerHandle| h.metrics().counter("server.ops.write.count").unwrap_or(0);
    let (w1, w2) = (writes_on(&n1), writes_on(&n2));
    assert!(w1 > 0, "node 1 served no writes");
    assert!(w2 > 0, "node 2 served no writes");
    assert_eq!(
        w1 + w2,
        report.writes,
        "acked writes partition across nodes"
    );

    // Drain node 2: its blocks rehome to the survivor, then the
    // departing process exits through the graceful-drain path on its
    // own — no explicit shutdown.
    let survivors = drain_node(&map, 2).expect("drain node 2");
    assert_eq!(survivors.nodes().len(), 1, "one survivor");
    assert!(
        survivors.generation() > map.generation(),
        "reshard bumps the map generation"
    );
    n2.wait().expect("departing node drains itself");

    // Zero acked-write loss: every block the schedule wrote reads back
    // byte-exactly through the *new* topology. The verify pass needs no
    // record from the traffic run — the schedule is a pure function of
    // the spec.
    let mut fleet = ClusterClient::connect(survivors).expect("connect survivors");
    let verify = run_verify(&mut fleet, spec, DEFAULT_STREAM_SHIFT)
        .expect("post-drain verify")
        .ensure_verified()
        .expect("zero acked-write loss across the handoff");
    assert_eq!(
        verify.reads, report.writes,
        "the verify pass re-read every acked write"
    );
    drop(fleet);
    n1.shutdown().expect("drain survivor");
}

#[test]
fn churn_deletes_route_by_shard_map_and_drain_reclaims_source_copies() {
    let n1 = spawn_node(1, 1);
    let n2 = spawn_node(2, 1);
    let map = fleet_map(&[&n1, &n2]);
    push_map(&map).expect("install bootstrap map");

    // Age the fleet: write, overwrite, delete — every delete routed to
    // the owning node by the shard map, exactly like the write that
    // created the block.
    let spec = ChurnSpec {
        tenants: 2,
        blocks_per_tenant: 40,
        rounds: 3,
        delete_pct: 40,
        seed: 21,
    };
    let schedule = ChurnSchedule::generate(spec);
    assert!(schedule.deletes() > 0, "spec must actually churn");
    let mut fleet = ClusterClient::connect(map.clone()).expect("connect fleet");
    let report = run_churn(&mut fleet, spec, DEFAULT_STREAM_SHIFT).expect("churn completes");
    assert_eq!(report.deletes, schedule.deletes(), "every delete acked");

    // Consistent-hash routing partitioned the deletes across BOTH
    // nodes, and nothing was double-deleted.
    let deletes_on = |h: &ServerHandle| h.metrics().counter("server.ops.delete.count").unwrap_or(0);
    let (d1, d2) = (deletes_on(&n1), deletes_on(&n2));
    assert!(d1 > 0, "node 1 served no deletes");
    assert!(d2 > 0, "node 2 served no deletes");
    assert_eq!(
        d1 + d2,
        schedule.deletes(),
        "deletes partition across nodes"
    );

    // Survivors verify byte-exactly through the fleet.
    run_churn_verify(&mut fleet, spec, DEFAULT_STREAM_SHIFT)
        .expect("fleet verify")
        .ensure_verified()
        .expect("survivors intact after churn");
    drop(fleet);

    // Drain node 2: it rehomes its shard to the survivor and — only
    // after every forward was acked — deletes each source copy, so the
    // handoff reclaims the departing node's space instead of stranding
    // a dead replica.
    let survivors = drain_node(&map, 2).expect("drain node 2");
    let n2_metrics = n2.wait().expect("departing node drains itself");
    let count = |name: &str| n2_metrics.counter(name).unwrap_or(0);
    assert!(
        count("server.shard.rehome.count") > 0,
        "node 2 had blocks to hand off"
    );
    assert_eq!(
        count("server.shard.reclaimed.count"),
        count("server.shard.rehome.count"),
        "every rehomed block's source copy was deleted after the ack"
    );
    assert!(
        count("delete.acked.count") >= count("server.shard.reclaimed.count"),
        "source-copy reclamation went through the delete path"
    );

    // Zero acked-write loss across the handoff: the survivor set —
    // derived purely from the spec — reads back byte-exactly through
    // the new topology.
    let mut solo = ClusterClient::connect(survivors).expect("connect survivors");
    run_churn_verify(&mut solo, spec, DEFAULT_STREAM_SHIFT)
        .expect("post-drain verify")
        .ensure_verified()
        .expect("zero acked-write loss across the reclaiming handoff");
    drop(solo);
    n1.shutdown().expect("drain survivor");
}

#[test]
fn router_fanout_and_front_tier_read_back_identical_to_a_single_node() {
    let spec = OpenLoopSpec {
        tenants: 5,
        ops: 180,
        rate: 0.0,
        zipf_s: 1.2,
        seed: 9,
    };

    // The same schedule against (a) one standalone node and (b) a
    // 2-node fleet behind the fan-out client. Identical traffic shape —
    // only the routing differs.
    let solo = spawn_node(0, 1);
    let solo_addr = solo.local_addr();
    run_open_loop(
        || StorageClient::connect(solo_addr),
        2,
        spec,
        DEFAULT_STREAM_SHIFT,
    )
    .expect("solo traffic")
    .ensure_verified()
    .expect("solo verified");

    let n1 = spawn_node(1, 1);
    let n2 = spawn_node(2, 1);
    let map = fleet_map(&[&n1, &n2]);
    push_map(&map).expect("install map");
    run_open_loop(
        || ClusterClient::connect(map.clone()),
        2,
        spec,
        DEFAULT_STREAM_SHIFT,
    )
    .expect("fleet traffic")
    .ensure_verified()
    .expect("fleet verified");

    // The stateless front tier serves the fleet over the *single-node*
    // protocol: a plain StorageClient pointed at it must read back every
    // block byte-identical to the standalone node.
    let front = Router::spawn(RouterConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        router: map.clone(),
        conns_limit: None,
    })
    .expect("front tier");
    let mut via_solo = StorageClient::connect(solo_addr).expect("connect solo");
    let mut via_front = StorageClient::connect(front.local_addr()).expect("connect front tier");
    let mut blocks = 0u64;
    for (tenant, count) in OpenLoopSchedule::generate(spec).writes_per_tenant() {
        for offset in 0..count {
            let lba = Lba((tenant << DEFAULT_STREAM_SHIFT) | offset);
            assert_eq!(
                via_solo.read(lba).expect("solo read"),
                via_front.read(lba).expect("routed read"),
                "tenant {tenant} offset {offset} differs between topologies"
            );
            blocks += 1;
        }
    }
    assert!(blocks > 0, "the schedule wrote something");
    drop(via_front);
    let routed = front.shutdown();
    assert_eq!(routed.reads_routed, blocks, "every read went through");
    assert_eq!(routed.conn_errors, 0);

    solo.shutdown().expect("drain solo");
    n1.shutdown().expect("drain node 1");
    n2.shutdown().expect("drain node 2");
}

/// The `fidr.metrics.v1` drain export, minus the `pool.*` block: pool
/// counters carry wall-clock busy/idle times and the worker count
/// itself, which legitimately differ across `--workers`.
fn deterministic_drain_json(metrics: &MetricsSnapshot) -> String {
    metrics
        .to_json()
        .lines()
        .filter(|line| !line.contains("\"pool."))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn per_node_drain_exports_are_byte_stable_across_worker_counts() {
    // One sequential fan-out connection, so each node sees a
    // deterministic op order; the backend worker count must then be
    // invisible in every node's drain-time export.
    let run = |workers: usize| {
        let n1 = spawn_node(1, workers);
        let n2 = spawn_node(2, workers);
        let map = fleet_map(&[&n1, &n2]);
        push_map(&map).expect("install map");
        let report = run_cluster_traffic(&map, 1, 120, 7).expect("traffic");
        assert_eq!(report.verify_failures, 0);
        vec![
            deterministic_drain_json(&n1.shutdown().expect("drain node 1")),
            deterministic_drain_json(&n2.shutdown().expect("drain node 2")),
        ]
    };
    assert_eq!(
        run(1),
        run(4),
        "a node's metrics export must not depend on --workers"
    );
}

#[test]
fn injected_corruption_makes_verification_fail_loudly() {
    // A server that flips a byte in every 3rd read reply: the client
    // must count the mismatches and ensure_verified() must turn them
    // into a hard error — the path the `fidr client` subcommand exits
    // non-zero through.
    let handle = Server::spawn(ServerConfig {
        system: small_system(),
        corrupt: Some(CorruptFault { every: 3 }),
        ..ServerConfig::default()
    })
    .expect("bind loopback");

    let report = run_traffic(handle.local_addr(), 2, 90, 13).expect("traffic completes");
    assert!(
        report.verify_failures > 0,
        "the injected corruption was never observed"
    );
    let err = report
        .ensure_verified()
        .expect_err("corrupted reads must not pass verification");
    assert!(
        err.to_string().contains("VERIFY FAILED"),
        "summary must be loud, got: {err}"
    );
    match err {
        ClientError::VerifyFailed { failures, reads } => {
            assert_eq!(failures, report.verify_failures);
            assert_eq!(reads, report.reads);
        }
        other => panic!("expected VerifyFailed, got {other:?}"),
    }
    handle.shutdown().expect("drain");
}

#[test]
fn port_file_readers_retry_until_an_atomic_publish_lands() {
    let dir = std::env::temp_dir().join(format!("fidr-portfile-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("port");

    // Nothing published: a bounded wait times out instead of hanging or
    // propagating NotFound.
    let err = read_port_file(&path, Duration::from_millis(40)).expect_err("no file yet");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);

    // Unparsable interim contents (the legacy bare-port format) keep
    // the reader retrying; the atomic rename then lands the real
    // address and the reader picks it up.
    std::fs::write(&path, "51").expect("write interim contents");
    let addr: std::net::SocketAddr = "127.0.0.1:4567".parse().unwrap();
    let publisher = std::thread::spawn({
        let path = path.clone();
        move || {
            std::thread::sleep(Duration::from_millis(30));
            fidr::server::write_port_file(&path, addr).expect("publish");
        }
    });
    let got = read_port_file(&path, Duration::from_secs(10)).expect("retry until published");
    assert_eq!(got, addr);
    publisher.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cluster_client_refuses_an_unroutable_map() {
    // An empty map has nowhere to route.
    if let Ok(map) = ShardRouter::from_nodes(Vec::new()) {
        match ClusterClient::connect(map) {
            Err(ClientError::NoRoute(_)) => {}
            Err(other) => panic!("empty map must be NoRoute, got {other:?}"),
            Ok(_) => panic!("empty map must not connect"),
        }
    }

    // A map naming an address nobody listens on fails at connect, not
    // at first use. LBA-keyed writes never silently drop.
    let map = ShardRouter::from_nodes(vec![ShardNode {
        id: 1,
        addr: "127.0.0.1:1".into(),
    }])
    .expect("one-node map");
    assert!(
        ClusterClient::connect(map).is_err(),
        "connecting to a dead node must error eagerly"
    );

    // A write through a routed fleet whose payload is fine must ack;
    // sanity-check the Bytes plumbing end to end with one real node.
    let node = spawn_node(1, 1);
    let map = fleet_map(&[&node]);
    push_map(&map).expect("install");
    let mut fleet = ClusterClient::connect(map).expect("connect");
    fleet
        .write(Lba(3), Bytes::from(vec![5u8; 4096]))
        .expect("routed write");
    assert_eq!(fleet.read(Lba(3)).expect("routed read"), vec![5u8; 4096]);
    drop(fleet);
    node.shutdown().expect("drain");
}
