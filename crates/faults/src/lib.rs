//! # fidr-faults
//!
//! Seeded, deterministic fault injection for the FIDR device models, plus
//! the bounded-retry policy the systems use to survive those faults.
//!
//! The paper's availability story (battery-backed NIC buffering that acks
//! writes before the backend commits, §7.6.1; table/data SSDs driven by an
//! FPGA engine, §6.1) only holds if device errors are survived. A
//! [`FaultPlan`] describes probability- or schedule-driven faults at each
//! device touch point ([`FaultSite`]); a [`FaultInjector`] turns the plan
//! into a bit-reproducible stream of per-site decisions (the decision for
//! the *n*-th operation at a site depends only on `(seed, site, n)`, never
//! on wall clock or interleaving). [`RetryPolicy`] bounds recovery with
//! exponential backoff charged as *modelled* time, so fault-heavy runs
//! stay deterministic too.
//!
//! # Examples
//!
//! ```
//! use fidr_faults::{FaultInjector, FaultPlan, FaultSite};
//!
//! let plan = FaultPlan::parse("seed=7,data_read=0.5").unwrap();
//! let a = FaultInjector::new(plan);
//! let b = FaultInjector::new(plan);
//! // Same plan, same call sequence => identical decisions.
//! for _ in 0..100 {
//!     assert_eq!(a.fire(FaultSite::DataRead), b.fire(FaultSite::DataRead));
//! }
//! assert!(a.stats().injected(FaultSite::DataRead) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A device touch point where the injector can fail an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Data-SSD container write (transient IO error).
    DataWrite,
    /// Data-SSD chunk read (transient IO error).
    DataRead,
    /// Data-SSD chunk read returning silently corrupted bytes (the stored
    /// copy stays intact; a checksum-verified re-read heals).
    DataReadCorrupt,
    /// Table-SSD bucket fetch (transient IO error).
    TableRead,
    /// Table-SSD bucket flush (transient IO error).
    TableWrite,
    /// NIC buffer pressure: admission is refused once, forcing the caller
    /// down its drain/backpressure path.
    NicPressure,
    /// Cache HW-Engine access (schedule-driven permanent failure).
    CacheEngine,
}

impl FaultSite {
    /// All sites in reporting order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::DataWrite,
        FaultSite::DataRead,
        FaultSite::DataReadCorrupt,
        FaultSite::TableRead,
        FaultSite::TableWrite,
        FaultSite::NicPressure,
        FaultSite::CacheEngine,
    ];

    /// Stable metric-name slug for this site.
    pub fn slug(&self) -> &'static str {
        match self {
            FaultSite::DataWrite => "data_write",
            FaultSite::DataRead => "data_read",
            FaultSite::DataReadCorrupt => "data_read_corrupt",
            FaultSite::TableRead => "table_read",
            FaultSite::TableWrite => "table_write",
            FaultSite::NicPressure => "nic_pressure",
            FaultSite::CacheEngine => "cache_engine",
        }
    }

    fn idx(&self) -> usize {
        FaultSite::ALL
            .iter()
            .position(|s| s == self)
            .expect("in ALL")
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// A deterministic fault schedule: per-site probabilities plus the
/// schedule-driven Cache HW-Engine failure point.
///
/// The all-zero default plan is inert — every site always succeeds — so
/// production configs can embed a `FaultPlan` unconditionally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// P(transient error) per data-SSD container write.
    pub data_write_error: f64,
    /// P(transient error) per data-SSD chunk read.
    pub data_read_error: f64,
    /// P(in-flight bit corruption) per data-SSD chunk read.
    pub data_read_corrupt: f64,
    /// P(transient error) per table-SSD bucket fetch.
    pub table_read_error: f64,
    /// P(transient error) per table-SSD bucket flush.
    pub table_write_error: f64,
    /// P(admission refusal) per NIC buffered write.
    pub nic_pressure: f64,
    /// Fail the Cache HW-Engine permanently once it has served this many
    /// accesses (`None` = never).
    pub engine_fail_at: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            data_write_error: 0.0,
            data_read_error: 0.0,
            data_read_corrupt: 0.0,
            table_read_error: 0.0,
            table_write_error: 0.0,
            nic_pressure: 0.0,
            engine_fail_at: None,
        }
    }
}

impl FaultPlan {
    /// The inert plan: no faults, ever.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.data_write_error == 0.0
            && self.data_read_error == 0.0
            && self.data_read_corrupt == 0.0
            && self.table_read_error == 0.0
            && self.table_write_error == 0.0
            && self.nic_pressure == 0.0
            && self.engine_fail_at.is_none()
    }

    /// The probability configured for a probabilistic site (the
    /// [`FaultSite::CacheEngine`] schedule is not probabilistic and maps
    /// to 0 here).
    pub fn probability(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::DataWrite => self.data_write_error,
            FaultSite::DataRead => self.data_read_error,
            FaultSite::DataReadCorrupt => self.data_read_corrupt,
            FaultSite::TableRead => self.table_read_error,
            FaultSite::TableWrite => self.table_write_error,
            FaultSite::NicPressure => self.nic_pressure,
            FaultSite::CacheEngine => 0.0,
        }
    }

    /// Parses a comma-separated `key=value` fault spec, e.g.
    /// `seed=42,data_read=0.01,corrupt=0.005,engine_at=500`.
    ///
    /// Keys: `seed`, `data_write`, `data_read`, `corrupt`, `table_read`,
    /// `table_write`, `nic`, `engine_at`. Probabilities must be in
    /// `[0, 1]`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending key or value.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{part}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("bad probability `{v}` for `{key}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability `{v}` for `{key}` outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "data_write" => plan.data_write_error = prob(value)?,
                "data_read" => plan.data_read_error = prob(value)?,
                "corrupt" => plan.data_read_corrupt = prob(value)?,
                "table_read" => plan.table_read_error = prob(value)?,
                "table_write" => plan.table_write_error = prob(value)?,
                "nic" => plan.nic_pressure = prob(value)?,
                "engine_at" => {
                    plan.engine_fail_at = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad engine_at `{value}`"))?,
                    );
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Bounded retry with exponential backoff, charged as *modelled* time (a
/// simulated device's service clock), never wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: Duration,
    /// Ceiling for the doubled backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base: Duration::from_micros(10),
            backoff_cap: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// Modelled backoff before retry number `attempt` (0-based):
    /// `base * 2^attempt`, capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX);
        (self.backoff_base * factor).min(self.backoff_cap)
    }
}

/// Counters of injector activity, per site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    checks: [u64; 7],
    injected: [u64; 7],
}

impl FaultStats {
    /// Decisions asked of a site so far.
    pub fn checks(&self, site: FaultSite) -> u64 {
        self.checks[site.idx()]
    }

    /// Faults injected at a site so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.idx()]
    }

    /// Faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Exports `faults.<site>.checks` / `faults.<site>.injected` counters
    /// for every site (zeros included, so fault-free snapshots still show
    /// the full schema).
    pub fn export_metrics(&self, out: &mut fidr_metrics::MetricsSnapshot) {
        for site in FaultSite::ALL {
            out.set_counter(&format!("faults.{}.checks", site.slug()), self.checks(site));
            out.set_counter(
                &format!("faults.{}.injected", site.slug()),
                self.injected(site),
            );
        }
    }
}

#[derive(Debug)]
struct InjectorState {
    plan: FaultPlan,
    stats: FaultStats,
    engine_failed: bool,
}

/// A cloneable handle to shared, seeded fault state. Every clone draws
/// from the same per-site decision streams, so one injector can span the
/// data SSDs, table SSDs and the system without losing determinism.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: Arc<Mutex<InjectorState>>,
}

/// SplitMix64: a tiny, high-quality mixing function; decision `n` at a
/// site is `mix(mix(seed ^ site_salt) ^ n)`, so streams are independent
/// per site and reproducible regardless of cross-site interleaving.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            state: Arc::new(Mutex::new(InjectorState {
                plan,
                stats: FaultStats::default(),
                engine_failed: false,
            })),
        }
    }

    /// An injector that never fires (the inert plan).
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::none())
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> FaultPlan {
        self.lock().plan
    }

    /// Decides whether the next operation at a probabilistic `site`
    /// faults. Deterministic in `(plan.seed, site, call number)`.
    pub fn fire(&self, site: FaultSite) -> bool {
        let mut s = self.lock();
        let p = s.plan.probability(site);
        let n = s.stats.checks[site.idx()];
        s.stats.checks[site.idx()] += 1;
        if p <= 0.0 {
            return false;
        }
        let h = mix(mix(s.plan.seed ^ ((site.idx() as u64) << 56)) ^ n);
        // 53 uniform mantissa bits -> [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let fired = u < p;
        if fired {
            s.stats.injected[site.idx()] += 1;
        }
        fired
    }

    /// Advances the Cache HW-Engine access counter by `accesses` and
    /// reports whether the engine just crossed its scheduled failure
    /// point. Returns `true` exactly once; the failure is permanent (see
    /// [`engine_failed`](FaultInjector::engine_failed)).
    pub fn engine_accesses(&self, accesses: u64) -> bool {
        let mut s = self.lock();
        s.stats.checks[FaultSite::CacheEngine.idx()] += accesses;
        let Some(at) = s.plan.engine_fail_at else {
            return false;
        };
        if s.engine_failed || s.stats.checks[FaultSite::CacheEngine.idx()] < at {
            return false;
        }
        s.engine_failed = true;
        s.stats.injected[FaultSite::CacheEngine.idx()] += 1;
        true
    }

    /// Whether the Cache HW-Engine has permanently failed.
    pub fn engine_failed(&self) -> bool {
        self.lock().engine_failed
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert_and_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(inj.plan().is_inert());
        for site in FaultSite::ALL {
            for _ in 0..50 {
                assert!(!inj.fire(site));
            }
        }
        assert_eq!(inj.stats().injected_total(), 0);
        assert_eq!(inj.stats().checks(FaultSite::DataRead), 50);
    }

    #[test]
    fn decisions_are_reproducible_across_injectors() {
        let plan = FaultPlan {
            seed: 1234,
            data_read_error: 0.3,
            table_write_error: 0.1,
            ..FaultPlan::default()
        };
        let a = FaultInjector::new(plan);
        let b = FaultInjector::new(plan);
        // Interleave sites differently on b: per-site streams must agree.
        let a_reads: Vec<bool> = (0..200).map(|_| a.fire(FaultSite::DataRead)).collect();
        let a_writes: Vec<bool> = (0..200).map(|_| a.fire(FaultSite::TableWrite)).collect();
        let mut b_reads = Vec::new();
        let mut b_writes = Vec::new();
        for _ in 0..200 {
            b_writes.push(b.fire(FaultSite::TableWrite));
            b_reads.push(b.fire(FaultSite::DataRead));
        }
        assert_eq!(a_reads, b_reads);
        assert_eq!(a_writes, b_writes);
    }

    #[test]
    fn fire_rate_tracks_probability() {
        let plan = FaultPlan {
            seed: 99,
            data_read_error: 0.25,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let n = 4000;
        let fired = (0..n).filter(|_| inj.fire(FaultSite::DataRead)).count();
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn engine_fails_once_at_schedule() {
        let plan = FaultPlan {
            engine_fail_at: Some(10),
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        assert!(!inj.engine_accesses(4));
        assert!(!inj.engine_failed());
        assert!(inj.engine_accesses(8)); // crosses 10
        assert!(inj.engine_failed());
        assert!(!inj.engine_accesses(100), "failure reported exactly once");
        assert_eq!(inj.stats().injected(FaultSite::CacheEngine), 1);
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan {
            seed: 5,
            data_write_error: 1.0,
            ..FaultPlan::default()
        };
        let a = FaultInjector::new(plan);
        let b = a.clone();
        assert!(a.fire(FaultSite::DataWrite));
        assert_eq!(b.stats().injected(FaultSite::DataWrite), 1);
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "seed=42, data_write=0.1, data_read=0.2, corrupt=0.05, \
             table_read=0.01, table_write=0.02, nic=0.3, engine_at=500",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.data_write_error, 0.1);
        assert_eq!(plan.data_read_error, 0.2);
        assert_eq!(plan.data_read_corrupt, 0.05);
        assert_eq!(plan.table_read_error, 0.01);
        assert_eq!(plan.table_write_error, 0.02);
        assert_eq!(plan.nic_pressure, 0.3);
        assert_eq!(plan.engine_fail_at, Some(500));
        assert!(!plan.is_inert());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("data_read").is_err());
        assert!(FaultPlan::parse("data_read=2.0").is_err());
        assert!(FaultPlan::parse("data_read=-0.1").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("").unwrap().is_inert());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            backoff_base: Duration::from_micros(10),
            backoff_cap: Duration::from_micros(55),
        };
        assert_eq!(p.backoff(0), Duration::from_micros(10));
        assert_eq!(p.backoff(1), Duration::from_micros(20));
        assert_eq!(p.backoff(2), Duration::from_micros(40));
        assert_eq!(p.backoff(3), Duration::from_micros(55));
        assert_eq!(p.backoff(30), Duration::from_micros(55));
    }
}
