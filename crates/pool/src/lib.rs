//! # fidr-pool
//!
//! A persistent worker pool for the FIDR per-socket batch pipeline.
//!
//! Before this crate, every drained NIC batch spawned fresh scoped
//! threads for hashing, dedup lookups and speculative compression —
//! `BENCH_pr4.json` measured that per-batch spawn overhead pushing the
//! 4-worker pipeline to a 0.94× wall-clock *slowdown*. Here the threads
//! are spawned once, live for the life of the system, and each batch is
//! a handful of bounded-queue pushes.
//!
//! ## Architecture
//!
//! ```text
//!   submitting thread                    worker 0   worker 1   ...
//!   ─────────────────                    ────────   ────────
//!   pool.scope(|s| {          queue 0 ──▶ job        .
//!     s.spawn_on(0, job_a);   queue 1 ─────────────▶ job
//!     s.spawn_on(1, job_b);   (bounded VecDeques,
//!   })                         idle workers steal)
//!        ▲ blocks until every spawned job finished
//! ```
//!
//! * **Thread-per-shard affinity** — [`Scope::spawn_on`]`(k, job)`
//!   enqueues onto worker `k % workers`'s own queue. The batch pipeline
//!   keys `k` to its shard-group number, so the same long-lived thread
//!   serves the same `ShardedTableCache` shards batch after batch
//!   (warm per-thread state on multi-core hosts).
//! * **Bounded queues, work stealing** — each worker owns a bounded
//!   [`VecDeque`]; submission blocks when the target queue is full
//!   (backpressure, counted in [`PoolStats::submit_waits`]). An idle
//!   worker steals from the back of the longest sibling queue
//!   ([`PoolStats::jobs_stolen`]); jobs own or exclusively borrow their
//!   inputs, so *where* a job runs never changes *what* it computes.
//! * **Scoped borrows on persistent threads** — [`WorkerPool::scope`]
//!   mirrors `std::thread::scope`: jobs may borrow from the caller's
//!   stack because `scope` does not return (even by unwinding) until
//!   every spawned job has finished. This is the crate's one `unsafe`
//!   (a lifetime erasure), confined to [`Scope::spawn_on`].
//! * **Shutdown drains** — dropping the pool marks it shut down, wakes
//!   every worker, and joins them; workers exit only once **all** queues
//!   are empty, so detached in-flight jobs always complete.
//!
//! ## Determinism
//!
//! The pool never reorders observable results by itself: callers
//! scatter job outputs into pre-assigned slots and replay any shared
//! accounting in batch order on the submitting thread (see
//! `fidr-core`). Pool counters ([`PoolStats`]) are wall-clock
//! diagnostics that *do* vary with worker count and host load; they are
//! therefore exported outside the deterministic `fidr.metrics.v1`
//! snapshot — see `docs/OBSERVABILITY.md` for the contract.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A queued unit of work. Jobs created through [`Scope::spawn_on`] are
/// lifetime-erased; the scope's completion barrier keeps their borrows
/// valid for as long as they can run.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Default per-worker queue bound (jobs, not bytes). Batches submit at
/// most a few jobs per worker, so a small bound keeps memory flat while
/// never blocking the common case.
const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Everything guarded by the pool's single mutex. One lock for all
/// queues keeps stealing and the empty/full conditions race-free; jobs
/// are coarse (thousands of hash/compress/lookup operations each), so
/// the lock is held for a vanishing fraction of runtime.
struct State {
    /// One bounded queue per worker, indexed by affinity.
    queues: Vec<VecDeque<Job>>,
    /// Total queued jobs across all queues (gauge).
    queued: usize,
    /// Deepest any single queue has been.
    max_queue_depth: usize,
    /// Set by `Drop`; workers exit once this is set *and* all queues
    /// are empty (shutdown drains in-flight work).
    shutdown: bool,
    /// Jobs handed off to a worker queue so far.
    handoffs: u64,
    /// Jobs executed by a worker other than their affine one.
    stolen: u64,
    /// Jobs finished (including panicked ones).
    executed: u64,
    /// Jobs whose closure panicked (the panic is rethrown by the
    /// owning scope; detached jobs just count it).
    panicked: u64,
    /// Times a submitter blocked on a full queue.
    submit_waits: u64,
}

struct Inner {
    state: Mutex<State>,
    /// Workers sleep here when no job is runnable.
    work_cv: Condvar,
    /// Submitters sleep here when the target queue is full.
    room_cv: Condvar,
    /// Per-worker queue bound.
    depth: usize,
    /// Total worker nanoseconds spent running jobs.
    busy_ns: AtomicU64,
    /// Total worker nanoseconds spent waiting for jobs.
    idle_ns: AtomicU64,
    /// Completed `scope` calls.
    scopes: AtomicU64,
}

/// Counters and gauges describing the pool's lifetime activity, read
/// with [`WorkerPool::stats`]. All values are wall-clock diagnostics:
/// they vary with worker count, stealing luck and host load, and are
/// deliberately kept out of the deterministic metrics export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Persistent worker threads in the pool.
    pub workers: usize,
    /// Jobs handed off to worker queues (every submission is one
    /// bounded-channel push — contrast with a thread spawn per job).
    pub handoffs: u64,
    /// Jobs an idle worker stole from a sibling's queue.
    pub jobs_stolen: u64,
    /// Jobs executed to completion (including panicked ones).
    pub jobs_executed: u64,
    /// Jobs whose closure panicked.
    pub jobs_panicked: u64,
    /// Completed [`WorkerPool::scope`] calls (≈ pipeline batches).
    pub scopes: u64,
    /// Times a submitter blocked because the target queue was full.
    pub submit_waits: u64,
    /// Jobs currently queued (gauge at sampling time).
    pub queued: usize,
    /// Deepest any single worker queue has been.
    pub max_queue_depth: usize,
    /// Total worker time spent running jobs, in nanoseconds.
    pub busy_ns: u64,
    /// Total worker time spent waiting for jobs, in nanoseconds.
    pub idle_ns: u64,
}

/// A pool of persistent worker threads; see the [crate docs](crate) for
/// the architecture.
///
/// # Examples
///
/// ```
/// use fidr_pool::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let mut results = vec![0u64; 4];
/// pool.scope(|s| {
///     for (k, slot) in results.iter_mut().enumerate() {
///         s.spawn_on(k, move || *slot = (k as u64 + 1) * 10);
///     }
/// });
/// assert_eq!(results, [10, 20, 30, 40]);
/// ```
pub struct WorkerPool {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.threads.len())
            .field("depth", &self.inner.depth)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` persistent threads (at least one) with
    /// the default per-worker queue bound.
    pub fn new(workers: usize) -> Self {
        Self::with_queue_depth(workers, DEFAULT_QUEUE_DEPTH)
    }

    /// Spawns a pool with an explicit per-worker queue bound (at least
    /// one slot); submission to a full queue blocks until a worker
    /// drains it.
    pub fn with_queue_depth(workers: usize, depth: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                queued: 0,
                max_queue_depth: 0,
                shutdown: false,
                handoffs: 0,
                stolen: 0,
                executed: 0,
                panicked: 0,
                submit_waits: 0,
            }),
            work_cv: Condvar::new(),
            room_cv: Condvar::new(),
            depth: depth.max(1),
            busy_ns: AtomicU64::new(0),
            idle_ns: AtomicU64::new(0),
            scopes: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|k| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fidr-worker-{k}"))
                    .spawn(move || worker_loop(k, &inner))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { inner, threads }
    }

    /// Number of persistent worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Runs `f` with a [`Scope`] whose jobs may borrow from the caller's
    /// stack, and returns once **every** spawned job has finished — the
    /// persistent-pool analogue of `std::thread::scope`.
    ///
    /// Must not be called from inside a pool job (a worker waiting on
    /// its own pool can deadlock a fully-busy pool).
    ///
    /// # Panics
    ///
    /// If `f` or any spawned job panics, the panic is resumed on this
    /// thread — after all jobs have still been waited for.
    pub fn scope<'env, F, T>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let scope = Scope {
            pool: self,
            sync: Arc::new(ScopeSync {
                pending: Mutex::new(Pending {
                    remaining: 0,
                    panic: None,
                }),
                done_cv: Condvar::new(),
            }),
            scope_lt: std::marker::PhantomData,
            env_lt: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The completion barrier runs no matter how `f` exited: borrows
        // held by queued jobs stay valid until the jobs are done.
        let job_panic = scope.wait_all();
        self.inner.scopes.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(value) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                value
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Enqueues a free-standing (`'static`) job on worker
    /// `affinity % workers` without waiting for it; the job is
    /// guaranteed to run even if the pool is dropped immediately after
    /// (shutdown drains the queues). Blocks while the target queue is
    /// full. Panics inside the job are caught and counted.
    pub fn submit_detached(&self, affinity: usize, job: impl FnOnce() + Send + 'static) {
        let inner = Arc::clone(&self.inner);
        self.enqueue(
            affinity,
            Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                record_outcome(&inner, outcome.is_err());
            }),
        );
    }

    /// A snapshot of the pool's diagnostic counters.
    pub fn stats(&self) -> PoolStats {
        let st = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        PoolStats {
            workers: self.threads.len(),
            handoffs: st.handoffs,
            jobs_stolen: st.stolen,
            jobs_executed: st.executed,
            jobs_panicked: st.panicked,
            scopes: self.inner.scopes.load(Ordering::Relaxed),
            submit_waits: st.submit_waits,
            queued: st.queued,
            max_queue_depth: st.max_queue_depth,
            busy_ns: self.inner.busy_ns.load(Ordering::Relaxed),
            idle_ns: self.inner.idle_ns.load(Ordering::Relaxed),
        }
    }

    /// Pushes `job` onto worker `affinity % workers`'s bounded queue,
    /// blocking while it is full.
    fn enqueue(&self, affinity: usize, job: Job) {
        let k = affinity % self.threads.len();
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
        while st.queues[k].len() >= inner.depth {
            st.submit_waits += 1;
            st = inner.room_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st.queues[k].push_back(job);
        st.queued += 1;
        st.handoffs += 1;
        st.max_queue_depth = st.max_queue_depth.max(st.queues[k].len());
        drop(st);
        inner.work_cv.notify_all();
    }
}

impl Drop for WorkerPool {
    /// Shuts the pool down, *draining* first: workers keep pulling jobs
    /// until every queue is empty, then exit and are joined.
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// What a worker found when it asked for work.
enum Found {
    /// A job, and whether it came from a sibling's queue.
    Job(Job, bool),
    /// Shutdown with every queue empty.
    Exit,
}

fn worker_loop(k: usize, inner: &Inner) {
    loop {
        let idle_from = Instant::now();
        let found = {
            let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(job) = st.queues[k].pop_front() {
                    break Found::Job(job, false);
                }
                // Steal from the back of the longest sibling queue.
                let victim = (0..st.queues.len())
                    .filter(|&i| i != k)
                    .max_by_key(|&i| st.queues[i].len())
                    .filter(|&i| !st.queues[i].is_empty());
                if let Some(v) = victim {
                    let job = st.queues[v].pop_back().expect("victim queue non-empty");
                    st.stolen += 1;
                    break Found::Job(job, true);
                }
                if st.shutdown {
                    break Found::Exit;
                }
                st = inner.work_cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        };
        let job = match found {
            Found::Job(job, _stolen) => {
                let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
                st.queued -= 1;
                drop(st);
                inner.room_cv.notify_all();
                job
            }
            Found::Exit => return,
        };
        inner
            .idle_ns
            .fetch_add(idle_from.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let busy_from = Instant::now();
        // Every queued job is a submit_detached/spawn_on wrapper that
        // catches its own panics and records its outcome *before*
        // signaling completion (so stats are current the moment a scope
        // returns); this outer catch only keeps the worker alive.
        let _ = catch_unwind(AssertUnwindSafe(job));
        inner
            .busy_ns
            .fetch_add(busy_from.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Counts one finished job (and optionally one panic) in the pool
/// stats. Called from inside the job wrappers so that counters are
/// already updated when a scope's completion barrier releases.
fn record_outcome(inner: &Inner, panicked: bool) {
    let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
    st.executed += 1;
    if panicked {
        st.panicked += 1;
    }
}

/// Barrier state shared between a [`Scope`] and its in-flight jobs.
struct ScopeSync {
    pending: Mutex<Pending>,
    done_cv: Condvar,
}

struct Pending {
    /// Jobs spawned but not yet finished.
    remaining: usize,
    /// First panic payload raised by a job (rethrown by `scope`).
    panic: Option<Box<dyn Any + Send>>,
}

/// A batch submission scope created by [`WorkerPool::scope`]; jobs
/// spawned through it may borrow anything that outlives the `scope`
/// call, exactly like `std::thread::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope WorkerPool,
    sync: Arc<ScopeSync>,
    /// Invariant over `'scope` (the same trick `std::thread::Scope`
    /// uses) so a scope cannot be smuggled into an outer region.
    scope_lt: std::marker::PhantomData<&'scope mut &'scope ()>,
    env_lt: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Enqueues `f` on worker `affinity % workers` (thread-per-shard
    /// affinity: the same worker serves the same affinity every batch).
    /// The job may borrow from the environment; the owning
    /// [`WorkerPool::scope`] call waits for it before returning. Blocks
    /// while the target worker's bounded queue is full. A panicking job
    /// is rethrown by the `scope` call after all jobs finish.
    #[allow(unsafe_code)]
    pub fn spawn_on<F>(&'scope self, affinity: usize, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let sync = Arc::clone(&self.sync);
        let inner = Arc::clone(&self.pool.inner);
        let wrapper = move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            record_outcome(&inner, outcome.is_err());
            let mut pending = sync.pending.lock().unwrap_or_else(|p| p.into_inner());
            if let Err(payload) = outcome {
                pending.panic.get_or_insert(payload);
            }
            pending.remaining -= 1;
            if pending.remaining == 0 {
                sync.done_cv.notify_all();
            }
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(wrapper);
        // SAFETY: lifetime erasure only. `WorkerPool::scope` does not
        // return — on success *or* unwind — until `wait_all` has seen
        // `remaining == 0`, i.e. until this closure has run to
        // completion on a worker. Every borrow captured in `f` therefore
        // outlives every possible execution of the job, which is the
        // sole obligation `'static` would otherwise encode. The box is
        // a fat pointer whose layout does not depend on the lifetime.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        {
            let mut pending = self.sync.pending.lock().unwrap_or_else(|p| p.into_inner());
            pending.remaining += 1;
        }
        self.pool.enqueue(affinity, job);
    }

    /// Blocks until every spawned job has finished; returns the first
    /// job panic payload, if any.
    fn wait_all(&self) -> Option<Box<dyn Any + Send>> {
        let mut pending = self.sync.pending.lock().unwrap_or_else(|p| p.into_inner());
        while pending.remaining > 0 {
            pending = self
                .sync
                .done_cv
                .wait(pending)
                .unwrap_or_else(|p| p.into_inner());
        }
        pending.panic.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn scope_runs_all_jobs_with_borrows() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0usize; 10];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn_on(i, move || *slot = i * i);
            }
        });
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!(stats.handoffs, 10);
        assert_eq!(stats.jobs_executed, 10);
        assert_eq!(stats.scopes, 1);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn empty_scope_returns() {
        let pool = WorkerPool::new(2);
        let v = pool.scope(|_s| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn affinity_prefers_own_worker_but_work_completes_anyway() {
        // All jobs pinned to worker 0; with multiple workers some may be
        // stolen, but every job must run exactly once.
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn_on(0, || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_reuses_persistent_threads() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.scope(|s| {
                for k in 0..2 {
                    s.spawn_on(k, || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(pool.stats().scopes, 50);
        assert_eq!(pool.stats().workers, 2);
    }

    #[test]
    fn job_panic_propagates_after_all_jobs_finish() {
        let pool = WorkerPool::new(2);
        let survivors = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&survivors);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn_on(0, || panic!("job boom"));
                for k in 0..8 {
                    let survivors = Arc::clone(&seen);
                    s.spawn_on(k, move || {
                        survivors.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must rethrow the job panic");
        // The barrier ran: every non-panicking job still completed.
        assert_eq!(survivors.load(Ordering::Relaxed), 8);
        assert_eq!(pool.stats().jobs_panicked, 1);
    }

    #[test]
    fn shutdown_drains_in_flight_jobs() {
        // Fill the queues with slow detached jobs and drop the pool
        // immediately: every job must still run (drop drains, then
        // joins), which is what lets `FidrSystem` be dropped mid-batch
        // without losing speculative work.
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        const JOBS: usize = 24;
        for i in 0..JOBS {
            let done = Arc::clone(&done);
            pool.submit_detached(i, move || {
                std::thread::sleep(Duration::from_millis(2));
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), JOBS);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let pool = WorkerPool::with_queue_depth(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let opened = Arc::clone(&gate);
        // Park the single worker so submissions pile into the queue.
        pool.submit_detached(0, move || {
            let (lock, cv) = &*opened;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        // Overfill from another thread, then open the gate.
        let pool = Arc::new(pool);
        let submitter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for i in 0..6 {
                    pool.submit_detached(i, || {});
                }
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        submitter.join().unwrap();
        // Wait for every job to finish before asserting.
        while pool.stats().jobs_executed < 7 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            pool.stats().submit_waits > 0,
            "a full bounded queue must block the submitter"
        );
        assert_eq!(pool.stats().queued, 0);
    }

    #[test]
    fn stats_track_busy_time() {
        let pool = WorkerPool::new(2);
        pool.scope(|s| {
            for k in 0..2 {
                s.spawn_on(k, || std::thread::sleep(Duration::from_millis(5)));
            }
        });
        assert!(pool.stats().busy_ns >= 5_000_000);
    }

    #[test]
    fn zero_workers_rounds_up_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let mut hit = false;
        pool.scope(|s| s.spawn_on(7, || hit = true));
        assert!(hit);
    }
}
