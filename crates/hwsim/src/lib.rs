//! # fidr-hwsim
//!
//! The hardware-resource substrate of the FIDR reproduction. The paper's
//! evaluation is resource accounting — host memory bandwidth by data path
//! (Table 1), CPU cycles by task (Figure 5b, Table 2), PCIe bytes by link —
//! followed by a linear projection onto socket capacities (§7.5). This crate
//! provides exactly those pieces:
//!
//! * [`Ledger`] — byte/cycle counters tagged with [`MemPath`], [`CpuTask`]
//!   and [`PcieLink`] categories;
//! * [`ops`] — canned data movements (host-bounce DMA vs P2P) that charge
//!   the ledger consistently;
//! * [`CostParams`] / [`PlatformSpec`] / [`TableGeometry`] — calibrated
//!   constants with their paper citations;
//! * [`Projection`] — the min-over-resources throughput model behind
//!   Figures 4, 5, 11, 12 and 14;
//! * [`report`] — table renderers used by the bench harness.
//!
//! # Examples
//!
//! ```
//! use fidr_hwsim::{ops, Ledger, MemPath, PcieLink, PlatformSpec, Projection};
//!
//! let mut ledger = Ledger::new();
//! ledger.add_client_write_bytes(1 << 20);
//! // A client write bounced NIC → host memory → FPGA.
//! ops::bounce_via_host(
//!     &mut ledger,
//!     PcieLink::NicHost,
//!     PcieLink::HostCompression,
//!     MemPath::FpgaStaging,
//!     1 << 20,
//! );
//! let proj = Projection::project(&ledger, &PlatformSpec::default(), &[]);
//! assert!(proj.achievable > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
mod ledger;
pub mod ops;
mod params;
mod projection;
pub mod report;
mod time;

pub use ledger::{CpuTask, Ledger, MemPath, PcieLink};
pub use params::{CostParams, PlatformSpec, TableGeometry};
pub use projection::{Projection, Resource, ResourceCeiling};
pub use time::TimeModel;
