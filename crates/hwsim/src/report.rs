//! Formatting helpers that render ledgers as the paper's tables.
//!
//! The bench binaries print their results through these functions so every
//! experiment emits the same row layout as the corresponding paper table.

use crate::ledger::{CpuTask, Ledger, MemPath};
use crate::params::PlatformSpec;
use crate::projection::Projection;
use std::fmt::Write as _;

/// Renders the Table 1 memory-bandwidth breakdown for one ledger.
pub fn memory_breakdown_table(ledger: &Ledger) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>10} {:>14}",
        "Data Path", "Memory BW", "Bytes"
    );
    for path in MemPath::ALL {
        let _ = writeln!(
            out,
            "{:<36} {:>9.1}% {:>14}",
            path.label(),
            ledger.mem_fraction(path) * 100.0,
            ledger.mem_bytes(path)
        );
    }
    let _ = writeln!(
        out,
        "{:<36} {:>10} {:>14}",
        "total",
        "100.0%",
        ledger.mem_total()
    );
    out
}

/// Renders the Figure 5b / Table 2 CPU utilization breakdown.
pub fn cpu_breakdown_table(ledger: &Ledger) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>9} {:>16}",
        "Component", "CPU util", "Cycles"
    );
    for task in CpuTask::ALL {
        let cycles = ledger.cpu_cycles(task);
        if cycles == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<34} {:>8.1}% {:>16}",
            task.label(),
            ledger.cpu_fraction(task) * 100.0,
            cycles
        );
    }
    let _ = writeln!(
        out,
        "{:<34} {:>8.1}% {:>16}",
        "memory/IO management subtotal",
        ledger.cpu_management_fraction() * 100.0,
        ""
    );
    out
}

/// Renders the projection ceilings (most binding first).
pub fn projection_table(
    ledger: &Ledger,
    platform: &PlatformSpec,
    extra: &[(String, f64)],
) -> String {
    let proj = Projection::project(ledger, platform, extra);
    let mut out = String::new();
    let _ = writeln!(out, "{:<34} {:>16}", "Resource", "Ceiling (GB/s)");
    for c in &proj.ceilings {
        let ceiling = if c.max_throughput.is_infinite() {
            "unbounded".to_string()
        } else {
            format!("{:.1}", c.max_throughput / 1e9)
        };
        let _ = writeln!(out, "{:<34} {:>16}", c.resource.to_string(), ceiling);
    }
    let _ = writeln!(
        out,
        "achievable: {:.1} GB/s (bottleneck: {})",
        proj.achievable / 1e9,
        proj.bottleneck()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> Ledger {
        let mut l = Ledger::new();
        l.add_client_write_bytes(1000);
        l.charge_mem(MemPath::NicBuffering, 500);
        l.charge_mem(MemPath::TableCache, 1500);
        l.charge_cpu(CpuTask::TreeIndexing, 800);
        l.charge_cpu(CpuTask::Other, 200);
        l
    }

    #[test]
    fn memory_table_contains_all_rows_and_percentages() {
        let s = memory_breakdown_table(&ledger());
        assert!(s.contains("NIC <-> host memory"));
        assert!(s.contains("25.0%"));
        assert!(s.contains("75.0%"));
        assert!(s.contains("total"));
    }

    #[test]
    fn cpu_table_skips_untouched_tasks() {
        let s = cpu_breakdown_table(&ledger());
        assert!(s.contains("table cache tree indexing"));
        assert!(!s.contains("unique chunk predictor"));
        assert!(s.contains("80.0%"));
    }

    #[test]
    fn projection_table_names_bottleneck() {
        let s = projection_table(&ledger(), &PlatformSpec::default(), &[]);
        assert!(s.contains("achievable:"));
        assert!(s.contains("bottleneck:"));
    }
}
