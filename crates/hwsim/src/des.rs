//! Discrete-event simulation of tandem service pipelines.
//!
//! The paper's §7.5 projection and §7.6 latency model are *analytic*:
//! linear resource division and additive stage sums. This module provides
//! the event-driven cross-check: jobs arrive at a configurable rate and
//! flow through FCFS stations (each with one or more servers and a
//! deterministic service time); the simulator reports measured
//! throughput, mean/percentile latency and per-station utilization, so
//! queueing effects the closed forms approximate can be observed
//! directly.
//!
//! Results export through the workspace-wide `fidr.metrics.v1` schema:
//! [`SimResult::export_metrics`] emits `des.completed.jobs`,
//! `des.throughput.hz`, `des.latency_mean.ns`, `des.latency_p99.ns` and
//! per-station `des.util.<station>.ratio` gauges (station names slugged;
//! see `docs/OBSERVABILITY.md`).

use std::time::Duration;

/// One service station in a pipeline.
#[derive(Debug, Clone)]
pub struct Station {
    /// Display name.
    pub name: &'static str,
    /// Deterministic per-job service time.
    pub service: Duration,
    /// Parallel servers (e.g. SSDs in an array, FPGA engines).
    pub servers: u32,
}

impl Station {
    /// Creates a single-server station.
    pub fn new(name: &'static str, service: Duration) -> Self {
        Station {
            name,
            service,
            servers: 1,
        }
    }

    /// Creates a station with `servers` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn with_servers(name: &'static str, service: Duration, servers: u32) -> Self {
        assert!(servers > 0, "station needs at least one server");
        Station {
            name,
            service,
            servers,
        }
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Jobs completed.
    pub completed: usize,
    /// Completed jobs per second (measured, not offered).
    pub throughput_hz: f64,
    /// Mean end-to-end sojourn time.
    pub mean_latency: Duration,
    /// 99th-percentile sojourn time.
    pub p99_latency: Duration,
    /// Busy-time utilization per station, in pipeline order.
    pub utilization: Vec<f64>,
}

impl SimResult {
    /// Exports the run as gauges under the `des.*` prefix: throughput,
    /// mean/p99 latency in nanoseconds, and per-station utilization as
    /// `des.util.<station>.ratio` (station names slugged, in pipeline
    /// order; see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, station_names: &[&str], out: &mut fidr_metrics::MetricsSnapshot) {
        out.set_counter("des.completed.jobs", self.completed as u64);
        out.set_gauge("des.throughput.hz", self.throughput_hz);
        out.set_gauge("des.latency_mean.ns", self.mean_latency.as_nanos() as f64);
        out.set_gauge("des.latency_p99.ns", self.p99_latency.as_nanos() as f64);
        for (name, util) in station_names.iter().zip(&self.utilization) {
            out.set_gauge(
                &format!("des.util.{}.ratio", fidr_metrics::slug(name)),
                *util,
            );
        }
    }
}

/// A tandem FCFS pipeline of [`Station`]s.
///
/// # Examples
///
/// ```
/// use fidr_hwsim::des::{PipelineSim, Station};
/// use std::time::Duration;
///
/// let sim = PipelineSim::new(vec![
///     Station::new("ssd", Duration::from_micros(90)),
///     Station::new("decompress", Duration::from_micros(25)),
/// ]);
/// // Offered load well below capacity: latency ~= sum of services.
/// let r = sim.run(10_000, 1_000.0);
/// assert!((r.mean_latency.as_micros() as i64 - 115).abs() < 10);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineSim {
    stations: Vec<Station>,
}

impl PipelineSim {
    /// Builds a pipeline from stations in flow order.
    ///
    /// # Panics
    ///
    /// Panics if `stations` is empty.
    pub fn new(stations: Vec<Station>) -> Self {
        assert!(!stations.is_empty(), "pipeline needs stations");
        PipelineSim { stations }
    }

    /// Station names in pipeline order (pairs with
    /// [`SimResult::export_metrics`]).
    pub fn station_names(&self) -> Vec<&'static str> {
        self.stations.iter().map(|s| s.name).collect()
    }

    /// The pipeline's capacity in jobs/second (the slowest station's
    /// aggregate service rate).
    pub fn capacity_hz(&self) -> f64 {
        self.stations
            .iter()
            .map(|s| f64::from(s.servers) / s.service.as_secs_f64())
            .fold(f64::INFINITY, f64::min)
    }

    /// Runs `jobs` arrivals at a deterministic `arrival_rate_hz` and
    /// measures the steady behaviour (the first 10 % of jobs are treated
    /// as warm-up for the latency statistics).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero or the rate is non-positive.
    pub fn run(&self, jobs: usize, arrival_rate_hz: f64) -> SimResult {
        self.run_with_arrivals(jobs, arrival_rate_hz, None)
    }

    /// Like [`run`](PipelineSim::run) but with Poisson (memoryless)
    /// arrivals drawn from `seed` — the arrival process the M/D/1 closed
    /// form assumes.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero or the rate is non-positive.
    pub fn run_poisson(&self, jobs: usize, arrival_rate_hz: f64, seed: u64) -> SimResult {
        self.run_with_arrivals(jobs, arrival_rate_hz, Some(seed))
    }

    fn run_with_arrivals(
        &self,
        jobs: usize,
        arrival_rate_hz: f64,
        poisson_seed: Option<u64>,
    ) -> SimResult {
        assert!(jobs > 0, "need at least one job");
        assert!(arrival_rate_hz > 0.0, "arrival rate must be positive");
        let interarrival = 1.0 / arrival_rate_hz;
        // xorshift64* exponential sampler for Poisson arrivals.
        let mut rng_state = poisson_seed.map(|s| s | 1);
        let mut next_gap = move || -> f64 {
            match &mut rng_state {
                None => interarrival,
                Some(state) => {
                    *state ^= *state << 13;
                    *state ^= *state >> 7;
                    *state ^= *state << 17;
                    let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                        / (1u64 << 53) as f64;
                    -(1.0 - u).ln() * interarrival
                }
            }
        };

        // Per-station ring of server next-free times.
        let mut server_free: Vec<Vec<f64>> = self
            .stations
            .iter()
            .map(|s| vec![0.0f64; s.servers as usize])
            .collect();
        let mut busy: Vec<f64> = vec![0.0; self.stations.len()];

        let warmup = jobs / 10;
        let mut latencies: Vec<f64> = Vec::with_capacity(jobs - warmup);
        let mut last_departure = 0.0f64;
        let mut clock = 0.0f64;

        for j in 0..jobs {
            clock += next_gap();
            let arrival = clock;
            let mut t = arrival;
            for (si, station) in self.stations.iter().enumerate() {
                // FCFS: take the earliest-free server.
                let (slot, &free_at) = server_free[si]
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                    .expect("station has servers");
                let start = t.max(free_at);
                let done = start + station.service.as_secs_f64();
                server_free[si][slot] = done;
                busy[si] += station.service.as_secs_f64();
                t = done;
            }
            last_departure = t;
            if j >= warmup {
                latencies.push(t - arrival);
            }
        }

        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        let p99 = latencies[(latencies.len() as f64 * 0.99) as usize % latencies.len()];
        let utilization = busy
            .iter()
            .zip(&self.stations)
            .map(|(b, s)| b / (last_departure * f64::from(s.servers)))
            .collect();

        SimResult {
            completed: jobs,
            throughput_hz: jobs as f64 / last_departure,
            mean_latency: Duration::from_secs_f64(mean),
            p99_latency: Duration::from_secs_f64(p99),
            utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage() -> PipelineSim {
        PipelineSim::new(vec![
            Station::new("a", Duration::from_micros(100)),
            Station::new("b", Duration::from_micros(50)),
        ])
    }

    #[test]
    fn capacity_is_bottleneck_rate() {
        let sim = two_stage();
        assert!((sim.capacity_hz() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn light_load_latency_is_service_sum() {
        let r = two_stage().run(5_000, 100.0);
        assert!((r.mean_latency.as_micros() as i64 - 150).abs() <= 1);
        assert!(r.utilization[0] < 0.02);
    }

    #[test]
    fn saturation_caps_throughput_at_capacity() {
        let sim = two_stage();
        // Offer 3x capacity; measured throughput must pin to capacity.
        let r = sim.run(20_000, 30_000.0);
        assert!(
            (r.throughput_hz - sim.capacity_hz()).abs() / sim.capacity_hz() < 0.01,
            "measured {} vs capacity {}",
            r.throughput_hz,
            sim.capacity_hz()
        );
        // The bottleneck station saturates.
        assert!(r.utilization[0] > 0.99);
    }

    #[test]
    fn parallel_servers_scale_capacity() {
        let sim = PipelineSim::new(vec![Station::with_servers(
            "array",
            Duration::from_micros(100),
            4,
        )]);
        assert!((sim.capacity_hz() - 40_000.0).abs() < 1e-6);
        let r = sim.run(20_000, 35_000.0);
        assert!((r.throughput_hz - 35_000.0).abs() / 35_000.0 < 0.01);
    }

    #[test]
    fn latency_grows_with_offered_load() {
        let sim = two_stage();
        let lo = sim.run(10_000, 2_000.0).mean_latency;
        let hi = sim.run(10_000, 9_500.0).mean_latency;
        assert!(hi >= lo, "latency must not shrink with load");
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_panics() {
        two_stage().run(0, 1.0);
    }

    #[test]
    fn poisson_arrivals_match_md1_wait() {
        // Single deterministic server, Poisson arrivals at ρ = 0.5:
        // M/D/1 mean sojourn = S(1 + ρ/(2(1−ρ))) = 1.5 S.
        let s = Duration::from_micros(100);
        let sim = PipelineSim::new(vec![Station::new("srv", s)]);
        let r = sim.run_poisson(200_000, 5_000.0, 42);
        let expected = 1.5 * s.as_secs_f64();
        let measured = r.mean_latency.as_secs_f64();
        assert!(
            (measured - expected).abs() / expected < 0.08,
            "measured {measured:.6}s vs M/D/1 {expected:.6}s"
        );
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let sim = two_stage();
        let a = sim.run_poisson(10_000, 5_000.0, 7).mean_latency;
        let b = sim.run_poisson(10_000, 5_000.0, 7).mean_latency;
        assert_eq!(a, b);
        let c = sim.run_poisson(10_000, 5_000.0, 8).mean_latency;
        assert_ne!(a, c);
    }
}
