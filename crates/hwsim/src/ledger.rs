//! Resource ledgers: every byte moved and every cycle burned, by category.
//!
//! The paper's evaluation is, at its core, *accounting*: Table 1 breaks host
//! memory bandwidth down by data path, Figure 5b / Table 2 break CPU
//! utilization down by task, and Figures 4/11/12/14 are projections over
//! those ledgers. The functional pipelines in `fidr-baseline` and
//! `fidr-core` charge this ledger as they move real bytes; the percentages
//! reported by the benches then *emerge* from the flow structure.

use std::fmt;

/// Host-memory data paths — the rows of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemPath {
    /// NIC ↔ host memory (client request buffering).
    NicBuffering,
    /// Host-memory reads by the unique-chunk predictor.
    UniquePrediction,
    /// Host memory ↔ FPGA accelerators (staging to/from compression).
    FpgaStaging,
    /// Data-reduction table cache management (bucket scans, fills, flushes).
    TableCache,
    /// Host memory ↔ data SSDs.
    DataSsdStaging,
}

impl MemPath {
    /// All paths in Table 1 row order.
    pub const ALL: [MemPath; 5] = [
        MemPath::NicBuffering,
        MemPath::UniquePrediction,
        MemPath::FpgaStaging,
        MemPath::TableCache,
        MemPath::DataSsdStaging,
    ];

    /// Human-readable label matching the paper's wording.
    pub fn label(&self) -> &'static str {
        match self {
            MemPath::NicBuffering => "NIC <-> host memory",
            MemPath::UniquePrediction => "Host memory (unique prediction)",
            MemPath::FpgaStaging => "Host memory <-> FPGAs",
            MemPath::TableCache => "Table cache management",
            MemPath::DataSsdStaging => "Host memory <-> data SSD",
        }
    }
}

impl fmt::Display for MemPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// CPU task categories — the components behind Figure 5b and Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuTask {
    /// Unique-chunk predictor (CIDR baseline only).
    UniquePrediction,
    /// FPGA batch construction and accelerator scheduling.
    BatchScheduling,
    /// Table cache tree indexing (B+ tree search/insert/delete).
    TreeIndexing,
    /// Table-SSD software stack (NVMe queues for fetch/flush).
    TableSsdStack,
    /// Scanning cached table bucket content for fingerprints.
    TableContentScan,
    /// LRU / free-list maintenance for cache replacement.
    CacheReplacement,
    /// Data-SSD software stack (NVMe submission/completion).
    DataSsdStack,
    /// NIC driver and DMA descriptor management.
    NicDriver,
    /// FIDR device manager: inter-device orchestration, bucket-location
    /// computation, flag routing (§5.3 steps 2–6).
    DeviceManager,
    /// LBA→PBA map lookups and updates on the read/write path.
    LbaMap,
    /// Everything else (request parsing, bookkeeping).
    Other,
}

impl CpuTask {
    /// All categories in a stable reporting order.
    pub const ALL: [CpuTask; 11] = [
        CpuTask::UniquePrediction,
        CpuTask::BatchScheduling,
        CpuTask::TreeIndexing,
        CpuTask::TableSsdStack,
        CpuTask::TableContentScan,
        CpuTask::CacheReplacement,
        CpuTask::DataSsdStack,
        CpuTask::NicDriver,
        CpuTask::DeviceManager,
        CpuTask::LbaMap,
        CpuTask::Other,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            CpuTask::UniquePrediction => "unique chunk predictor",
            CpuTask::BatchScheduling => "batch scheduling",
            CpuTask::TreeIndexing => "table cache tree indexing",
            CpuTask::TableSsdStack => "table SSD access stack",
            CpuTask::TableContentScan => "table cache content access",
            CpuTask::CacheReplacement => "cache item replacement",
            CpuTask::DataSsdStack => "data SSD stack",
            CpuTask::NicDriver => "NIC driver / DMA",
            CpuTask::DeviceManager => "device manager orchestration",
            CpuTask::LbaMap => "LBA-PBA map",
            CpuTask::Other => "other",
        }
    }

    /// Whether the paper counts this as "memory management or accelerator
    /// scheduling related" overhead (the 85.2 % in Figure 5b). Essential
    /// IO processing (NIC driver, data-SSD stack, LBA map) is not.
    pub fn is_management(&self) -> bool {
        matches!(
            self,
            CpuTask::UniquePrediction
                | CpuTask::BatchScheduling
                | CpuTask::TreeIndexing
                | CpuTask::TableSsdStack
                | CpuTask::TableContentScan
                | CpuTask::CacheReplacement
                | CpuTask::DeviceManager
        )
    }
}

impl fmt::Display for CpuTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// PCIe links in the per-socket topology (paper §5.6 groups NIC,
/// Compression Engine and data SSDs under one switch for P2P).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieLink {
    /// NIC ↔ host (through root complex).
    NicHost,
    /// Host ↔ compression/decompression FPGA.
    HostCompression,
    /// Host ↔ data SSDs.
    HostDataSsd,
    /// Host ↔ table SSDs.
    HostTableSsd,
    /// Host ↔ Cache HW-Engine (bucket indexes + cache locations).
    HostCacheEngine,
    /// NIC → compression engine, peer-to-peer under the switch.
    NicCompressionP2p,
    /// Compression engine → data SSD, peer-to-peer.
    CompressionDataSsdP2p,
    /// Data SSD → decompression engine, peer-to-peer.
    DataSsdDecompressionP2p,
    /// Decompression engine → NIC, peer-to-peer.
    DecompressionNicP2p,
    /// Cache HW-Engine ↔ table SSDs (engine-resident NVMe queues).
    CacheEngineTableSsd,
}

impl PcieLink {
    /// All links in reporting order.
    pub const ALL: [PcieLink; 10] = [
        PcieLink::NicHost,
        PcieLink::HostCompression,
        PcieLink::HostDataSsd,
        PcieLink::HostTableSsd,
        PcieLink::HostCacheEngine,
        PcieLink::NicCompressionP2p,
        PcieLink::CompressionDataSsdP2p,
        PcieLink::DataSsdDecompressionP2p,
        PcieLink::DecompressionNicP2p,
        PcieLink::CacheEngineTableSsd,
    ];

    /// Whether traffic on this link crosses the PCIe root complex (and so
    /// counts against the socket's root-complex bandwidth).
    pub fn crosses_root_complex(&self) -> bool {
        matches!(
            self,
            PcieLink::NicHost
                | PcieLink::HostCompression
                | PcieLink::HostDataSsd
                | PcieLink::HostTableSsd
                | PcieLink::HostCacheEngine
        )
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            PcieLink::NicHost => "NIC <-> host",
            PcieLink::HostCompression => "host <-> compression FPGA",
            PcieLink::HostDataSsd => "host <-> data SSD",
            PcieLink::HostTableSsd => "host <-> table SSD",
            PcieLink::HostCacheEngine => "host <-> cache HW-engine",
            PcieLink::NicCompressionP2p => "NIC -> compression (P2P)",
            PcieLink::CompressionDataSsdP2p => "compression -> data SSD (P2P)",
            PcieLink::DataSsdDecompressionP2p => "data SSD -> decompression (P2P)",
            PcieLink::DecompressionNicP2p => "decompression -> NIC (P2P)",
            PcieLink::CacheEngineTableSsd => "cache HW-engine <-> table SSD",
        }
    }
}

impl fmt::Display for PcieLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

fn mem_idx(p: MemPath) -> usize {
    MemPath::ALL.iter().position(|&x| x == p).expect("in ALL")
}
fn cpu_idx(t: CpuTask) -> usize {
    CpuTask::ALL.iter().position(|&x| x == t).expect("in ALL")
}
fn link_idx(l: PcieLink) -> usize {
    PcieLink::ALL.iter().position(|&x| x == l).expect("in ALL")
}

/// Accumulated resource usage for one experiment run.
///
/// # Examples
///
/// ```
/// use fidr_hwsim::{CpuTask, Ledger, MemPath};
///
/// let mut ledger = Ledger::new();
/// ledger.charge_mem(MemPath::NicBuffering, 4096);
/// ledger.charge_cpu(CpuTask::TreeIndexing, 1200);
/// ledger.add_client_write_bytes(4096);
/// assert_eq!(ledger.mem_total(), 4096);
/// assert!((ledger.mem_fraction(MemPath::NicBuffering) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    mem_bytes: [u64; 5],
    cpu_cycles: [u64; 11],
    pcie_bytes: [u64; 10],
    /// Bytes moved through FPGA-board DRAM (Cache HW-Engine leaf stage,
    /// compression staging).
    pub fpga_dram_bytes: u64,
    /// Bytes buffered through NIC-board DRAM (FIDR in-NIC buffering).
    pub nic_dram_bytes: u64,
    /// Data-SSD traffic.
    pub data_ssd_read_bytes: u64,
    /// Data-SSD writes (post-reduction; drives SSD lifetime).
    pub data_ssd_write_bytes: u64,
    /// Table-SSD reads (bucket fetches).
    pub table_ssd_read_bytes: u64,
    /// Table-SSD writes (dirty bucket flushes).
    pub table_ssd_write_bytes: u64,
    client_write_bytes: u64,
    client_read_bytes: u64,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Charges `bytes` of host-memory traffic to a data path.
    pub fn charge_mem(&mut self, path: MemPath, bytes: u64) {
        self.mem_bytes[mem_idx(path)] += bytes;
    }

    /// Charges CPU `cycles` to a task category.
    pub fn charge_cpu(&mut self, task: CpuTask, cycles: u64) {
        self.cpu_cycles[cpu_idx(task)] += cycles;
    }

    /// Charges `bytes` on a PCIe link.
    pub fn charge_pcie(&mut self, link: PcieLink, bytes: u64) {
        self.pcie_bytes[link_idx(link)] += bytes;
    }

    /// Records client write payload accepted (the throughput denominator).
    pub fn add_client_write_bytes(&mut self, bytes: u64) {
        self.client_write_bytes += bytes;
    }

    /// Records client read payload served.
    pub fn add_client_read_bytes(&mut self, bytes: u64) {
        self.client_read_bytes += bytes;
    }

    /// Total client bytes (reads + writes) processed.
    pub fn client_bytes(&self) -> u64 {
        self.client_write_bytes + self.client_read_bytes
    }

    /// Client write bytes processed.
    pub fn client_write_bytes(&self) -> u64 {
        self.client_write_bytes
    }

    /// Client read bytes processed.
    pub fn client_read_bytes(&self) -> u64 {
        self.client_read_bytes
    }

    /// Host memory traffic on one path.
    pub fn mem_bytes(&self, path: MemPath) -> u64 {
        self.mem_bytes[mem_idx(path)]
    }

    /// Total host memory traffic.
    pub fn mem_total(&self) -> u64 {
        self.mem_bytes.iter().sum()
    }

    /// Fraction of host-memory traffic on one path (0 when idle).
    pub fn mem_fraction(&self, path: MemPath) -> f64 {
        let total = self.mem_total();
        if total == 0 {
            0.0
        } else {
            self.mem_bytes(path) as f64 / total as f64
        }
    }

    /// CPU cycles charged to one task.
    pub fn cpu_cycles(&self, task: CpuTask) -> u64 {
        self.cpu_cycles[cpu_idx(task)]
    }

    /// Total CPU cycles.
    pub fn cpu_total(&self) -> u64 {
        self.cpu_cycles.iter().sum()
    }

    /// Fraction of CPU cycles in one task (0 when idle).
    pub fn cpu_fraction(&self, task: CpuTask) -> f64 {
        let total = self.cpu_total();
        if total == 0 {
            0.0
        } else {
            self.cpu_cycles(task) as f64 / total as f64
        }
    }

    /// Fraction of CPU cycles the paper classes as memory/IO management.
    pub fn cpu_management_fraction(&self) -> f64 {
        let total = self.cpu_total();
        if total == 0 {
            return 0.0;
        }
        let mgmt: u64 = CpuTask::ALL
            .iter()
            .filter(|t| t.is_management())
            .map(|&t| self.cpu_cycles(t))
            .sum();
        mgmt as f64 / total as f64
    }

    /// PCIe bytes on one link.
    pub fn pcie_bytes(&self, link: PcieLink) -> u64 {
        self.pcie_bytes[link_idx(link)]
    }

    /// Total PCIe traffic crossing the root complex.
    pub fn root_complex_bytes(&self) -> u64 {
        PcieLink::ALL
            .iter()
            .filter(|l| l.crosses_root_complex())
            .map(|&l| self.pcie_bytes(l))
            .sum()
    }

    /// Host-memory bytes per client byte (the Figure 4 slope).
    pub fn mem_bytes_per_client_byte(&self) -> f64 {
        if self.client_bytes() == 0 {
            0.0
        } else {
            self.mem_total() as f64 / self.client_bytes() as f64
        }
    }

    /// CPU cycles per client byte (the Figure 5a slope).
    pub fn cpu_cycles_per_client_byte(&self) -> f64 {
        if self.client_bytes() == 0 {
            0.0
        } else {
            self.cpu_total() as f64 / self.client_bytes() as f64
        }
    }

    /// Accumulates another ledger into this one.
    pub fn merge(&mut self, other: &Ledger) {
        for i in 0..self.mem_bytes.len() {
            self.mem_bytes[i] += other.mem_bytes[i];
        }
        for i in 0..self.cpu_cycles.len() {
            self.cpu_cycles[i] += other.cpu_cycles[i];
        }
        for i in 0..self.pcie_bytes.len() {
            self.pcie_bytes[i] += other.pcie_bytes[i];
        }
        self.fpga_dram_bytes += other.fpga_dram_bytes;
        self.nic_dram_bytes += other.nic_dram_bytes;
        self.data_ssd_read_bytes += other.data_ssd_read_bytes;
        self.data_ssd_write_bytes += other.data_ssd_write_bytes;
        self.table_ssd_read_bytes += other.table_ssd_read_bytes;
        self.table_ssd_write_bytes += other.table_ssd_write_bytes;
        self.client_write_bytes += other.client_write_bytes;
        self.client_read_bytes += other.client_read_bytes;
    }

    /// Exports every ledger category as counters: `mem.<path>.bytes`,
    /// `cpu.<task>.cycles`, `pcie.<link>.bytes` (labels slugged), plus the
    /// device/board byte totals under `ledger.*` and client traffic under
    /// `client.*` (see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, out: &mut fidr_metrics::MetricsSnapshot) {
        use fidr_metrics::slug;
        for path in MemPath::ALL {
            out.set_counter(
                &format!("mem.{}.bytes", slug(path.label())),
                self.mem_bytes(path),
            );
        }
        for task in CpuTask::ALL {
            out.set_counter(
                &format!("cpu.{}.cycles", slug(task.label())),
                self.cpu_cycles(task),
            );
        }
        for link in PcieLink::ALL {
            out.set_counter(
                &format!("pcie.{}.bytes", slug(link.label())),
                self.pcie_bytes(link),
            );
        }
        out.set_counter("mem.total.bytes", self.mem_total());
        out.set_counter("cpu.total.cycles", self.cpu_total());
        out.set_counter("pcie.root_complex.bytes", self.root_complex_bytes());
        out.set_counter("ledger.fpga_dram.bytes", self.fpga_dram_bytes);
        out.set_counter("ledger.nic_dram.bytes", self.nic_dram_bytes);
        out.set_counter("client.write.bytes", self.client_write_bytes);
        out.set_counter("client.read.bytes", self.client_read_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut l = Ledger::new();
        l.charge_mem(MemPath::NicBuffering, 100);
        l.charge_mem(MemPath::FpgaStaging, 300);
        let total: f64 = MemPath::ALL.iter().map(|&p| l.mem_fraction(p)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((l.mem_fraction(MemPath::FpgaStaging) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_fractions_are_zero() {
        let l = Ledger::new();
        assert_eq!(l.mem_fraction(MemPath::TableCache), 0.0);
        assert_eq!(l.cpu_fraction(CpuTask::TreeIndexing), 0.0);
        assert_eq!(l.cpu_management_fraction(), 0.0);
    }

    #[test]
    fn management_fraction_excludes_other() {
        let mut l = Ledger::new();
        l.charge_cpu(CpuTask::TreeIndexing, 60);
        l.charge_cpu(CpuTask::Other, 40);
        assert!((l.cpu_management_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn root_complex_excludes_p2p() {
        let mut l = Ledger::new();
        l.charge_pcie(PcieLink::NicHost, 100);
        l.charge_pcie(PcieLink::NicCompressionP2p, 900);
        assert_eq!(l.root_complex_bytes(), 100);
    }

    #[test]
    fn per_client_byte_slopes() {
        let mut l = Ledger::new();
        l.add_client_write_bytes(1000);
        l.charge_mem(MemPath::NicBuffering, 4000);
        l.charge_cpu(CpuTask::NicDriver, 2000);
        assert!((l.mem_bytes_per_client_byte() - 4.0).abs() < 1e-12);
        assert!((l.cpu_cycles_per_client_byte() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = Ledger::new();
        a.charge_mem(MemPath::TableCache, 10);
        a.add_client_write_bytes(5);
        let mut b = Ledger::new();
        b.charge_mem(MemPath::TableCache, 20);
        b.add_client_read_bytes(7);
        b.fpga_dram_bytes = 3;
        a.merge(&b);
        assert_eq!(a.mem_bytes(MemPath::TableCache), 30);
        assert_eq!(a.client_bytes(), 12);
        assert_eq!(a.fpga_dram_bytes, 3);
    }

    #[test]
    fn all_enums_have_unique_labels() {
        let mem: std::collections::HashSet<_> = MemPath::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(mem.len(), MemPath::ALL.len());
        let cpu: std::collections::HashSet<_> = CpuTask::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(cpu.len(), CpuTask::ALL.len());
        let links: std::collections::HashSet<_> = PcieLink::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(links.len(), PcieLink::ALL.len());
    }
}
