//! Modelled service times derived from the platform capacities.
//!
//! The span tracer (`fidr-trace`) stamps spans with *modelled* nanoseconds
//! rather than wall-clock time, so traces are deterministic per seed. This
//! module turns the byte/cycle accounting that already drives the
//! [`crate::Projection`] into service times: host software time from
//! [`crate::Ledger`] deltas over the socket capacities, and device times
//! from bytes over per-device bandwidths plus a fixed per-IO latency.
//!
//! These are *service* times of an unloaded stage — the same modelling level
//! as `fidr-core`'s `LatencyModel` stages — not queueing delays. They answer
//! "where does a request's time go", which is what critical-path analysis
//! needs; saturation behaviour stays with the projection model.

use crate::ledger::Ledger;
use crate::params::PlatformSpec;

const NS_PER_S: f64 = 1e9;

/// Converts resource consumption into modelled nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeModel {
    /// Core clock in Hz (CPU cycles → ns).
    pub core_hz: f64,
    /// Host DRAM bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Per-device PCIe link bandwidth in bytes/s.
    pub pcie_link_bw: f64,
    /// Per-device table-SSD bandwidth in bytes/s (2 GB/s, Table 5).
    pub table_ssd_bw: f64,
    /// Per-device data-SSD bandwidth in bytes/s.
    pub data_ssd_bw: f64,
    /// NIC hash-engine throughput per engine in bytes/s (line-rate SHA at
    /// 100 Gbps, §5.1).
    pub hash_bw: f64,
    /// Compression-engine throughput in bytes/s (§4.3's VCU1525 pipeline).
    pub compress_bw: f64,
    /// NIC DRAM buffering bandwidth in bytes/s.
    pub nic_bw: f64,
    /// HW-tree pipeline clock in Hz (cycles → ns).
    pub hwtree_clock_hz: f64,
    /// Fixed table-SSD access latency per IO in ns (low-latency NVMe).
    pub table_ssd_io_ns: u64,
    /// Fixed data-SSD access latency per IO in ns (the ~90 µs random-read
    /// service time behind the §7.6 read path).
    pub data_ssd_io_ns: u64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel::from_platform(&PlatformSpec::default())
    }
}

impl TimeModel {
    /// Derives a time model from socket/device capacities. Bandwidth-class
    /// resources come straight from the spec; the per-IO latencies and
    /// engine throughputs are fixed device characteristics.
    pub fn from_platform(p: &PlatformSpec) -> Self {
        TimeModel {
            core_hz: p.core_hz,
            mem_bw: p.mem_bw,
            pcie_link_bw: p.pcie_link_bw,
            // Per-device figures: the spec's table/data SSD numbers are
            // socket aggregates over an array of devices, but one request
            // touches one device.
            table_ssd_bw: 2.0e9,
            data_ssd_bw: 3.5e9,
            hash_bw: 12.5e9,
            compress_bw: 12.5e9,
            nic_bw: 12.5e9,
            hwtree_clock_hz: p.hwtree_clock_hz,
            table_ssd_io_ns: 25_000,
            data_ssd_io_ns: 90_000,
        }
    }

    fn ratio_ns(amount: f64, per_second: f64) -> u64 {
        if per_second <= 0.0 {
            return 0;
        }
        (amount / per_second * NS_PER_S).round() as u64
    }

    /// Host software time implied by a ledger's totals: CPU cycles over the
    /// core clock, plus host-memory and root-complex PCIe transfer time.
    /// Take the difference of this scalar before/after a stage to get that
    /// stage's host time.
    pub fn host_ns(&self, ledger: &Ledger) -> u64 {
        Self::ratio_ns(ledger.cpu_total() as f64, self.core_hz)
            + Self::ratio_ns(ledger.mem_total() as f64, self.mem_bw)
            + Self::ratio_ns(ledger.root_complex_bytes() as f64, self.pcie_link_bw)
    }

    /// CPU-cycle count → ns at the core clock.
    pub fn cycles_ns(&self, cycles: u64) -> u64 {
        Self::ratio_ns(cycles as f64, self.core_hz)
    }

    /// Table-SSD service time for `ios` accesses moving `bytes` total.
    pub fn table_ssd_ns(&self, bytes: u64, ios: u64) -> u64 {
        ios * self.table_ssd_io_ns + Self::ratio_ns(bytes as f64, self.table_ssd_bw)
    }

    /// Data-SSD service time for `ios` accesses moving `bytes` total.
    pub fn data_ssd_ns(&self, bytes: u64, ios: u64) -> u64 {
        ios * self.data_ssd_io_ns + Self::ratio_ns(bytes as f64, self.data_ssd_bw)
    }

    /// Hash time for `bytes` spread over `engines` parallel engines.
    pub fn hash_ns(&self, bytes: u64, engines: usize) -> u64 {
        Self::ratio_ns(bytes as f64, self.hash_bw * engines.max(1) as f64)
    }

    /// (De)compression-engine time for `bytes`.
    pub fn compress_ns(&self, bytes: u64) -> u64 {
        Self::ratio_ns(bytes as f64, self.compress_bw)
    }

    /// NIC buffering/DMA time for `bytes`.
    pub fn nic_ns(&self, bytes: u64) -> u64 {
        Self::ratio_ns(bytes as f64, self.nic_bw)
    }

    /// HW-tree pipeline time for `cycles` at the engine clock.
    pub fn hwtree_ns(&self, cycles: u64) -> u64 {
        Self::ratio_ns(cycles as f64, self.hwtree_clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{CpuTask, MemPath, PcieLink};

    #[test]
    fn host_ns_sums_cpu_mem_and_root_complex() {
        let t = TimeModel::from_platform(&PlatformSpec::default());
        let mut l = Ledger::new();
        assert_eq!(t.host_ns(&l), 0);
        l.charge_cpu(CpuTask::DeviceManager, 2_200); // 1 µs at 2.2 GHz
        assert_eq!(t.host_ns(&l), 1_000);
        l.charge_mem(MemPath::TableCache, 170_000); // 1 µs at 170 GB/s
        assert_eq!(t.host_ns(&l), 2_000);
        // P2P traffic does not cross the root complex, so adds nothing.
        l.charge_pcie(PcieLink::NicCompressionP2p, 1 << 20);
        assert_eq!(t.host_ns(&l), 2_000);
        l.charge_pcie(PcieLink::NicHost, 16_000); // 1 µs at 16 GB/s
        assert_eq!(t.host_ns(&l), 3_000);
    }

    #[test]
    fn device_times_scale_with_bytes_and_ios() {
        let t = TimeModel::default();
        assert_eq!(t.table_ssd_ns(0, 1), t.table_ssd_io_ns);
        assert_eq!(
            t.table_ssd_ns(4096, 1),
            t.table_ssd_io_ns + (4096.0 / t.table_ssd_bw * 1e9).round() as u64
        );
        assert!(t.data_ssd_ns(4096, 1) > t.table_ssd_ns(4096, 1));
        // An engine pair halves hash time.
        assert_eq!(t.hash_ns(8192, 2), t.hash_ns(4096, 1));
        // 250 MHz HW-tree: 4 ns per cycle.
        assert_eq!(t.hwtree_ns(25), 100);
    }

    #[test]
    fn zero_capacity_degrades_to_zero_time() {
        let t = TimeModel {
            hash_bw: 0.0,
            ..TimeModel::default()
        };
        assert_eq!(t.hash_ns(4096, 1), 0);
    }

    #[test]
    fn table_ssd_io_dominates_write_miss_budget() {
        // The paper's argument needs table-SSD IO visible as the dominant
        // stage on cache-miss writes; sanity-check the constants keep that
        // ordering (25 µs IO ≫ µs-scale host/hash/compress work).
        let t = TimeModel::default();
        let host_like = t.cycles_ns(12_000) + t.hash_ns(4096, 1) + t.compress_ns(4096);
        assert!(t.table_ssd_ns(4096, 1) > 2 * host_like);
    }
}
