//! Throughput projection from measured ledgers — the paper's §7.5 method.
//!
//! "We build a basic simulation model based on our measured CPU utilization,
//! memory bandwidth and the throughput of FIDR Cache HW-Engine. Then we
//! project the system throughput assuming a high-end 22-core CPU." This
//! module implements exactly that: per-client-byte resource demands from a
//! [`Ledger`] divide the platform capacities, and the minimum wins.

use crate::ledger::{Ledger, PcieLink};
use crate::params::PlatformSpec;
use std::fmt;

/// A resource that can bound throughput.
#[derive(Debug, Clone, PartialEq)]
pub enum Resource {
    /// Socket DRAM bandwidth.
    HostMemoryBandwidth,
    /// Socket CPU cycles.
    CpuCores,
    /// PCIe root-complex bandwidth.
    PcieRootComplex,
    /// A single PCIe device link.
    PcieLink(String),
    /// FPGA-board DRAM bandwidth.
    FpgaDram,
    /// Data SSD array bandwidth.
    DataSsd,
    /// Table SSD bandwidth.
    TableSsd,
    /// A caller-supplied limit (e.g. the Cache HW-Engine op rate).
    Custom(String),
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::HostMemoryBandwidth => write!(f, "host memory bandwidth"),
            Resource::CpuCores => write!(f, "CPU cores"),
            Resource::PcieRootComplex => write!(f, "PCIe root complex"),
            Resource::PcieLink(l) => write!(f, "PCIe link ({l})"),
            Resource::FpgaDram => write!(f, "FPGA-board DRAM"),
            Resource::DataSsd => write!(f, "data SSDs"),
            Resource::TableSsd => write!(f, "table SSDs"),
            Resource::Custom(name) => write!(f, "{name}"),
        }
    }
}

/// One resource's throughput ceiling.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceCeiling {
    /// Which resource.
    pub resource: Resource,
    /// Maximum client throughput this resource alone permits, bytes/s
    /// (`f64::INFINITY` when the run never touched it).
    pub max_throughput: f64,
    /// Demand per client byte (bytes or cycles per byte).
    pub demand_per_byte: f64,
}

/// Projection of a ledger onto a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// Ceiling per resource, sorted most-binding first.
    pub ceilings: Vec<ResourceCeiling>,
    /// Achievable client throughput in bytes/s.
    pub achievable: f64,
}

impl Projection {
    /// Projects `ledger` onto `platform`, with optional extra custom
    /// ceilings in bytes/s (e.g. the HW-tree's measured rate).
    ///
    /// # Panics
    ///
    /// Panics if the ledger recorded no client bytes.
    pub fn project(ledger: &Ledger, platform: &PlatformSpec, extra: &[(String, f64)]) -> Self {
        let client = ledger.client_bytes();
        assert!(client > 0, "projection requires processed client bytes");
        let clientf = client as f64;

        let mut ceilings = Vec::new();
        let mut push = |resource: Resource, capacity: f64, demand: f64| {
            let demand_per_byte = demand / clientf;
            let max_throughput = if demand_per_byte > 0.0 {
                capacity / demand_per_byte
            } else {
                f64::INFINITY
            };
            ceilings.push(ResourceCeiling {
                resource,
                max_throughput,
                demand_per_byte,
            });
        };

        push(
            Resource::HostMemoryBandwidth,
            platform.mem_bw,
            ledger.mem_total() as f64,
        );
        push(
            Resource::CpuCores,
            platform.cpu_capacity(),
            ledger.cpu_total() as f64,
        );
        push(
            Resource::PcieRootComplex,
            platform.pcie_bw,
            ledger.root_complex_bytes() as f64,
        );
        for link in PcieLink::ALL {
            let bytes = ledger.pcie_bytes(link);
            if bytes > 0 {
                push(
                    Resource::PcieLink(link.label().to_string()),
                    platform.pcie_link_bw * platform.pcie_links_per_class,
                    bytes as f64,
                );
            }
        }
        push(
            Resource::FpgaDram,
            platform.fpga_dram_bw,
            ledger.fpga_dram_bytes as f64,
        );
        push(
            Resource::DataSsd,
            platform.data_ssd_bw,
            (ledger.data_ssd_read_bytes + ledger.data_ssd_write_bytes) as f64,
        );
        push(
            Resource::TableSsd,
            platform.table_ssd_bw,
            (ledger.table_ssd_read_bytes + ledger.table_ssd_write_bytes) as f64,
        );
        for (name, limit) in extra {
            ceilings.push(ResourceCeiling {
                resource: Resource::Custom(name.clone()),
                max_throughput: *limit,
                demand_per_byte: f64::NAN,
            });
        }

        ceilings.sort_by(|a, b| {
            a.max_throughput
                .partial_cmp(&b.max_throughput)
                .expect("no NaN throughput")
        });
        let achievable = ceilings
            .first()
            .map(|c| c.max_throughput)
            .unwrap_or(f64::INFINITY);
        Projection {
            ceilings,
            achievable,
        }
    }

    /// The most binding resource.
    pub fn bottleneck(&self) -> &Resource {
        &self.ceilings[0].resource
    }

    /// Host-memory bandwidth needed (bytes/s) to sustain `throughput`
    /// bytes/s of client traffic — the y-axis of Figure 4.
    pub fn mem_bw_needed(ledger: &Ledger, throughput: f64) -> f64 {
        ledger.mem_bytes_per_client_byte() * throughput
    }

    /// CPU cores needed at `throughput` bytes/s — the y-axis of Figure 5a.
    pub fn cores_needed(ledger: &Ledger, platform: &PlatformSpec, throughput: f64) -> f64 {
        ledger.cpu_cycles_per_client_byte() * throughput / platform.core_hz
    }

    /// Exports the projection as gauges under the `projection.*` prefix:
    /// the achievable throughput and every finite per-resource ceiling as
    /// `projection.ceiling.<resource>.bytes_per_sec` (resource labels
    /// slugged; see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, out: &mut fidr_metrics::MetricsSnapshot) {
        out.set_gauge("projection.achievable.bytes_per_sec", self.achievable);
        for ceiling in &self.ceilings {
            if ceiling.max_throughput.is_finite() {
                out.set_gauge(
                    &format!(
                        "projection.ceiling.{}.bytes_per_sec",
                        fidr_metrics::slug(&ceiling.resource.to_string())
                    ),
                    ceiling.max_throughput,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{CpuTask, MemPath};

    fn sample_ledger() -> Ledger {
        let mut l = Ledger::new();
        l.add_client_write_bytes(1_000_000);
        // 4 bytes of memory traffic and 2 cycles per client byte.
        l.charge_mem(MemPath::NicBuffering, 4_000_000);
        l.charge_cpu(CpuTask::TreeIndexing, 2_000_000);
        l
    }

    #[test]
    fn memory_bound_projection() {
        let l = sample_ledger();
        let p = PlatformSpec::default();
        let proj = Projection::project(&l, &p, &[]);
        // mem: 170e9 / 4 = 42.5 GB/s; cpu: 48.4e9 / 2 = 24.2 GB/s → CPU binds.
        assert_eq!(*proj.bottleneck(), Resource::CpuCores);
        assert!((proj.achievable - 24.2e9).abs() / 24.2e9 < 1e-9);
    }

    #[test]
    fn mem_bw_needed_is_linear() {
        let l = sample_ledger();
        let need = Projection::mem_bw_needed(&l, 75e9);
        assert!((need - 300e9).abs() < 1.0);
    }

    #[test]
    fn cores_needed_scales_with_throughput() {
        let l = sample_ledger();
        let p = PlatformSpec::default();
        let n75 = Projection::cores_needed(&l, &p, 75e9);
        let n150 = Projection::cores_needed(&l, &p, 150e9);
        assert!((n75 - 75e9 * 2.0 / 2.2e9).abs() < 1e-6);
        assert!((n150 / n75 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn custom_limit_can_bind() {
        let l = sample_ledger();
        let p = PlatformSpec::default();
        let proj = Projection::project(&l, &p, &[("hw-tree".to_string(), 1e9)]);
        assert_eq!(*proj.bottleneck(), Resource::Custom("hw-tree".to_string()));
        assert!((proj.achievable - 1e9).abs() < 1.0);
    }

    #[test]
    fn untouched_resources_are_unbounded() {
        let l = sample_ledger();
        let p = PlatformSpec::default();
        let proj = Projection::project(&l, &p, &[]);
        let fpga = proj
            .ceilings
            .iter()
            .find(|c| c.resource == Resource::FpgaDram)
            .unwrap();
        assert!(fpga.max_throughput.is_infinite());
    }

    #[test]
    #[should_panic(expected = "client bytes")]
    fn projecting_empty_ledger_panics() {
        Projection::project(&Ledger::new(), &PlatformSpec::default(), &[]);
    }
}
