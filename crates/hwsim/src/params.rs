//! Calibrated cost parameters and platform capacities.
//!
//! The functional pipelines charge the [`crate::Ledger`] using the per-
//! operation constants here. Defaults are calibrated so that the *baseline*
//! (CIDR extended to 4-KB chunks, paper §2.3) reproduces the paper's
//! profiling: ~317 GB/s host memory demand and ~67 cores at 75 GB/s for the
//! write-only workload (Figures 4–5), with the Table 1 / Table 2 / Figure 5b
//! breakdown shapes. Each constant's doc comment names the paper evidence it
//! was fit against; everything else in the workspace *emerges* from flow
//! structure.

/// Per-operation CPU and memory cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cycles the unique-chunk predictor spends per 4-KB chunk (sampling,
    /// fingerprinting, filter probe). Fit: predictor = 32.7 % of baseline
    /// write-only CPU (§3.2.2) with total ≈ 1.97 cycles/byte.
    pub predictor_cycles_per_chunk: u64,
    /// Cycles to schedule one chunk into an FPGA batch (descriptor setup,
    /// batching bookkeeping).
    pub batch_sched_cycles_per_chunk: u64,
    /// Cycles per software B+ tree *search* (baseline cache indexing).
    /// Fit: tree indexing = 43.9 % of table-caching CPU (Table 2).
    pub tree_search_cycles: u64,
    /// Cycles per software B+ tree *update* (insert/delete on replacement).
    pub tree_update_cycles: u64,
    /// Cycles of NVMe software stack per table-SSD IO (fetch or flush).
    /// Fit: table SSD access = 24.7 % of table-caching CPU (Table 2).
    pub table_ssd_io_cycles: u64,
    /// Cycles to scan one cached 4-KB bucket for a fingerprint.
    /// Fit: content access = 6.3 % of table-caching CPU (Table 2).
    pub bucket_scan_cycles: u64,
    /// Cycles of LRU/free-list maintenance per cache access.
    /// Fit: replacement management = 1.0 % of table-caching CPU (Table 2).
    pub lru_cycles: u64,
    /// Cycles per data-SSD IO submission/completion pair.
    pub data_ssd_io_cycles: u64,
    /// Cycles of NIC driver + DMA descriptor work per 4-KB chunk moved
    /// through host memory.
    pub nic_driver_cycles_per_chunk: u64,
    /// Cycles of FIDR device-manager orchestration per chunk (bucket-
    /// location computation, flag routing between devices; §5.3 steps
    /// 2–6). Fit: FIDR retains ~32 % of baseline write-only CPU
    /// (Figure 12's 68 % reduction).
    pub device_manager_cycles_per_chunk: u64,
    /// Cycles per LBA→PBA map lookup or update.
    pub lba_map_cycles: u64,
    /// Miscellaneous host cycles per request (parsing, bookkeeping).
    pub misc_cycles_per_chunk: u64,
    /// Bytes of tree-node traffic per HW-tree request that spill to the
    /// FPGA-board DRAM (the leaf stage; §6.3 keeps non-leaf levels on-chip).
    pub hwtree_leaf_bytes: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            predictor_cycles_per_chunk: 2900,
            batch_sched_cycles_per_chunk: 420,
            tree_search_cycles: 1800,
            tree_update_cycles: 2600,
            table_ssd_io_cycles: 8000,
            bucket_scan_cycles: 265,
            lru_cycles: 42,
            data_ssd_io_cycles: 7000,
            nic_driver_cycles_per_chunk: 500,
            device_manager_cycles_per_chunk: 1600,
            lba_map_cycles: 120,
            misc_cycles_per_chunk: 250,
            hwtree_leaf_bytes: 512,
        }
    }
}

impl CostParams {
    /// Scales every CPU-cycle constant by `factor` (sensitivity
    /// analysis: the defaults are calibrated to the paper's profiling,
    /// and conclusions should survive miscalibration).
    pub fn scaled_cpu(&self, factor: f64) -> CostParams {
        let s = |v: u64| ((v as f64) * factor).round().max(1.0) as u64;
        CostParams {
            predictor_cycles_per_chunk: s(self.predictor_cycles_per_chunk),
            batch_sched_cycles_per_chunk: s(self.batch_sched_cycles_per_chunk),
            tree_search_cycles: s(self.tree_search_cycles),
            tree_update_cycles: s(self.tree_update_cycles),
            table_ssd_io_cycles: s(self.table_ssd_io_cycles),
            bucket_scan_cycles: s(self.bucket_scan_cycles),
            lru_cycles: s(self.lru_cycles),
            data_ssd_io_cycles: s(self.data_ssd_io_cycles),
            nic_driver_cycles_per_chunk: s(self.nic_driver_cycles_per_chunk),
            device_manager_cycles_per_chunk: s(self.device_manager_cycles_per_chunk),
            lba_map_cycles: s(self.lba_map_cycles),
            misc_cycles_per_chunk: s(self.misc_cycles_per_chunk),
            hwtree_leaf_bytes: self.hwtree_leaf_bytes,
        }
    }

    /// Scales only the table-cache-management constants (tree, table-SSD
    /// stack, scan, LRU) by `factor`.
    pub fn scaled_table_mgmt(&self, factor: f64) -> CostParams {
        let s = |v: u64| ((v as f64) * factor).round().max(1.0) as u64;
        CostParams {
            tree_search_cycles: s(self.tree_search_cycles),
            tree_update_cycles: s(self.tree_update_cycles),
            table_ssd_io_cycles: s(self.table_ssd_io_cycles),
            bucket_scan_cycles: s(self.bucket_scan_cycles),
            lru_cycles: s(self.lru_cycles),
            ..*self
        }
    }
}

/// Capacities of one CPU socket and its attached devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformSpec {
    /// Theoretical socket DRAM bandwidth in bytes/s. Paper §3.2.1: 8
    /// channels, 170 GB/s on a high-end socket.
    pub mem_bw: f64,
    /// Cores per socket. Paper uses a 22-core Xeon E5-4669 v4 (§7.5).
    pub cores: u32,
    /// Core clock in Hz (2.2 GHz for the E5-4669 v4).
    pub core_hz: f64,
    /// PCIe IO bandwidth per socket in bytes/s (§1: 1 Tbps = 128 GB/s).
    pub pcie_bw: f64,
    /// Per-PCIe-slot device link bandwidth in bytes/s (x16 Gen3 ≈ 16 GB/s,
    /// the VCU1525 figure from §4.3).
    pub pcie_link_bw: f64,
    /// Devices per link class at scale: a Tbps-class socket attaches an
    /// *array* of NICs, compression engines and SSDs (§5.6 groups them
    /// under switches), so a link class's aggregate bandwidth is
    /// `pcie_link_bw × pcie_links_per_class`.
    pub pcie_links_per_class: f64,
    /// Effective FPGA-board DRAM bandwidth for the Cache HW-Engine's leaf
    /// stage in bytes/s. Fit: Write-H tops out "about 127 GB/s due to
    /// saturating the FPGA-board DRAM bandwidth" (§7.4) at
    /// `hwtree_leaf_bytes` of leaf traffic per 4-KB request.
    pub fpga_dram_bw: f64,
    /// HW-tree pipeline clock in Hz. Fit: single-update Write-M throughput
    /// of 27.1 GB/s (§7.4) at its update mix.
    pub hwtree_clock_hz: f64,
    /// Aggregate data-SSD bandwidth in bytes/s.
    pub data_ssd_bw: f64,
    /// Aggregate table-SSD bandwidth in bytes/s (2 GB/s per device in
    /// Table 5; a Tbps-scale socket provisions an array of them).
    pub table_ssd_bw: f64,
    /// Conservative target throughput per socket in bytes/s (§3.2: 75 GB/s,
    /// 60 % of the 128 GB/s theoretical PCIe).
    pub target_throughput: f64,
}

impl Default for PlatformSpec {
    fn default() -> Self {
        const GB: f64 = 1e9;
        PlatformSpec {
            mem_bw: 170.0 * GB,
            cores: 22,
            core_hz: 2.2e9,
            pcie_bw: 128.0 * GB,
            pcie_link_bw: 16.0 * GB,
            pcie_links_per_class: 8.0,
            fpga_dram_bw: 16.0 * GB,
            hwtree_clock_hz: 250e6,
            data_ssd_bw: 80.0 * GB,
            table_ssd_bw: 16.0 * GB,
            target_throughput: 75.0 * GB,
        }
    }
}

impl PlatformSpec {
    /// Total socket CPU capacity in cycles per second.
    pub fn cpu_capacity(&self) -> f64 {
        f64::from(self.cores) * self.core_hz
    }

    /// A prototype-scale platform matching the paper's test server
    /// (E5-2650 v4: 12 cores at 2.2 GHz, 4 SSDs, 3 VCU1525 boards).
    pub fn prototype() -> Self {
        const GB: f64 = 1e9;
        PlatformSpec {
            mem_bw: 76.8 * GB, // 4-channel DDR4-2400
            cores: 12,
            core_hz: 2.2e9,
            pcie_bw: 64.0 * GB,
            pcie_link_bw: 16.0 * GB,
            pcie_links_per_class: 1.0,
            fpga_dram_bw: 16.0 * GB,
            hwtree_clock_hz: 250e6,
            data_ssd_bw: 7.0 * GB, // two Samsung 970 Pro
            table_ssd_bw: 2.0 * GB,
            target_throughput: 8.0 * GB,
        }
    }
}

/// Geometry of the data-reduction metadata (paper §2.1.3–§2.1.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableGeometry {
    /// Bytes per Hash-PBN entry: 32-byte hash + 6-byte PBN.
    pub entry_bytes: u64,
    /// Bucket (and cache line) size in bytes.
    pub bucket_bytes: u64,
    /// Chunk size in bytes.
    pub chunk_bytes: u64,
}

impl Default for TableGeometry {
    fn default() -> Self {
        TableGeometry {
            entry_bytes: 38,
            bucket_bytes: 4096,
            chunk_bytes: 4096,
        }
    }
}

impl TableGeometry {
    /// Entries that fit in one bucket (107 at the defaults).
    pub fn entries_per_bucket(&self) -> u64 {
        self.bucket_bytes / self.entry_bytes
    }

    /// Hash-PBN table size for a given unique-chunk capacity in bytes.
    ///
    /// Reproduces the paper's "with 4-KB chunking and 1-PB unique chunk
    /// storage, the Hash-PBN table is 9.5 TB large" (§2.1.3).
    pub fn table_bytes_for_capacity(&self, unique_capacity_bytes: u64) -> u64 {
        (unique_capacity_bytes / self.chunk_bytes) * self.entry_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_cpu_multiplies_every_cycle_constant() {
        let base = CostParams::default();
        let double = base.scaled_cpu(2.0);
        assert_eq!(
            double.predictor_cycles_per_chunk,
            base.predictor_cycles_per_chunk * 2
        );
        assert_eq!(double.tree_search_cycles, base.tree_search_cycles * 2);
        assert_eq!(double.lru_cycles, base.lru_cycles * 2);
        // Non-CPU constants are untouched.
        assert_eq!(double.hwtree_leaf_bytes, base.hwtree_leaf_bytes);
        // Scaling never zeroes a constant.
        let tiny = base.scaled_cpu(1e-9);
        assert!(tiny.lru_cycles >= 1);
    }

    #[test]
    fn scaled_table_mgmt_leaves_other_costs_alone() {
        let base = CostParams::default();
        let scaled = base.scaled_table_mgmt(0.5);
        assert_eq!(scaled.tree_search_cycles, base.tree_search_cycles / 2);
        assert_eq!(scaled.table_ssd_io_cycles, base.table_ssd_io_cycles / 2);
        assert_eq!(
            scaled.predictor_cycles_per_chunk,
            base.predictor_cycles_per_chunk
        );
        assert_eq!(
            scaled.device_manager_cycles_per_chunk,
            base.device_manager_cycles_per_chunk
        );
    }

    #[test]
    fn default_platform_matches_paper_constants() {
        let p = PlatformSpec::default();
        assert_eq!(p.cores, 22);
        assert!((p.mem_bw - 170e9).abs() < 1.0);
        assert!((p.target_throughput - 75e9).abs() < 1.0);
    }

    #[test]
    fn cpu_capacity() {
        let p = PlatformSpec::default();
        assert!((p.cpu_capacity() - 22.0 * 2.2e9).abs() < 1.0);
    }

    #[test]
    fn hash_pbn_table_is_9_5_tb_at_1_pb() {
        let g = TableGeometry::default();
        let pb = 1u64 << 50;
        let table = g.table_bytes_for_capacity(pb);
        let tb = table as f64 / (1u64 << 40) as f64;
        assert!((tb - 9.5).abs() < 0.1, "table size {tb} TB");
    }

    #[test]
    fn entries_per_bucket_matches_geometry() {
        assert_eq!(TableGeometry::default().entries_per_bucket(), 107);
    }
}
