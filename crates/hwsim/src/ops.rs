//! Canned data movements with consistent ledger charging.
//!
//! A DMA that bounces through host memory costs PCIe bytes *and* host-DRAM
//! bytes (one write on ingress, one read on egress); a peer-to-peer
//! transfer under a PCIe switch costs only link bytes (paper §5.1 idea 2).
//! Routing every movement through these helpers keeps the Table 1
//! accounting honest across both systems.

use crate::ledger::{Ledger, MemPath, PcieLink};

/// Device → host memory DMA: charges the PCIe link plus one DRAM write on
/// the given data path.
pub fn dma_to_host(ledger: &mut Ledger, link: PcieLink, path: MemPath, bytes: u64) {
    ledger.charge_pcie(link, bytes);
    ledger.charge_mem(path, bytes);
}

/// Host memory → device DMA: one DRAM read plus the PCIe link.
pub fn dma_from_host(ledger: &mut Ledger, link: PcieLink, path: MemPath, bytes: u64) {
    ledger.charge_mem(path, bytes);
    ledger.charge_pcie(link, bytes);
}

/// CPU touching buffered data in host memory (scan or copy): DRAM traffic
/// only.
pub fn cpu_touch(ledger: &mut Ledger, path: MemPath, bytes: u64) {
    ledger.charge_mem(path, bytes);
}

/// Peer-to-peer transfer between two devices under a PCIe switch: link
/// bytes only, host memory fully bypassed.
pub fn p2p(ledger: &mut Ledger, link: PcieLink, bytes: u64) {
    debug_assert!(
        !link.crosses_root_complex(),
        "p2p used with a host-side link: {link}"
    );
    ledger.charge_pcie(link, bytes);
}

/// Device-to-device bounce through host memory (the baseline's only way to
/// move data between IO devices): two DMAs, two DRAM touches.
pub fn bounce_via_host(
    ledger: &mut Ledger,
    in_link: PcieLink,
    out_link: PcieLink,
    path: MemPath,
    bytes: u64,
) {
    dma_to_host(ledger, in_link, path, bytes);
    dma_from_host(ledger, out_link, path, bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_charges_both_sides() {
        let mut l = Ledger::new();
        dma_to_host(&mut l, PcieLink::NicHost, MemPath::NicBuffering, 4096);
        assert_eq!(l.pcie_bytes(PcieLink::NicHost), 4096);
        assert_eq!(l.mem_bytes(MemPath::NicBuffering), 4096);
    }

    #[test]
    fn p2p_bypasses_host_memory() {
        let mut l = Ledger::new();
        p2p(&mut l, PcieLink::NicCompressionP2p, 8192);
        assert_eq!(l.mem_total(), 0);
        assert_eq!(l.pcie_bytes(PcieLink::NicCompressionP2p), 8192);
        assert_eq!(l.root_complex_bytes(), 0);
    }

    #[test]
    fn bounce_doubles_memory_traffic() {
        let mut l = Ledger::new();
        bounce_via_host(
            &mut l,
            PcieLink::NicHost,
            PcieLink::HostCompression,
            MemPath::FpgaStaging,
            1000,
        );
        assert_eq!(l.mem_total(), 2000);
        assert_eq!(l.root_complex_bytes(), 2000);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "p2p used with a host-side link")]
    fn p2p_with_host_link_asserts_in_debug() {
        let mut l = Ledger::new();
        p2p(&mut l, PcieLink::NicHost, 1);
    }
}
