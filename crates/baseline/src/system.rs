//! The end-to-end CIDR-extended baseline system (paper §2.3, Figure 2).
//!
//! Write path: client data is DMAed NIC → host memory, the software
//! unique-chunk predictor scans the buffer, the batch scheduler ships
//! *all* chunks host → FPGA, the FPGA hashes everything and compresses the
//! predicted uniques, results bounce back to host memory, the software
//! table-cache (B+ tree indexed, CPU driven) validates the predictions,
//! and validated compressed uniques are staged in host memory into 4-MB
//! containers written to the data SSDs. Every hop bounces through host
//! DRAM — which is exactly the bottleneck Figures 4 and 5 expose.

use crate::predictor::{PredictorStats, UniquePredictor};
use bytes::Bytes;
use fidr_cache::{BPlusTree, CacheStats, ShardedTableCache};
use fidr_chunk::{Lba, Pba, Pbn};
use fidr_compress::{CompressedChunk, Encoding};
use fidr_faults::{FaultInjector, FaultPlan, RetryPolicy};
use fidr_hash::Fingerprint;
use fidr_hwsim::{ops, CostParams, CpuTask, Ledger, MemPath, PcieLink, TimeModel};
use fidr_metrics::{Histogram, MetricsSnapshot};
use fidr_pool::WorkerPool;
use fidr_ssd::{DataSsdArray, QueueLocation, TableSsd};
use fidr_tables::{
    BucketInsertError, ContainerBuilder, ContainerLiveness, GcReport, HashPbnStore, LbaPbaTable,
    PbnLocation, ReductionStats, Snapshot, BUCKET_BYTES,
};
use fidr_trace::{SpanToken, TraceConfig, Tracer};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Configuration of a baseline instance.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Host-DRAM table-cache capacity in 4-KB lines.
    pub cache_lines: usize,
    /// Buckets in the Hash-PBN table on the table SSDs.
    pub table_buckets: u64,
    /// Container flush threshold in bytes.
    pub container_threshold: usize,
    /// Predictor Bloom-filter size in bits.
    pub predictor_bits: usize,
    /// Data SSDs in the array.
    pub data_ssds: u32,
    /// Calibrated per-operation costs.
    pub cost: CostParams,
    /// Seeded fault schedule for the device models (inert by default).
    pub faults: FaultPlan,
    /// Bounded-retry policy for device faults and checksum re-reads.
    pub retry: RetryPolicy,
    /// Per-request span tracing (disabled by default).
    pub trace: TraceConfig,
    /// Worker threads for [`write_batch`](BaselineSystem::write_batch)'s
    /// hash + compression precompute. Commits stay in submission order,
    /// so modelled metrics are byte-identical for any worker count.
    pub workers: usize,
    /// Independent hash-prefix shards of the table cache (1 reproduces
    /// the unsharded cache exactly).
    pub cache_shards: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            cache_lines: 4096,
            table_buckets: 1 << 17,
            container_threshold: 4 << 20,
            predictor_bits: 1 << 22,
            data_ssds: 2,
            cost: CostParams::default(),
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
            trace: TraceConfig::default(),
            workers: 1,
            cache_shards: 1,
        }
    }
}

/// Errors surfaced by the baseline system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// A write chunk was not exactly 4 KB.
    BadChunkSize(usize),
    /// The Hash-PBN bucket for this fingerprint is full.
    TableFull,
    /// Read of an address that was never written.
    NotMapped(Lba),
    /// The data SSDs returned an unreadable region.
    Corrupt(String),
    /// A device IO failed even after the bounded retry budget.
    Io(String),
}

impl SystemError {
    /// Stable metric-name slug for per-error-kind counters.
    pub fn kind(&self) -> &'static str {
        match self {
            SystemError::BadChunkSize(_) => "bad_chunk_size",
            SystemError::TableFull => "table_full",
            SystemError::NotMapped(_) => "not_mapped",
            SystemError::Corrupt(_) => "corrupt",
            SystemError::Io(_) => "io",
        }
    }
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::BadChunkSize(n) => write!(f, "chunk of {n} bytes; expected 4096"),
            SystemError::TableFull => write!(f, "hash-PBN bucket full; grow the table"),
            SystemError::NotMapped(lba) => write!(f, "read of unmapped {lba}"),
            SystemError::Corrupt(e) => write!(f, "data SSD corruption: {e}"),
            SystemError::Io(e) => write!(f, "device IO failed past retry budget: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

/// The baseline data-reduction server.
///
/// # Examples
///
/// ```
/// use fidr_baseline::{BaselineConfig, BaselineSystem};
/// use fidr_chunk::Lba;
/// use bytes::Bytes;
///
/// let mut sys = BaselineSystem::new(BaselineConfig::default());
/// let data = Bytes::from(vec![7u8; 4096]);
/// sys.write(Lba(1), data.clone())?;
/// assert_eq!(sys.read(Lba(1))?, data.to_vec());
/// # Ok::<(), fidr_baseline::SystemError>(())
/// ```
#[derive(Debug)]
pub struct BaselineSystem {
    cfg: BaselineConfig,
    predictor: UniquePredictor,
    cache: ShardedTableCache<BPlusTree>,
    table_ssd: TableSsd,
    data_ssd: DataSsdArray,
    lba_map: LbaPbaTable,
    builder: ContainerBuilder,
    /// Raw chunk data of the still-open container, readable before seal
    /// (staged in host memory, as the baseline builds containers there).
    staging: HashMap<u32, Vec<u8>>,
    next_pbn: u64,
    next_container: u64,
    /// Fingerprint of each live unique chunk (for Hash-PBN deletion).
    pbn_fp: HashMap<Pbn, Fingerprint>,
    /// PBNs ever appended to each container.
    container_pbns: HashMap<u64, Vec<Pbn>>,
    liveness: ContainerLiveness,
    /// PBNs awaiting collection.
    dead: Vec<Pbn>,
    ledger: Ledger,
    stats: ReductionStats,
    /// Wall-clock time per FPGA chunk compression.
    compress_ns: Histogram,
    /// Compressed size as a percentage of the original (0–100).
    compress_pct: Histogram,
    /// Chunks that compressed via LZSS.
    compress_lzss_chunks: u64,
    /// Chunks stored raw because compression did not help.
    compress_raw_chunks: u64,
    /// End-to-end wall-clock time per client write (all outcomes).
    write_ns: Histogram,
    /// End-to-end wall-clock time per client read (all outcomes).
    read_ns: Histogram,
    /// End-to-end wall-clock time per client delete (all outcomes).
    delete_ns: Histogram,
    /// Client deletes acknowledged (the LBA was mapped; it no longer is).
    deletes_acked: u64,
    /// Garbage-collection passes run over this system's lifetime.
    gc_runs: u64,
    /// Cumulative outcome of every collection pass (for `gc.*` metrics).
    gc_total: GcReport,
    /// Shared fault injector armed into the device models.
    faults: FaultInjector,
    /// Client-write failures by [`SystemError::kind`].
    write_errors: HashMap<&'static str, u64>,
    /// Client-read failures by [`SystemError::kind`].
    read_errors: HashMap<&'static str, u64>,
    /// Client-delete failures by [`SystemError::kind`].
    delete_errors: HashMap<&'static str, u64>,
    /// Modelled (not slept) backoff spent re-reading mismatched chunks.
    recovery_backoff_ns: Histogram,
    /// Checksum mismatches detected on the read path.
    read_repair_detected: u64,
    /// Re-reads issued to heal checksum mismatches.
    read_repair_rereads: u64,
    /// Mismatches healed by a re-read.
    read_repair_repaired: u64,
    /// Mismatches that persisted past the retry budget.
    read_repair_unrecovered: u64,
    /// Container seals that failed past the device retry budget.
    seal_failures: u64,
    /// Per-request span tracer stamped with modelled time.
    tracer: Tracer,
    /// Modelled service times backing span durations.
    time: TimeModel,
    /// Persistent worker pool for batched-write preparation (present
    /// only when `cfg.workers` > 1 with an inert fault plan).
    pool: Option<WorkerPool>,
}

impl BaselineSystem {
    /// Builds a baseline server from `cfg`.
    pub fn new(cfg: BaselineConfig) -> Self {
        let faults = FaultInjector::new(cfg.faults);
        let mut table_ssd = TableSsd::new(cfg.table_buckets, QueueLocation::HostMemory);
        table_ssd.set_fault_injector(faults.clone(), cfg.retry);
        let mut data_ssd = DataSsdArray::new(cfg.data_ssds);
        data_ssd.set_fault_injector(faults.clone(), cfg.retry);
        // One persistent pool for the life of the system, not a thread
        // spawn per batch. Armed fault plans force the serial path.
        let pool = if cfg.workers > 1 && cfg.faults.is_inert() {
            Some(WorkerPool::new(cfg.workers))
        } else {
            None
        };
        BaselineSystem {
            predictor: UniquePredictor::new(cfg.predictor_bits),
            cache: ShardedTableCache::new(cfg.cache_shards.max(1), cfg.cache_lines, |_| {
                BPlusTree::new()
            }),
            table_ssd,
            data_ssd,
            lba_map: LbaPbaTable::new(),
            builder: ContainerBuilder::new(0, cfg.container_threshold),
            staging: HashMap::new(),
            next_pbn: 0,
            next_container: 0,
            pbn_fp: HashMap::new(),
            container_pbns: HashMap::new(),
            liveness: ContainerLiveness::new(),
            dead: Vec::new(),
            ledger: Ledger::new(),
            stats: ReductionStats::default(),
            compress_ns: Histogram::new(),
            compress_pct: Histogram::new(),
            compress_lzss_chunks: 0,
            compress_raw_chunks: 0,
            write_ns: Histogram::new(),
            read_ns: Histogram::new(),
            delete_ns: Histogram::new(),
            deletes_acked: 0,
            gc_runs: 0,
            gc_total: GcReport::default(),
            faults,
            write_errors: HashMap::new(),
            read_errors: HashMap::new(),
            delete_errors: HashMap::new(),
            recovery_backoff_ns: Histogram::new(),
            read_repair_detected: 0,
            read_repair_rereads: 0,
            read_repair_repaired: 0,
            read_repair_unrecovered: 0,
            seal_failures: 0,
            tracer: Tracer::new(cfg.trace),
            time: TimeModel::default(),
            pool,
            cfg,
        }
    }

    /// Span tracer (spans, drop counters, critical-path report).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Advances the tracer clock by the host time accrued since `mark`
    /// (a prior `self.time.host_ns(&self.ledger)` snapshot) and returns
    /// the new scalar for chained stages.
    fn advance_host(&mut self, mark: u64) -> u64 {
        let now = self.time.host_ns(&self.ledger);
        self.tracer.advance(now.saturating_sub(mark));
        now
    }

    /// Closes a `cache` span: emits a `table_ssd` child for any bucket IO
    /// the lookup triggered (delta against `table_bytes_mark`), folds in
    /// the host time accrued since `host_mark`, and returns the refreshed
    /// host-time mark.
    fn finish_cache_span(&mut self, span: SpanToken, host_mark: u64, table_bytes_mark: u64) -> u64 {
        if !self.tracer.is_enabled() {
            return host_mark;
        }
        let table_bytes = (self.ledger.table_ssd_read_bytes + self.ledger.table_ssd_write_bytes)
            .saturating_sub(table_bytes_mark);
        if table_bytes > 0 {
            let ios = table_bytes.div_ceil(BUCKET_BYTES as u64);
            let io = self.tracer.begin("table_ssd");
            self.tracer.attr(io, "bytes", table_bytes);
            self.tracer.attr(io, "ios", ios);
            self.tracer
                .advance(self.time.table_ssd_ns(table_bytes, ios));
            self.tracer.end(io);
        }
        let mark = self.advance_host(host_mark);
        self.tracer.end(span);
        mark
    }

    /// Resource ledger accumulated so far.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Data-reduction outcomes so far.
    pub fn stats(&self) -> ReductionStats {
        self.stats
    }

    /// Table-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Predictor accuracy counters.
    pub fn predictor_stats(&self) -> PredictorStats {
        self.predictor.stats()
    }

    /// Bytes stored on the data SSDs so far (sealed containers).
    pub fn stored_bytes(&self) -> u64 {
        self.data_ssd.stored_bytes()
    }

    /// Handles one 4-KB client write (Figure 2a).
    ///
    /// # Errors
    ///
    /// [`SystemError::BadChunkSize`] for non-4-KB chunks and
    /// [`SystemError::TableFull`] on Hash-PBN bucket overflow.
    pub fn write(&mut self, lba: Lba, data: Bytes) -> Result<(), SystemError> {
        self.write_prepared(lba, data, None)
    }

    /// Handles a batch of 4-KB client writes. With
    /// [`BaselineConfig::workers`] > 1 (and an inert fault plan — armed
    /// faults key off global device-call order) the multi-lane SHA-256
    /// hashing and speculative LZSS compression of every chunk
    /// precompute on the persistent worker pool; each write then commits
    /// on this thread in submission order, recording stats at exactly
    /// the sites the serial path would, so modelled metrics stay
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// Stops at the first failing write and returns its error.
    pub fn write_batch(&mut self, writes: Vec<(Lba, Bytes)>) -> Result<(), SystemError> {
        let workers = if self.cfg.faults.is_inert() {
            self.cfg.workers.max(1)
        } else {
            1
        };
        let (Some(pool), true) = (self.pool.as_ref(), workers > 1 && writes.len() >= 2) else {
            for (lba, data) in writes {
                self.write(lba, data)?;
            }
            return Ok(());
        };
        let mut prepared = prepare_writes(&writes, workers, pool);
        for (i, (lba, data)) in writes.into_iter().enumerate() {
            self.write_prepared(lba, data, prepared[i].take())?;
        }
        Ok(())
    }

    fn write_prepared(
        &mut self,
        lba: Lba,
        data: Bytes,
        pre: Option<PreparedWrite>,
    ) -> Result<(), SystemError> {
        let started = Instant::now();
        let op = self.tracer.begin("write");
        self.tracer.attr(op, "lba", lba.0);
        let out = self.write_inner(lba, data, op, pre);
        if let Err(e) = &out {
            self.tracer.attr(op, "error", e.kind());
        }
        self.tracer.end(op);
        self.write_ns.record_duration(started.elapsed());
        if let Err(e) = &out {
            *self.write_errors.entry(e.kind()).or_insert(0) += 1;
        }
        out
    }

    fn write_inner(
        &mut self,
        lba: Lba,
        data: Bytes,
        op: SpanToken,
        mut pre: Option<PreparedWrite>,
    ) -> Result<(), SystemError> {
        if data.len() != BUCKET_BYTES {
            return Err(SystemError::BadChunkSize(data.len()));
        }
        let len = data.len() as u64;
        let cost = self.cfg.cost;
        self.ledger.add_client_write_bytes(len);
        self.stats.write_chunks += 1;
        self.stats.raw_bytes += len;

        let traced = self.tracer.is_enabled();
        let mut mark = if traced {
            self.time.host_ns(&self.ledger)
        } else {
            0
        };

        // 1. NIC DMAs the request into a host-memory buffer.
        let nic_span = self.tracer.begin("nic");
        ops::dma_to_host(
            &mut self.ledger,
            PcieLink::NicHost,
            MemPath::NicBuffering,
            len,
        );
        self.ledger
            .charge_cpu(CpuTask::NicDriver, cost.nic_driver_cycles_per_chunk);
        if traced {
            mark = self.advance_host(mark);
        }
        self.tracer.end(nic_span);

        // 2. The unique-chunk predictor scans the buffered data.
        let predict_span = self.tracer.begin("predict");
        ops::cpu_touch(&mut self.ledger, MemPath::UniquePrediction, len);
        self.ledger
            .charge_cpu(CpuTask::UniquePrediction, cost.predictor_cycles_per_chunk);
        let predicted_unique = self.predictor.predict_unique(&data);
        if traced {
            mark = self.advance_host(mark);
        }
        self.tracer
            .attr(predict_span, "predicted_unique", predicted_unique);
        self.tracer.end(predict_span);

        // 3. Batch scheduling groups chunks for the FPGA.
        let hash_span = self.tracer.begin("hash");
        self.ledger
            .charge_cpu(CpuTask::BatchScheduling, cost.batch_sched_cycles_per_chunk);

        // 4. Every chunk crosses host memory → FPGA.
        ops::dma_from_host(
            &mut self.ledger,
            PcieLink::HostCompression,
            MemPath::FpgaStaging,
            len,
        );

        // FPGA work: hash everything; compress the predicted uniques.
        // A precomputed batch entry already holds both results.
        let fingerprint = match &pre {
            Some(p) => p.fingerprint,
            None => Fingerprint::of(&data),
        };
        self.tracer.advance(self.time.hash_ns(len, 1));
        if traced {
            mark = self.advance_host(mark);
        }
        self.tracer.end(hash_span);
        let mut compressed = if predicted_unique {
            let spec = pre.as_mut().and_then(|p| p.compressed.take());
            Some(self.compress_chunk_with(&data, spec))
        } else {
            None
        };

        // 5. Hashes (and compressed uniques) come back to host memory.
        let returned = 32 + compressed.as_ref().map_or(0, |c| c.stored_len() as u64);
        ops::dma_to_host(
            &mut self.ledger,
            PcieLink::HostCompression,
            MemPath::FpgaStaging,
            returned,
        );

        // 6. Software table-cache lookup validates the prediction.
        if traced {
            mark = self.advance_host(mark);
        }
        let cache_span = self.tracer.begin("cache");
        let table_bytes_mark = self.ledger.table_ssd_read_bytes + self.ledger.table_ssd_write_bytes;
        let (existing, line) = match self.table_lookup(fingerprint) {
            Ok(out) => out,
            Err(e) => {
                self.finish_cache_span(cache_span, mark, table_bytes_mark);
                return Err(e);
            }
        };
        mark = self.finish_cache_span(cache_span, mark, table_bytes_mark);
        let actually_unique = existing.is_none();
        self.predictor.validate(predicted_unique, actually_unique);
        self.tracer.attr(op, "dedup_hit", !actually_unique);

        let pbn = if let Some(pbn) = existing {
            self.stats.duplicate_chunks += 1;
            // A mispredicted "unique" wasted the compression work and the
            // PCIe/memory round trip already charged above.
            pbn
        } else {
            self.stats.unique_chunks += 1;
            let chunk = match compressed.take() {
                Some(c) => c,
                None => {
                    // Misprediction: a second FPGA round trip compresses
                    // the chunk the predictor wrongly called a duplicate.
                    ops::dma_from_host(
                        &mut self.ledger,
                        PcieLink::HostCompression,
                        MemPath::FpgaStaging,
                        len,
                    );
                    self.ledger
                        .charge_cpu(CpuTask::BatchScheduling, cost.batch_sched_cycles_per_chunk);
                    let spec = pre.as_mut().and_then(|p| p.compressed.take());
                    let c = self.compress_chunk_with(&data, spec);
                    ops::dma_to_host(
                        &mut self.ledger,
                        PcieLink::HostCompression,
                        MemPath::FpgaStaging,
                        c.stored_len() as u64,
                    );
                    c
                }
            };
            self.predictor.observe(&data);
            let pbn = Pbn(self.next_pbn);
            self.next_pbn += 1;

            // Insert the new entry into the cached bucket (dirty line).
            self.cache
                .bucket_mut(line)
                .insert(fingerprint, pbn)
                .map_err(|e| match e {
                    BucketInsertError::Full => SystemError::TableFull,
                    // Duplicates are screened by the lookup above and PBNs
                    // are allocated sequentially far below the 6-byte
                    // ceiling, so anything else is state corruption.
                    other => SystemError::Corrupt(other.to_string()),
                })?;
            self.ledger
                .charge_cpu(CpuTask::TreeIndexing, self.cfg.cost.tree_update_cycles);

            // Stage the compressed chunk into the open container.
            self.stats.stored_bytes += chunk.stored_len() as u64;
            let slot = self.builder.append(&chunk);
            self.staging.insert(slot.offset, data.to_vec());
            self.lba_map.record_pbn(
                pbn,
                PbnLocation {
                    container: self.builder.id(),
                    offset: slot.offset,
                    compressed_len: slot.compressed_len,
                },
            );
            self.pbn_fp.insert(pbn, fingerprint);
            self.container_pbns
                .entry(self.builder.id())
                .or_default()
                .push(pbn);
            self.liveness.record_append(self.builder.id());
            if self.builder.is_full() {
                self.seal_container()?;
            }
            pbn
        };

        self.map_lba(lba, pbn);
        self.ledger.charge_cpu(CpuTask::LbaMap, cost.lba_map_cycles);
        self.ledger
            .charge_cpu(CpuTask::Other, cost.misc_cycles_per_chunk);
        if traced {
            self.advance_host(mark);
        }
        Ok(())
    }

    /// Points `lba` at `pbn`, queueing orphaned chunks for collection and
    /// resurrecting dead-but-uncollected chunks a duplicate re-references.
    fn map_lba(&mut self, lba: Lba, pbn: Pbn) {
        let resurrecting = self.lba_map.refcount(pbn) == 0 && self.dead.contains(&pbn);
        if resurrecting {
            let loc = self
                .lba_map
                .location(pbn)
                .expect("queued dead PBN is located");
            self.liveness.record_revive(loc.container);
            self.dead.retain(|&d| d != pbn);
        }
        if let Some(dead) = self.lba_map.map_write(lba, pbn) {
            if let Some(loc) = self.lba_map.location(dead) {
                self.liveness.record_dead(loc.container);
            }
            self.dead.push(dead);
        }
    }

    /// Deletes one 4-KB client block: unmaps the LBA, releases its
    /// reference on the shared chunk, and — when that was the last
    /// reference — queues the chunk for the next
    /// [`collect_garbage`](BaselineSystem::collect_garbage) pass. The
    /// chunk stays readable through other LBAs that still reference it.
    ///
    /// # Errors
    ///
    /// [`SystemError::NotMapped`] if the LBA holds no current mapping.
    pub fn delete(&mut self, lba: Lba) -> Result<(), SystemError> {
        let started = Instant::now();
        let op = self.tracer.begin("delete");
        self.tracer.attr(op, "lba", lba.0);
        let out = self.delete_inner(lba);
        if let Err(e) = &out {
            self.tracer.attr(op, "error", e.kind());
        }
        self.tracer.end(op);
        self.delete_ns.record_duration(started.elapsed());
        if let Err(e) = &out {
            *self.delete_errors.entry(e.kind()).or_insert(0) += 1;
        }
        out
    }

    fn delete_inner(&mut self, lba: Lba) -> Result<(), SystemError> {
        let cost = self.cfg.cost;
        self.ledger
            .charge_cpu(CpuTask::NicDriver, cost.nic_driver_cycles_per_chunk);
        self.ledger.charge_cpu(CpuTask::LbaMap, cost.lba_map_cycles);
        let pbn = self.lba_map.unmap(lba).ok_or(SystemError::NotMapped(lba))?;
        if self.lba_map.refcount(pbn) == 0 {
            if let Some(loc) = self.lba_map.location(pbn) {
                self.liveness.record_dead(loc.container);
            }
            self.dead.push(pbn);
        }
        self.deletes_acked += 1;
        Ok(())
    }

    /// Garbage collection for the baseline: the same two phases as FIDR's
    /// collector, but every survivor rewrite bounces through host memory
    /// (SSD → host → FPGA → host → SSD) under CPU control — GC pressure is
    /// part of why the host-centric design scales poorly.
    ///
    /// # Errors
    ///
    /// Propagates data-SSD decode failures.
    pub fn collect_garbage(&mut self, live_threshold: f64) -> Result<GcReport, SystemError> {
        let cost = self.cfg.cost;
        let mut report = GcReport::default();

        for pbn in std::mem::take(&mut self.dead) {
            if self.lba_map.refcount(pbn) > 0 {
                continue;
            }
            let fp = self
                .pbn_fp
                .remove(&pbn)
                .expect("dead PBN has a fingerprint on record");
            self.lba_map.reclaim(pbn);
            let (_, line) = self.table_lookup(fp)?;
            self.cache.bucket_mut(line).remove(&fp);
            self.ledger
                .charge_cpu(CpuTask::TreeIndexing, cost.tree_update_cycles);
            report.reclaimed_pbns += 1;
        }

        for container in self.liveness.sparse_containers(live_threshold) {
            if container == self.builder.id() {
                continue;
            }
            let pbns = self.container_pbns.remove(&container).unwrap_or_default();
            for pbn in pbns {
                if self.lba_map.refcount(pbn) == 0 {
                    continue;
                }
                let loc = self.lba_map.location(pbn).expect("live PBN located");
                if loc.container != container {
                    continue;
                }
                let data = self.fetch_chunk_verified(
                    Some(pbn),
                    Pba {
                        container: loc.container,
                        offset: loc.offset,
                        compressed_len: loc.compressed_len,
                    },
                )?;
                let io_bytes = loc.compressed_len as u64 + 4;
                // SSD → host memory, host → FPGA for recompression, back.
                ops::dma_to_host(
                    &mut self.ledger,
                    PcieLink::HostDataSsd,
                    MemPath::DataSsdStaging,
                    io_bytes,
                );
                self.ledger
                    .charge_cpu(CpuTask::DataSsdStack, cost.data_ssd_io_cycles);
                self.ledger.data_ssd_read_bytes += io_bytes;
                ops::dma_from_host(
                    &mut self.ledger,
                    PcieLink::HostCompression,
                    MemPath::FpgaStaging,
                    data.len() as u64,
                );
                let compressed = self.compress_chunk(&data);
                ops::dma_to_host(
                    &mut self.ledger,
                    PcieLink::HostCompression,
                    MemPath::FpgaStaging,
                    compressed.stored_len() as u64,
                );
                report.copied_bytes += compressed.stored_len() as u64;

                let slot = self.builder.append(&compressed);
                self.staging.insert(slot.offset, data);
                self.lba_map.relocate(
                    pbn,
                    PbnLocation {
                        container: self.builder.id(),
                        offset: slot.offset,
                        compressed_len: slot.compressed_len,
                    },
                );
                self.container_pbns
                    .entry(self.builder.id())
                    .or_default()
                    .push(pbn);
                self.liveness.record_append(self.builder.id());
                report.moved_chunks += 1;
                if self.builder.is_full() {
                    self.seal_container()?;
                }
            }
            if let Some(freed) = self.data_ssd.remove_container(container) {
                report.freed_bytes += freed;
            }
            self.liveness.remove(container);
            report.compacted_containers += 1;
        }
        self.gc_runs += 1;
        self.gc_total.absorb(report);
        Ok(report)
    }

    /// Dead chunks queued for the next collection pass.
    pub fn pending_dead_chunks(&self) -> usize {
        self.dead.len()
    }

    /// Client deletes acknowledged over this system's lifetime.
    pub fn deletes_acked(&self) -> u64 {
        self.deletes_acked
    }

    /// Cumulative outcome of every garbage-collection pass so far.
    pub fn gc_totals(&self) -> GcReport {
        self.gc_total
    }

    /// Splits a multi-chunk client write into 4-KB chunks and writes
    /// each; returns the chunk count.
    ///
    /// # Errors
    ///
    /// [`SystemError::BadChunkSize`] if the request is empty or ragged,
    /// plus anything [`write`](BaselineSystem::write) returns.
    pub fn write_request(&mut self, start: Lba, data: Bytes) -> Result<usize, SystemError> {
        let len = data.len();
        let chunks = fidr_chunk::FixedChunker::default()
            .split(start, data)
            .map_err(|_| SystemError::BadChunkSize(len))?;
        let n = chunks.len();
        for chunk in chunks {
            self.write(chunk.lba, chunk.data)?;
        }
        Ok(n)
    }

    /// Reads `chunks` consecutive blocks starting at `start` and returns
    /// their concatenated contents.
    ///
    /// # Errors
    ///
    /// Anything [`read`](BaselineSystem::read) returns for any block.
    pub fn read_range(&mut self, start: Lba, chunks: usize) -> Result<Vec<u8>, SystemError> {
        let mut out = Vec::with_capacity(chunks * BUCKET_BYTES);
        for i in 0..chunks as u64 {
            out.extend(self.read(Lba(start.0 + i))?);
        }
        Ok(out)
    }

    /// Handles one 4-KB client read (Figure 2b) and returns the data.
    ///
    /// # Errors
    ///
    /// [`SystemError::NotMapped`] for never-written addresses and
    /// [`SystemError::Corrupt`] if the SSD region fails to decode.
    pub fn read(&mut self, lba: Lba) -> Result<Vec<u8>, SystemError> {
        let started = Instant::now();
        let op = self.tracer.begin("read");
        self.tracer.attr(op, "lba", lba.0);
        let out = self.read_inner(lba);
        if let Err(e) = &out {
            self.tracer.attr(op, "error", e.kind());
        }
        self.tracer.end(op);
        self.read_ns.record_duration(started.elapsed());
        if let Err(e) = &out {
            *self.read_errors.entry(e.kind()).or_insert(0) += 1;
        }
        out
    }

    fn read_inner(&mut self, lba: Lba) -> Result<Vec<u8>, SystemError> {
        let cost = self.cfg.cost;
        let traced = self.tracer.is_enabled();
        let mut mark = if traced {
            self.time.host_ns(&self.ledger)
        } else {
            0
        };
        self.ledger.add_client_read_bytes(BUCKET_BYTES as u64);
        self.stats.read_chunks += 1;

        // NIC forwards the LBA to the host; software resolves the PBA and
        // schedules the chunk into a decompression batch.
        self.ledger
            .charge_cpu(CpuTask::NicDriver, cost.nic_driver_cycles_per_chunk);
        self.ledger.charge_cpu(CpuTask::LbaMap, cost.lba_map_cycles);
        self.ledger
            .charge_cpu(CpuTask::BatchScheduling, cost.batch_sched_cycles_per_chunk);
        self.ledger
            .charge_cpu(CpuTask::Other, cost.misc_cycles_per_chunk);
        let pba = self
            .lba_map
            .lookup(lba)
            .ok_or(SystemError::NotMapped(lba))?;
        if traced {
            mark = self.advance_host(mark);
        }

        let pbn = self.lba_map.pbn_of(lba);
        let io_bytes = pba.compressed_len as u64 + 4;
        let ssd_span = self.tracer.begin("ssd");
        let rereads_mark = self.read_repair_rereads;
        self.tracer.attr(ssd_span, "bytes", io_bytes);
        let fetched = self.fetch_chunk_verified(pbn, pba);
        if traced {
            let attempts = 1 + self.read_repair_rereads - rereads_mark;
            if attempts > 1 {
                self.tracer.attr(ssd_span, "retries", attempts - 1);
            }
            self.tracer
                .advance(self.time.data_ssd_ns(io_bytes * attempts, attempts));
        }
        if let Err(e) = &fetched {
            self.tracer.attr(ssd_span, "error", e.kind());
        }
        self.tracer.end(ssd_span);
        let data = fetched?;

        // Compressed data SSD -> host memory.
        ops::dma_to_host(
            &mut self.ledger,
            PcieLink::HostDataSsd,
            MemPath::DataSsdStaging,
            io_bytes,
        );
        self.ledger
            .charge_cpu(CpuTask::DataSsdStack, cost.data_ssd_io_cycles);
        self.ledger.data_ssd_read_bytes += io_bytes;

        // Host memory -> FPGA for decompression, decompressed data back.
        let decompress_span = self.tracer.begin("compress");
        self.tracer
            .attr(decompress_span, "compressed_bytes", io_bytes);
        ops::dma_from_host(
            &mut self.ledger,
            PcieLink::HostCompression,
            MemPath::FpgaStaging,
            io_bytes,
        );
        ops::dma_to_host(
            &mut self.ledger,
            PcieLink::HostCompression,
            MemPath::FpgaStaging,
            data.len() as u64,
        );
        self.tracer
            .advance(self.time.compress_ns(data.len() as u64));
        if traced {
            mark = self.advance_host(mark);
        }
        self.tracer.end(decompress_span);

        // NIC picks the decompressed data up from host memory.
        let nic_span = self.tracer.begin("nic");
        ops::dma_from_host(
            &mut self.ledger,
            PcieLink::NicHost,
            MemPath::NicBuffering,
            data.len() as u64,
        );
        self.ledger
            .charge_cpu(CpuTask::NicDriver, cost.nic_driver_cycles_per_chunk);
        if traced {
            self.advance_host(mark);
        }
        self.tracer.end(nic_span);
        Ok(data)
    }

    /// Seals any open container and flushes dirty table-cache lines.
    ///
    /// # Errors
    ///
    /// [`SystemError::Io`] if the seal or a bucket writeback fails past
    /// the retry budget; the open container and dirty lines survive for
    /// a later retry.
    pub fn flush(&mut self) -> Result<(), SystemError> {
        let op = self.tracer.begin("flush");
        let out = self.flush_inner();
        if let Err(e) = &out {
            self.tracer.attr(op, "error", e.kind());
        }
        self.tracer.end(op);
        out
    }

    fn flush_inner(&mut self) -> Result<(), SystemError> {
        if !self.builder.is_empty() {
            self.seal_container()?;
        }
        self.cache
            .flush_all(&mut self.table_ssd)
            .map_err(|e| SystemError::Io(e.to_string()))
    }

    /// Captures all durable state for persistence (flushes first). The
    /// snapshot format is shared with the FIDR system, so a volume can be
    /// checkpointed under one architecture and restored under the other.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn checkpoint(&mut self) -> Result<Snapshot, SystemError> {
        self.flush()?;
        let store = self.table_ssd.store();
        let mut table_buckets = Vec::new();
        for idx in 0..store.num_buckets() {
            let bucket = store.bucket(idx);
            if !bucket.is_empty() {
                table_buckets.push((idx, bucket.clone()));
            }
        }
        Ok(Snapshot {
            num_buckets: store.num_buckets(),
            table_buckets,
            lbas: self.lba_map.lba_entries().collect(),
            pbns: self.lba_map.pbn_entries().collect(),
            containers: self.data_ssd.containers().cloned().collect(),
            next_pbn: self.next_pbn,
            next_container: self.next_container,
            pbn_fp: self.pbn_fp.iter().map(|(&p, &f)| (p, f)).collect(),
            liveness: self.liveness.entries().collect(),
            dead: self.dead.clone(),
        })
    }

    /// Rebuilds a baseline server from a [`Snapshot`] (restart recovery).
    /// The snapshot's table geometry overrides `cfg.table_buckets`.
    pub fn restore(cfg: BaselineConfig, snapshot: Snapshot) -> Self {
        let cfg = BaselineConfig {
            table_buckets: snapshot.num_buckets,
            ..cfg
        };
        let mut sys = BaselineSystem::new(cfg);

        let mut store = HashPbnStore::new(snapshot.num_buckets);
        for (idx, bucket) in snapshot.table_buckets {
            store.write_bucket(idx, bucket);
        }
        sys.table_ssd = TableSsd::from_store(store, QueueLocation::HostMemory);
        sys.table_ssd
            .set_fault_injector(sys.faults.clone(), sys.cfg.retry);

        for container in snapshot.containers {
            sys.data_ssd.load_container(container);
        }
        sys.lba_map = LbaPbaTable::from_entries(snapshot.lbas, snapshot.pbns);
        sys.next_pbn = snapshot.next_pbn;
        sys.next_container = snapshot.next_container;
        sys.builder = ContainerBuilder::new(snapshot.next_container, sys.cfg.container_threshold);
        sys.pbn_fp = snapshot.pbn_fp.into_iter().collect();
        sys.container_pbns.clear();
        for (pbn, loc) in sys.lba_map.pbn_entries().collect::<Vec<_>>() {
            sys.container_pbns
                .entry(loc.container)
                .or_default()
                .push(pbn);
        }
        sys.liveness = ContainerLiveness::from_entries(snapshot.liveness);
        sys.dead = snapshot.dead;
        // The predictor is soft state: re-observing nothing is safe (it
        // only mispredicts more until it re-learns).
        sys
    }

    /// Fault injection for tests and demos: flips one stored bit on the
    /// data SSDs. The next scrub (or read) of the affected chunk must
    /// detect it. Returns `false` if the location does not exist.
    pub fn inject_data_corruption(&mut self, container: u64, byte: usize) -> bool {
        self.data_ssd.inject_corruption(container, byte)
    }

    /// Background integrity scrub (fsck): verifies every live chunk's
    /// stored bytes against its recorded SHA-256 fingerprint. Transient
    /// read corruption is healed by bounded re-reads; only persistent
    /// mismatches fail the scrub. Returns the number of chunks verified.
    ///
    /// # Errors
    ///
    /// [`SystemError::Corrupt`] for the first PBN that still mismatches
    /// after re-reads.
    pub fn verify_integrity(&mut self) -> Result<u64, SystemError> {
        let live: Vec<(Pbn, PbnLocation)> = self
            .lba_map
            .pbn_entries()
            .filter(|(pbn, _)| self.lba_map.refcount(*pbn) > 0)
            .collect();
        let mut verified = 0u64;
        for (pbn, loc) in live {
            if !self.pbn_fp.contains_key(&pbn) {
                return Err(SystemError::Corrupt(format!("{pbn} missing fingerprint")));
            }
            self.fetch_chunk_verified(
                Some(pbn),
                Pba {
                    container: loc.container,
                    offset: loc.offset,
                    compressed_len: loc.compressed_len,
                },
            )?;
            verified += 1;
        }
        Ok(verified)
    }

    /// Compresses one chunk in the (modelled) FPGA, timing the real LZSS
    /// work and tracking the achieved ratio.
    fn compress_chunk(&mut self, data: &[u8]) -> CompressedChunk {
        self.compress_chunk_with(data, None)
    }

    /// [`compress_chunk`](Self::compress_chunk), optionally consuming a
    /// `(chunk, wall-clock)` pair precomputed on the worker pool — stats,
    /// span and modelled time are recorded identically either way; only
    /// the raw LZSS compute is skipped.
    fn compress_chunk_with(
        &mut self,
        data: &[u8],
        pre: Option<(CompressedChunk, std::time::Duration)>,
    ) -> CompressedChunk {
        let span = self.tracer.begin("compress");
        let (compressed, elapsed) = match pre {
            Some((compressed, elapsed)) => (compressed, elapsed),
            None => {
                let started = Instant::now();
                let compressed = CompressedChunk::compress(data);
                (compressed, started.elapsed())
            }
        };
        self.compress_ns.record_duration(elapsed);
        self.compress_pct
            .record((compressed.ratio() * 100.0).round() as u64);
        match compressed.encoding() {
            Encoding::Lzss => self.compress_lzss_chunks += 1,
            Encoding::Raw => self.compress_raw_chunks += 1,
        }
        self.tracer
            .attr(span, "compressed_bytes", compressed.stored_len() as u64);
        self.tracer.attr(
            span,
            "encoding",
            match compressed.encoding() {
                Encoding::Lzss => "lzss",
                Encoding::Raw => "raw",
            },
        );
        self.tracer
            .advance(self.time.compress_ns(data.len() as u64));
        self.tracer.end(span);
        compressed
    }

    /// Assembles a [`MetricsSnapshot`] covering every baseline stage:
    /// table-cache lookups, table/data SSD IO, compression, prediction
    /// accuracy, reduction outcomes, the resource ledger, and end-to-end
    /// write/read latency. Same schema and naming as
    /// `FidrSystem::metrics` (see `docs/OBSERVABILITY.md`); NIC and
    /// HW-tree metrics are absent because the baseline has neither.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        self.cache.export_metrics(&mut out);
        out.set_counter("cache.hw_engine.enabled", 0);
        self.table_ssd.export_metrics(&mut out);
        self.data_ssd.export_metrics(&mut out);
        self.ledger.export_metrics(&mut out);
        self.stats.export_metrics(&mut out);
        out.set_counter("compress.lzss.chunks", self.compress_lzss_chunks);
        out.set_counter("compress.raw_fallback.chunks", self.compress_raw_chunks);
        out.set_wall_clock_histogram("compress.chunk.ns", &self.compress_ns);
        out.set_histogram("compress.ratio.pct", &self.compress_pct);
        out.set_wall_clock_histogram("system.write.ns", &self.write_ns);
        out.set_wall_clock_histogram("system.read.ns", &self.read_ns);
        self.faults.stats().export_metrics(&mut out);
        out.set_counter("retry.read_repair.detected", self.read_repair_detected);
        out.set_counter("retry.read_repair.rereads", self.read_repair_rereads);
        out.set_counter("retry.read_repair.repaired", self.read_repair_repaired);
        out.set_counter(
            "retry.read_repair.unrecovered",
            self.read_repair_unrecovered,
        );
        out.set_counter("retry.seal.failures", self.seal_failures);
        out.set_histogram("system.retry.backoff.ns", &self.recovery_backoff_ns);
        for (kind, n) in &self.write_errors {
            out.set_counter(&format!("system.write.errors.{kind}"), *n);
        }
        for (kind, n) in &self.read_errors {
            out.set_counter(&format!("system.read.errors.{kind}"), *n);
        }
        for (kind, n) in &self.delete_errors {
            out.set_counter(&format!("system.delete.errors.{kind}"), *n);
        }
        // Lifecycle counters appear only once a delete or a GC pass has
        // actually happened, so stores that never delete export
        // byte-identically to pre-lifecycle revisions.
        if self.deletes_acked > 0 || self.gc_runs > 0 {
            out.set_wall_clock_histogram("system.delete.ns", &self.delete_ns);
            out.set_counter("delete.acked.count", self.deletes_acked);
            out.set_counter("delete.pending_dead.count", self.dead.len() as u64);
            out.set_counter("gc.runs.count", self.gc_runs);
            out.set_counter("gc.reclaimed_pbns.count", self.gc_total.reclaimed_pbns);
            out.set_counter(
                "gc.compacted_containers.count",
                self.gc_total.compacted_containers,
            );
            out.set_counter("gc.moved_chunks.count", self.gc_total.moved_chunks);
            out.set_counter("gc.copied_bytes", self.gc_total.copied_bytes);
            out.set_counter("gc.reclaimed_bytes", self.gc_total.freed_bytes);
        }
        let p = self.predictor.stats();
        out.set_counter("predictor.predictions.count", p.predictions);
        out.set_counter("predictor.predicted_unique.count", p.predicted_unique);
        out.set_counter("predictor.correct.count", p.correct);
        out.set_gauge("predictor.accuracy.ratio", p.accuracy());
        out.set_counter("trace.spans.count", self.tracer.recorded());
        out.set_counter("trace.dropped_spans", self.tracer.dropped());
        out
    }

    fn fetch_chunk(&mut self, pba: Pba) -> Result<Vec<u8>, SystemError> {
        if pba.container == self.builder.id() {
            return self
                .staging
                .get(&pba.offset)
                .cloned()
                .ok_or_else(|| SystemError::Corrupt("missing staged chunk".to_string()));
        }
        self.data_ssd.read_chunk(pba).map_err(|e| match e {
            fidr_ssd::DataSsdError::Io { .. } => SystemError::Io(e.to_string()),
            _ => SystemError::Corrupt(e.to_string()),
        })
    }

    /// Fetches a chunk and, when its fingerprint is on record, verifies
    /// the returned bytes against it, re-reading (bounded, with modelled
    /// backoff) to heal in-flight corruption. Persistent corruption still
    /// errors out.
    fn fetch_chunk_verified(&mut self, pbn: Option<Pbn>, pba: Pba) -> Result<Vec<u8>, SystemError> {
        let data = self.fetch_chunk(pba)?;
        let Some(expect) = pbn.and_then(|p| self.pbn_fp.get(&p).copied()) else {
            return Ok(data);
        };
        if Fingerprint::of(&data) == expect {
            return Ok(data);
        }
        self.read_repair_detected += 1;
        for attempt in 0..self.cfg.retry.max_retries {
            self.read_repair_rereads += 1;
            self.recovery_backoff_ns
                .record_duration(self.cfg.retry.backoff(attempt));
            let data = self.fetch_chunk(pba)?;
            if Fingerprint::of(&data) == expect {
                self.read_repair_repaired += 1;
                return Ok(data);
            }
        }
        self.read_repair_unrecovered += 1;
        Err(SystemError::Corrupt(format!(
            "container {} offset {} fails checksum verification after re-reads",
            pba.container, pba.offset
        )))
    }

    /// Seals a *clone* of the open builder so a failed device write keeps
    /// the builder and staging intact for a later retry — no acked write
    /// is lost.
    fn seal_container(&mut self) -> Result<(), SystemError> {
        let bytes = self.builder.len() as u64;
        let span = self.tracer.begin("ssd");
        self.tracer.attr(span, "container_bytes", bytes);
        self.tracer.advance(self.time.data_ssd_ns(bytes, 1));
        if let Err(e) = self.data_ssd.write_container(self.builder.clone().seal()) {
            self.seal_failures += 1;
            self.tracer.attr(span, "error", "io");
            self.tracer.end(span);
            return Err(SystemError::Io(e.to_string()));
        }
        self.tracer.end(span);
        self.next_container += 1;
        self.builder = ContainerBuilder::new(self.next_container, self.cfg.container_threshold);
        self.staging.clear();

        // Container bounces host memory → data SSD.
        ops::dma_from_host(
            &mut self.ledger,
            PcieLink::HostDataSsd,
            MemPath::DataSsdStaging,
            bytes,
        );
        self.ledger
            .charge_cpu(CpuTask::DataSsdStack, self.cfg.cost.data_ssd_io_cycles);
        self.ledger.data_ssd_write_bytes += bytes;
        self.stats.containers_sealed += 1;
        Ok(())
    }

    /// Looks up `fingerprint` through the software-managed table cache,
    /// charging the Table 2 cost categories, and returns the stored PBN
    /// (if duplicate) plus the cache line holding the bucket.
    fn table_lookup(
        &mut self,
        fingerprint: Fingerprint,
    ) -> Result<(Option<Pbn>, u32), SystemError> {
        let cost = self.cfg.cost;
        let bucket_idx = fingerprint.bucket_index(self.table_ssd.num_buckets());

        // B+ tree search on the CPU.
        self.ledger
            .charge_cpu(CpuTask::TreeIndexing, cost.tree_search_cycles);
        let access = self
            .cache
            .access(bucket_idx, &mut self.table_ssd)
            .map_err(|e| SystemError::Io(e.to_string()))?;

        if !access.hit {
            // Miss: bucket fetched table SSD → host memory by the CPU's
            // NVMe stack; tree insert for the new line.
            ops::dma_to_host(
                &mut self.ledger,
                PcieLink::HostTableSsd,
                MemPath::TableCache,
                BUCKET_BYTES as u64,
            );
            self.ledger
                .charge_cpu(CpuTask::TableSsdStack, cost.table_ssd_io_cycles);
            self.ledger.table_ssd_read_bytes += BUCKET_BYTES as u64;
            self.ledger
                .charge_cpu(CpuTask::TreeIndexing, cost.tree_update_cycles);

            // Evictions: tree deletes, LRU work, dirty flushes.
            for _ in 0..access.evicted {
                self.ledger
                    .charge_cpu(CpuTask::TreeIndexing, cost.tree_update_cycles);
                self.ledger
                    .charge_cpu(CpuTask::CacheReplacement, cost.lru_cycles);
            }
            for _ in 0..access.flushed {
                ops::dma_from_host(
                    &mut self.ledger,
                    PcieLink::HostTableSsd,
                    MemPath::TableCache,
                    BUCKET_BYTES as u64,
                );
                self.ledger
                    .charge_cpu(CpuTask::TableSsdStack, cost.table_ssd_io_cycles);
                self.ledger.table_ssd_write_bytes += BUCKET_BYTES as u64;
            }
        }

        // The CPU scans the cached bucket content for the fingerprint.
        ops::cpu_touch(&mut self.ledger, MemPath::TableCache, BUCKET_BYTES as u64);
        self.ledger
            .charge_cpu(CpuTask::TableContentScan, cost.bucket_scan_cycles);
        self.ledger
            .charge_cpu(CpuTask::CacheReplacement, cost.lru_cycles);

        let pbn = self.cache.bucket(access.line).lookup(&fingerprint);
        Ok((pbn, access.line))
    }
}

/// Hash and speculative LZSS output precomputed on the worker pool for
/// one batched write.
#[derive(Debug)]
struct PreparedWrite {
    fingerprint: Fingerprint,
    /// Compressed chunk plus the wall-clock the compression took; taken
    /// by whichever compress site fires (at most one per write), and
    /// silently dropped for writes the pipeline never compresses.
    compressed: Option<(CompressedChunk, std::time::Duration)>,
}

/// Fingerprints and speculatively compresses every chunk of `writes`
/// across up to `workers` persistent pool workers, in submission order
/// per slot. Each job hashes its whole slice through the multi-lane
/// SHA-256 kernel ([`Fingerprint::of_batch`]) before compressing.
/// Oversized chunks still prepare (cheaply wasted): `write_inner`
/// rejects them before consuming the precompute, exactly as in serial.
fn prepare_writes(
    writes: &[(Lba, Bytes)],
    workers: usize,
    pool: &WorkerPool,
) -> Vec<Option<PreparedWrite>> {
    let mut slots: Vec<Option<PreparedWrite>> = (0..writes.len()).map(|_| None).collect();
    let per_worker = writes.len().div_ceil(workers.min(writes.len()).max(1));
    pool.scope(|s| {
        for (k, (slice_in, slice_out)) in writes
            .chunks(per_worker)
            .zip(slots.chunks_mut(per_worker))
            .enumerate()
        {
            s.spawn_on(k, move || {
                let refs: Vec<&[u8]> = slice_in.iter().map(|(_, data)| data.as_ref()).collect();
                let fingerprints = Fingerprint::of_batch(&refs);
                for (((_, data), fingerprint), slot) in
                    slice_in.iter().zip(fingerprints).zip(slice_out.iter_mut())
                {
                    let started = Instant::now();
                    let compressed = CompressedChunk::compress(data);
                    *slot = Some(PreparedWrite {
                        fingerprint,
                        compressed: Some((compressed, started.elapsed())),
                    });
                }
            });
        }
    });
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> BaselineSystem {
        BaselineSystem::new(BaselineConfig {
            cache_lines: 64,
            table_buckets: 1 << 12,
            container_threshold: 64 << 10,
            ..BaselineConfig::default()
        })
    }

    fn chunk(tag: u64) -> Bytes {
        Bytes::from(fidr_compress::ContentGenerator::new(0.5).chunk(tag, 4096))
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = sys();
        let data = chunk(1);
        s.write(Lba(5), data.clone()).unwrap();
        assert_eq!(s.read(Lba(5)).unwrap(), data.to_vec());
    }

    #[test]
    fn duplicates_are_eliminated() {
        let mut s = sys();
        let data = chunk(9);
        for lba in 0..10u64 {
            s.write(Lba(lba), data.clone()).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.unique_chunks, 1);
        assert_eq!(st.duplicate_chunks, 9);
        assert!(st.stored_bytes < 4096);
        // Every copy reads back the same content.
        for lba in 0..10u64 {
            assert_eq!(s.read(Lba(lba)).unwrap(), data.to_vec());
        }
    }

    #[test]
    fn overwrite_returns_newest() {
        let mut s = sys();
        s.write(Lba(1), chunk(1)).unwrap();
        s.write(Lba(1), chunk(2)).unwrap();
        assert_eq!(s.read(Lba(1)).unwrap(), chunk(2).to_vec());
    }

    #[test]
    fn read_of_unwritten_errors() {
        let mut s = sys();
        assert!(matches!(s.read(Lba(77)), Err(SystemError::NotMapped(_))));
    }

    #[test]
    fn delete_unmaps_and_gc_reclaims_the_space() {
        let mut s = sys();
        for i in 0..64u64 {
            s.write(Lba(i), chunk(i)).unwrap();
        }
        s.flush().unwrap();
        for i in 0..56u64 {
            s.delete(Lba(i)).unwrap();
        }
        assert_eq!(s.deletes_acked(), 56);
        assert_eq!(s.pending_dead_chunks(), 56);
        assert!(matches!(s.read(Lba(0)), Err(SystemError::NotMapped(_))));
        assert!(matches!(s.delete(Lba(0)), Err(SystemError::NotMapped(_))));

        let report = s.collect_garbage(0.5).unwrap();
        assert_eq!(report.reclaimed_pbns, 56);
        assert!(report.freed_bytes > 0, "{report:?}");
        assert_eq!(s.gc_totals().freed_bytes, report.freed_bytes);
        for i in 56..64u64 {
            assert_eq!(s.read(Lba(i)).unwrap(), chunk(i).to_vec(), "LBA {i}");
        }
        // Lifecycle metrics appear only after activity (they did).
        let json = s.metrics().to_json();
        assert!(json.contains("\"delete.acked.count\""));
        assert!(json.contains("\"gc.reclaimed_bytes\""));
        assert!(!sys().metrics().to_json().contains("gc."), "fresh system");
    }

    #[test]
    fn delete_of_shared_chunk_keeps_other_references_readable() {
        let mut s = sys();
        let data = chunk(9);
        s.write(Lba(1), data.clone()).unwrap();
        s.write(Lba(2), data.clone()).unwrap();
        s.delete(Lba(1)).unwrap();
        assert_eq!(s.pending_dead_chunks(), 0);
        assert_eq!(s.collect_garbage(1.1).unwrap().reclaimed_pbns, 0);
        assert_eq!(s.read(Lba(2)).unwrap(), data.to_vec());
        s.delete(Lba(2)).unwrap();
        assert_eq!(s.pending_dead_chunks(), 1);
        assert_eq!(s.collect_garbage(1.1).unwrap().reclaimed_pbns, 1);
    }

    #[test]
    fn bad_chunk_size_rejected() {
        let mut s = sys();
        assert!(matches!(
            s.write(Lba(0), Bytes::from(vec![0u8; 100])),
            Err(SystemError::BadChunkSize(100))
        ));
    }

    #[test]
    fn containers_seal_and_remain_readable() {
        let mut s = sys();
        let mut written = Vec::new();
        for i in 0..64u64 {
            let data = chunk(1000 + i);
            s.write(Lba(i), data.clone()).unwrap();
            written.push((Lba(i), data));
        }
        assert!(s.stats().containers_sealed >= 1);
        for (lba, data) in written {
            assert_eq!(s.read(lba).unwrap(), data.to_vec(), "{lba}");
        }
    }

    #[test]
    fn ledger_charges_every_category_on_writes() {
        let mut s = sys();
        for i in 0..300u64 {
            s.write(Lba(i), chunk(i % 50)).unwrap();
        }
        let l = s.ledger();
        assert!(l.mem_bytes(MemPath::NicBuffering) > 0);
        assert!(l.mem_bytes(MemPath::UniquePrediction) > 0);
        assert!(l.mem_bytes(MemPath::FpgaStaging) > 0);
        assert!(l.mem_bytes(MemPath::TableCache) > 0);
        assert!(l.cpu_cycles(CpuTask::UniquePrediction) > 0);
        assert!(l.cpu_cycles(CpuTask::TreeIndexing) > 0);
        // Memory traffic far exceeds client bytes — the §3.2 bottleneck.
        assert!(l.mem_bytes_per_client_byte() > 3.0);
    }

    #[test]
    fn dedup_ratio_tracks_content() {
        let mut s = sys();
        // 50% duplicates: two writes of each content.
        for i in 0..200u64 {
            s.write(Lba(i), chunk(i / 2)).unwrap();
        }
        assert!((s.stats().dedup_ratio() - 0.5).abs() < 0.01);
    }

    #[test]
    fn batched_workers_match_serial_writes_byte_for_byte() {
        let writes: Vec<(Lba, Bytes)> = (0..96u64).map(|i| (Lba(i), chunk(i / 3))).collect();
        let mut serial = sys();
        for (lba, data) in writes.clone() {
            serial.write(lba, data).unwrap();
        }
        let mut batched = BaselineSystem::new(BaselineConfig {
            cache_lines: 64,
            table_buckets: 1 << 12,
            container_threshold: 64 << 10,
            workers: 4,
            cache_shards: 4,
            ..BaselineConfig::default()
        });
        batched.write_batch(writes.clone()).unwrap();
        // Sharding changes the cache's line placement (and so its
        // hit/miss pattern), but a 1-shard batched run must be
        // byte-identical to serial, and any shard count must keep the
        // functional outcomes.
        assert_eq!(batched.stats(), serial.stats());
        for (lba, data) in &writes {
            assert_eq!(batched.read(*lba).unwrap(), data.to_vec());
        }
        let mut one_shard = BaselineSystem::new(BaselineConfig {
            cache_lines: 64,
            table_buckets: 1 << 12,
            container_threshold: 64 << 10,
            workers: 4,
            ..BaselineConfig::default()
        });
        one_shard.write_batch(writes).unwrap();
        assert_eq!(one_shard.metrics().to_json(), serial.metrics().to_json());
    }
}
