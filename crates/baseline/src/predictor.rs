//! CIDR's unique-chunk predictor.
//!
//! The baseline integrates hashing and compression on one FPGA, so the
//! host must *predict* which chunks will turn out unique and schedule only
//! those for the compression cores in the same one-shot batch (paper §2.3).
//! CIDR implements this as "special host-side software"; Observation #3
//! shows it burning 32.7 % of CPU and up to 23.7 % of memory bandwidth.
//!
//! This implementation samples the chunk, folds the samples through a
//! cheap FNV fingerprint, and probes a Bloom filter of recently seen
//! content: absent → predicted unique. Mispredictions are cheap-but-real,
//! exactly as in CIDR — a false "duplicate" forces a second FPGA round
//! trip for compression; a false "unique" wastes compression work.

use fidr_hash::fnv1a;

/// Prediction accuracy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Total predictions made.
    pub predictions: u64,
    /// Chunks predicted unique.
    pub predicted_unique: u64,
    /// Predictions later validated correct.
    pub correct: u64,
}

impl PredictorStats {
    /// Fraction of predictions that were validated correct.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

/// Bloom-filter unique-chunk predictor.
///
/// # Examples
///
/// ```
/// use fidr_baseline::UniquePredictor;
///
/// let mut p = UniquePredictor::new(1 << 16);
/// let chunk = vec![3u8; 4096];
/// assert!(p.predict_unique(&chunk)); // never seen
/// p.observe(&chunk);
/// assert!(!p.predict_unique(&chunk)); // now predicted duplicate
/// ```
#[derive(Debug, Clone)]
pub struct UniquePredictor {
    bits: Vec<u64>,
    mask: u64,
    stats: PredictorStats,
}

impl UniquePredictor {
    /// Creates a predictor with a `filter_bits`-bit Bloom filter
    /// (rounded up to a power of two; the paper's predictor state is
    /// "MBs" of host memory, Table 1).
    ///
    /// # Panics
    ///
    /// Panics if `filter_bits` is zero.
    pub fn new(filter_bits: usize) -> Self {
        assert!(filter_bits > 0, "filter needs at least one bit");
        let bits = filter_bits.next_power_of_two();
        UniquePredictor {
            bits: vec![0u64; bits / 64 + 1],
            mask: bits as u64 - 1,
            stats: PredictorStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Samples the chunk: first/middle/last 64 bytes, folded by FNV.
    fn sample_fingerprint(chunk: &[u8]) -> (u64, u64) {
        let n = chunk.len();
        let take = 64.min(n);
        let head = &chunk[..take];
        let mid = &chunk[n / 2..(n / 2 + take).min(n)];
        let tail = &chunk[n - take..];
        let h1 = fnv1a(head) ^ fnv1a(tail).rotate_left(21);
        let h2 = fnv1a(mid) ^ h1.rotate_left(33);
        (h1, h2)
    }

    fn probe(&self, h: u64) -> bool {
        let idx = h & self.mask;
        self.bits[(idx / 64) as usize] >> (idx % 64) & 1 == 1
    }

    fn set(&mut self, h: u64) {
        let idx = h & self.mask;
        self.bits[(idx / 64) as usize] |= 1 << (idx % 64);
    }

    /// Predicts whether `chunk` is unique (not yet stored).
    pub fn predict_unique(&mut self, chunk: &[u8]) -> bool {
        self.stats.predictions += 1;
        let (h1, h2) = Self::sample_fingerprint(chunk);
        let predicted_dup = self.probe(h1) && self.probe(h2);
        if !predicted_dup {
            self.stats.predicted_unique += 1;
        }
        !predicted_dup
    }

    /// Records that `chunk`'s content is now stored.
    pub fn observe(&mut self, chunk: &[u8]) {
        let (h1, h2) = Self::sample_fingerprint(chunk);
        self.set(h1);
        self.set(h2);
    }

    /// Feeds validation back: the dedup table said the chunk was
    /// `actually_unique`; the prediction had said `predicted_unique`.
    pub fn validate(&mut self, predicted_unique: bool, actually_unique: bool) {
        if predicted_unique == actually_unique {
            self.stats.correct += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_content_predicted_unique() {
        let mut p = UniquePredictor::new(1 << 16);
        for i in 0..100u32 {
            let chunk: Vec<u8> = (0..4096).map(|j| ((i + j) % 251) as u8).collect();
            assert!(p.predict_unique(&chunk), "chunk {i}");
            p.observe(&chunk);
        }
    }

    #[test]
    fn seen_content_predicted_duplicate() {
        let mut p = UniquePredictor::new(1 << 16);
        let chunk = vec![9u8; 4096];
        p.observe(&chunk);
        assert!(!p.predict_unique(&chunk));
    }

    #[test]
    fn accuracy_tracking() {
        let mut p = UniquePredictor::new(1 << 16);
        let chunk = vec![1u8; 4096];
        let pred = p.predict_unique(&chunk);
        p.validate(pred, true);
        p.observe(&chunk);
        let pred2 = p.predict_unique(&chunk);
        p.validate(pred2, false);
        assert_eq!(p.stats().predictions, 2);
        assert!((p.stats().accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_filter_saturates_to_false_duplicates() {
        // A tiny filter eventually claims everything is a duplicate —
        // the mispredictions CIDR's validation step must absorb.
        let mut p = UniquePredictor::new(64);
        for i in 0..1000u32 {
            let chunk: Vec<u8> = (0..128).map(|j| ((i * 31 + j) % 251) as u8).collect();
            p.observe(&chunk);
        }
        let fresh: Vec<u8> = (0..128).map(|j| (j % 7) as u8).collect();
        // Probably predicted duplicate now (filter saturated).
        let _ = p.predict_unique(&fresh); // must not panic; stats advance
        assert_eq!(p.stats().predictions, 1);
    }
}
