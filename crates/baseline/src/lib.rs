//! # fidr-baseline
//!
//! The CIDR-extended baseline the paper profiles and beats (§2.3): a
//! hardware-accelerated inline data-reduction server whose control plane —
//! unique-chunk prediction, accelerator scheduling, table caching — runs on
//! host CPU and memory. This crate implements the full write/read flows of
//! Figure 2 functionally (real hashes, real compression, real tables) while
//! charging every byte and cycle to the `fidr-hwsim` ledger, so that the
//! paper's bottleneck analysis (Figures 4–5, Tables 1–2) can be reproduced
//! by measurement rather than assumption.
//!
//! # Examples
//!
//! ```
//! use fidr_baseline::{BaselineConfig, BaselineSystem};
//! use fidr_chunk::Lba;
//! use bytes::Bytes;
//!
//! let mut sys = BaselineSystem::new(BaselineConfig::default());
//! sys.write(Lba(0), Bytes::from(vec![1u8; 4096]))?;
//! assert!(sys.ledger().mem_bytes_per_client_byte() > 1.0);
//! # Ok::<(), fidr_baseline::SystemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod predictor;
mod system;

pub use predictor::{PredictorStats, UniquePredictor};
pub use system::{BaselineConfig, BaselineSystem, SystemError};
