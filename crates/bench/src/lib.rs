//! # fidr-bench
//!
//! Shared plumbing for the benchmark harness. Each `benches/*.rs` target
//! regenerates one table or figure from the paper's evaluation; run them
//! all with `cargo bench`, or one with `cargo bench --bench fig14_...`.
//!
//! Set `FIDR_BENCH_OPS` to change the per-run request count (default
//! 15,000; the paper's traces are millions of IOs, but the measured
//! quantities are per-byte ratios that converge quickly).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fidr::workload::WorkloadSpec;

/// Requests per run (override with `FIDR_BENCH_OPS`).
pub fn ops() -> usize {
    std::env::var("FIDR_BENCH_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(15_000)
}

/// The §3.2 profiling workload: write-only, dedup and compression both
/// 50 %.
pub fn profile_write_only(ops: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: "Write-only (50% dedup, 50% comp)".to_string(),
        dedup_ratio: 0.5,
        dup_near_fraction: 1.0,
        dup_window: 4_000,
        ..WorkloadSpec::write_h(ops)
    }
}

/// The §3.2 mixed workload: half reads, writes as in
/// [`profile_write_only`].
pub fn profile_mixed(ops: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: "Mixed read/write (50% dedup, 50% comp)".to_string(),
        read_fraction: 0.5,
        ..profile_write_only(ops)
    }
}

/// Run sizing for the §3.2 profiling experiments (Figures 4–5, Tables
/// 1–2): the baseline is profiled with a table cache covering ~70 % of
/// the touched buckets, mirroring the paper's profiling conditions where
/// table-cache hits dominate (Table 2's component shares imply a ~10 %
/// miss rate).
pub fn profile_run_config() -> fidr::RunConfig {
    fidr::RunConfig {
        cache_lines: 1_844, // 90 % of the buckets: warm within a short run
        table_buckets: 1 << 11,
        ..fidr::RunConfig::default()
    }
}

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("==============================================================");
    println!("{id}: {caption}");
    println!("==============================================================");
}

/// Formats bytes/s as GB/s.
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.1} GB/s", bytes_per_sec / 1e9)
}
