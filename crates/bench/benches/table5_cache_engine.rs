//! Table 5: Cache HW-Engine resources and estimated throughput.
//!
//! Columns: the measured prototype ("All": 9-level tree + in-engine table
//! SSD controllers, 410-MB cache, 2 GB/s table SSDs, ~10 GB/s Write-M
//! throughput), the same tree without table-SSD access (~80 GB/s), and
//! the projected 14-level ~100-GB "large tree" (~64 GB/s, URAM-heavy).

use fidr::cache::{HwTree, HwTreeConfig};
use fidr::cost::{cache_engine_resources, vcu1525, CacheEngineConfig};
use fidr::hwsim::PlatformSpec;
use fidr_bench::{banner, ops};

/// Write-M-like engine throughput at `levels` with 4 update slots.
fn engine_gbps(levels: usize, n: u64) -> f64 {
    let cfg = HwTreeConfig {
        update_slots: 4,
        ..HwTreeConfig::with_levels(levels)
    };
    let mut tree = HwTree::new(cfg);
    let mut victims = 0u64;
    for i in 0..n {
        tree.search(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if i % 100 < 19 {
            tree.insert(i.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1, 0);
            tree.remove(victims.wrapping_mul(0x6A09_E667_F3BC_C909) | 1);
            victims += 1;
        }
    }
    tree.throughput_bytes_per_sec(4096, PlatformSpec::default().fpga_dram_bw) / 1e9
}

fn main() {
    banner(
        "Table 5",
        "Cache HW-Engine: size, throughput, FPGA resources",
    );
    let board = vcu1525();
    let n = (ops() as u64 * 8).max(100_000);

    // The "All" column gates on the 2 GB/s table SSD at Write-M's 19 %
    // miss rate: 2 / 0.19 ≈ 10.5 GB/s of client traffic.
    let table_ssd_bw = 2.0;
    let gated = table_ssd_bw / 0.19;
    let medium = engine_gbps(9, n);
    let large = engine_gbps(14, n);

    let configs = [
        (
            "All (proto, 9 lvl + SSD ctrl)",
            CacheEngineConfig::prototype(),
            "410 MB",
            "8/1",
            format!("{gated:.0} GB/s"),
            "10 GB/s",
        ),
        (
            "Medium tree (no SSD access)",
            CacheEngineConfig {
                with_table_ssd_ctrl: false,
                ..CacheEngineConfig::prototype()
            },
            "410 MB",
            "8/1",
            format!("{medium:.0} GB/s"),
            "80 GB/s",
        ),
        (
            "Large tree (14 lvl, ~100 GB)",
            CacheEngineConfig::large_tree(),
            "99,645 MB",
            "13/1",
            format!("{large:.0} GB/s"),
            "64 GB/s",
        ),
    ];

    println!(
        "{:<30} {:>11} {:>9} {:>12} {:>10} {:>9} {:>8} {:>7} {:>7}",
        "Config", "cache size", "on/off", "est. tput", "paper", "LUTs", "FFs", "BRAM", "URAM"
    );
    for (name, cfg, size, levels, tput, paper) in configs {
        let r = cache_engine_resources(cfg);
        println!(
            "{:<30} {:>11} {:>9} {:>12} {:>10} {:>7}K {:>6}K {:>7} {:>7}",
            name,
            size,
            levels,
            tput,
            paper,
            r.luts / 1000,
            r.ffs / 1000,
            r.brams,
            r.urams,
        );
    }
    let large_r = cache_engine_resources(CacheEngineConfig::large_tree());
    println!(
        "\nlarge-tree URAM utilization: {:.1}% of the VU9P (paper: 78.8%)",
        large_r.urams as f64 / board.urams as f64 * 100.0
    );
    println!("paper resources: All 320K LUTs/218 BRAM; medium 316K/202; large 348K/390+756 URAM.");
}
