//! Figure 13: Cache HW-Engine throughput vs concurrent update slots.
//!
//! Drives the pipelined HW tree directly with Write-M-like (19 % miss)
//! and Write-H-like (10 % miss) request mixes at 1–4 speculative update
//! slots. Paper headline: Write-M goes 27.1 GB/s (single-update) →
//! 63.8 GB/s (4 slots) with <0.1 % crash/replays; Write-H saturates the
//! FPGA-board DRAM around 127 GB/s.

use fidr::cache::{HwTree, HwTreeConfig};
use fidr::hwsim::PlatformSpec;
use fidr_bench::{banner, ops};

fn drive(miss_percent: u64, slots: usize, n: u64) -> HwTree {
    // PB-scale 100-GB cache indexing: 14 levels (§6.3).
    let cfg = HwTreeConfig {
        update_slots: slots,
        ..HwTreeConfig::with_levels(14)
    };
    let mut tree = HwTree::new(cfg);
    let mut victims = 0u64;
    for i in 0..n {
        tree.search(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if i % 100 < miss_percent {
            // A miss inserts the fetched bucket and deletes a victim.
            tree.insert(i.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1, 0);
            tree.remove(victims.wrapping_mul(0x6A09_E667_F3BC_C909) | 1);
            victims += 1;
        }
    }
    tree
}

fn main() {
    banner(
        "Figure 13",
        "HW-tree indexing throughput vs concurrent updates",
    );
    let platform = PlatformSpec::default();
    let n = (ops() as u64 * 8).max(100_000);

    for (name, miss, paper) in [
        ("Write-M-like (19% miss)", 19u64, "27.1 -> 63.8 GB/s"),
        (
            "Write-H-like (10% miss)",
            10u64,
            "~54 -> ~127 GB/s (DRAM cap)",
        ),
    ] {
        println!("\nmix: {name}   [paper: {paper}]");
        println!(
            "{:>14} {:>14} {:>14} {:>12}",
            "update slots", "throughput", "vs 1 slot", "crash rate"
        );
        let mut single = 0.0;
        for slots in 1..=4 {
            let tree = drive(miss, slots, n);
            let gbps = tree.throughput_bytes_per_sec(4096, platform.fpga_dram_bw) / 1e9;
            if slots == 1 {
                single = gbps;
            }
            println!(
                "{:>14} {:>9.1} GB/s {:>13.2}x {:>11.4}%",
                slots,
                gbps,
                gbps / single,
                tree.stats().crash_rate() * 100.0
            );
        }
    }
    println!("\ncrash/replay stays below 0.1% (paper §7.4), so scaling is near-linear");
    println!("until the FPGA-board DRAM bandwidth cap.");
}
