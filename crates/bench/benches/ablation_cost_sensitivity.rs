//! Ablation: how sensitive are the headline conclusions to the
//! calibrated cost constants?
//!
//! Every per-operation cycle count in `CostParams` was fit to the paper's
//! own profiling (§3.2, Tables 1–2). This sweep perturbs them ±30 % —
//! globally and for the table-management subset alone — and re-derives
//! the Figure 14 Write-H speedup and the Figure 12 CPU reduction. The
//! conclusions should move, but not flip.

use fidr::hwsim::{CostParams, PlatformSpec, Projection};
use fidr::workload::WorkloadSpec;
use fidr::{run_workload, RunConfig, SystemVariant};
use fidr_bench::{banner, ops};

fn measure(cost: CostParams, n: usize) -> (f64, f64) {
    let platform = PlatformSpec::default();
    let cfg = RunConfig {
        cost,
        ..RunConfig::default()
    };
    let base = run_workload(SystemVariant::Baseline, WorkloadSpec::write_h(n), cfg);
    let fidr = run_workload(SystemVariant::FidrFull, WorkloadSpec::write_h(n), cfg);
    let speedup = fidr.achievable_gbps(&platform) / base.achievable_gbps(&platform);
    let cpu_cut = 1.0
        - Projection::cores_needed(&fidr.ledger, &platform, platform.target_throughput)
            / Projection::cores_needed(&base.ledger, &platform, platform.target_throughput);
    (speedup, cpu_cut)
}

fn main() {
    banner(
        "Ablation",
        "calibration sensitivity: Write-H speedup and CPU cut vs cost scaling",
    );
    let n = ops();
    let base_cost = CostParams::default();

    println!(
        "{:<40} {:>10} {:>12}",
        "cost perturbation", "speedup", "CPU cut"
    );
    let cases: Vec<(String, CostParams)> = vec![
        ("calibrated (paper fit)".to_string(), base_cost),
        ("all CPU costs x0.7".to_string(), base_cost.scaled_cpu(0.7)),
        ("all CPU costs x1.3".to_string(), base_cost.scaled_cpu(1.3)),
        (
            "table mgmt only x0.7".to_string(),
            base_cost.scaled_table_mgmt(0.7),
        ),
        (
            "table mgmt only x1.3".to_string(),
            base_cost.scaled_table_mgmt(1.3),
        ),
    ];
    let mut speedups = Vec::new();
    for (name, cost) in cases {
        let (speedup, cpu_cut) = measure(cost, n);
        println!("{name:<40} {speedup:>9.2}x {:>11.1}%", cpu_cut * 100.0);
        speedups.push(speedup);
    }
    assert!(
        speedups.iter().all(|&s| s > 2.0),
        "the >2x conclusion must survive +/-30% miscalibration: {speedups:?}"
    );
    println!("\nacross the sweep FIDR stays >2x faster and the CPU cut stays large:");
    println!("the paper's conclusion is structural (what runs where), not an");
    println!("artifact of the fitted constants.");
}
