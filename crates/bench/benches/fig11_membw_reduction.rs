//! Figure 11: FIDR's host-memory-bandwidth reduction.
//!
//! Runs each Table 3 workload through the baseline and full FIDR and
//! compares host-DRAM traffic per client byte. Paper headline: up to
//! 79.1 % lower in write-only workloads and 84.9 % in the read-mixed
//! workload.

use fidr::workload::WorkloadSpec;
use fidr::{run_workload, RunConfig, SystemVariant};
use fidr_bench::{banner, ops};

fn main() {
    banner(
        "Figure 11",
        "host memory BW: baseline vs FIDR (lower is better)",
    );
    println!(
        "{:<12} {:>22} {:>22} {:>12}",
        "Workload", "baseline (bytes/byte)", "FIDR (bytes/byte)", "reduction"
    );
    for spec in WorkloadSpec::table3(ops()) {
        let name = spec.name.clone();
        let base = run_workload(SystemVariant::Baseline, spec.clone(), RunConfig::default());
        let fidr = run_workload(SystemVariant::FidrFull, spec, RunConfig::default());
        let b = base.ledger.mem_bytes_per_client_byte();
        let f = fidr.ledger.mem_bytes_per_client_byte();
        println!(
            "{:<12} {:>22.2} {:>22.2} {:>11.1}%",
            name,
            b,
            f,
            (1.0 - f / b) * 100.0
        );
    }
    println!("\npaper: up to 79.1% reduction on write-only, 84.9% on Read-Mixed;");
    println!("higher table-cache hit rates make FIDR's reduction larger.");
}
