//! Ablation: table-cache size vs hit rate and achievable throughput.
//!
//! The paper fixes the cache at 2.8 % of the table (§7.1 factor 5). This
//! sweep varies the cached fraction and shows how the Write-M hit rate,
//! the table-SSD traffic, and the projected throughput respond — the
//! sizing curve an operator would actually consult.

use fidr::hwsim::PlatformSpec;
use fidr::workload::WorkloadSpec;
use fidr::{run_workload, RunConfig, SystemVariant};
use fidr_bench::{banner, ops};

fn main() {
    banner(
        "Ablation",
        "table-cache fraction vs hit rate and throughput (Write-M, FIDR)",
    );
    let platform = PlatformSpec::default();
    let table_buckets: u64 = 1 << 17;
    println!(
        "{:>15} {:>12} {:>10} {:>16} {:>14}",
        "cache lines", "fraction", "hit rate", "table-SSD B/B", "achievable"
    );
    for lines in [256usize, 1024, 4096, 16384, 65536] {
        let r = run_workload(
            SystemVariant::FidrFull,
            WorkloadSpec::write_m(ops()),
            RunConfig {
                cache_lines: lines,
                table_buckets,
                ..RunConfig::default()
            },
        );
        let table_traffic = (r.ledger.table_ssd_read_bytes + r.ledger.table_ssd_write_bytes) as f64
            / r.ledger.client_bytes() as f64;
        println!(
            "{:>15} {:>11.1}% {:>9.1}% {:>16.3} {:>9.1} GB/s",
            lines,
            lines as f64 / table_buckets as f64 * 100.0,
            r.cache.hit_rate() * 100.0,
            table_traffic,
            r.achievable_gbps(&platform),
        );
    }
    println!("\nthe knee sits where the cache covers the duplicate-recency window;");
    println!("beyond it extra DRAM buys little (the paper's 2.8% was chosen there).");
}
