//! Table 3: the four evaluation workloads, with measured properties.
//!
//! The generator is built from the paper's own recipe (§7.1): trace
//! skeletons replicated with systematic content mutation to pin the dedup
//! ratio, 50 % compressibility, and a recency window tuned for the target
//! table-cache hit rate at a ~3 % cache fraction. This bench *measures*
//! each property by running the workload.

use fidr::compress;
use fidr::hash::Fingerprint;
use fidr::workload::{Request, Workload, WorkloadSpec};
use fidr::{run_workload, RunConfig, SystemVariant};
use fidr_bench::{banner, ops};
use std::collections::HashSet;

fn main() {
    banner("Table 3", "workload summary (target vs measured)");
    println!(
        "{:<12} {:>13} {:>13} {:>12} {:>12} {:>13} {:>13}",
        "Workload", "dedup target", "measured", "comp target", "measured", "hit target", "measured"
    );

    for spec in WorkloadSpec::table3(ops()) {
        let name = spec.name.clone();
        let (dedup_target, hit_target) = match name.as_str() {
            "Write-H" => (0.88, 0.90),
            "Write-M" => (0.84, 0.81),
            "Write-L" => (0.431, 0.45),
            _ => (0.88, 0.90),
        };

        // Measure dedup + compressibility straight off the stream.
        let mut seen: HashSet<Fingerprint> = HashSet::new();
        let mut writes = 0u64;
        let mut dups = 0u64;
        let mut comp_sum = 0.0;
        let mut comp_n = 0u64;
        for req in Workload::new(spec.clone()) {
            if let Request::Write { data, .. } = req {
                writes += 1;
                if !seen.insert(Fingerprint::of(&data)) {
                    dups += 1;
                }
                if comp_n < 300 {
                    comp_sum += compress::compress(&data).len() as f64 / data.len() as f64;
                    comp_n += 1;
                }
            }
        }

        // Measure the table-cache hit rate on the baseline system.
        let run = run_workload(SystemVariant::Baseline, spec, RunConfig::default());

        println!(
            "{:<12} {:>12.1}% {:>12.1}% {:>11.0}% {:>11.1}% {:>12.0}% {:>12.1}%",
            name,
            dedup_target * 100.0,
            dups as f64 / writes as f64 * 100.0,
            50.0,
            comp_sum / comp_n as f64 * 100.0,
            hit_target * 100.0,
            run.cache.hit_rate() * 100.0,
        );
    }
    println!("\npaper Table 3: Write-H 88/50/90, Write-M 84/50/81, Write-L 43.1/50/45;");
    println!("Read-Mixed: half reads (random valid addresses), writes as Write-H.");
}
