//! Ablation: the CIDR unique-chunk predictor's filter size.
//!
//! The predictor is the baseline's way around the hash-then-compress
//! serialization (Observation #3). Its Bloom filter trades host memory for
//! accuracy: an undersized filter saturates, mispredicts "duplicate" for
//! fresh chunks, and forces second FPGA round trips; FIDR removes the
//! whole mechanism. This sweep quantifies that trade-off.

use bytes::Bytes;
use fidr::baseline::{BaselineConfig, BaselineSystem};
use fidr::chunk::Lba;
use fidr::hwsim::MemPath;
use fidr::workload::{Request, Workload, WorkloadSpec};
use fidr_bench::{banner, ops};

fn main() {
    banner(
        "Ablation",
        "baseline predictor filter size vs accuracy and wasted transfers",
    );
    let n = ops();
    println!(
        "{:>13} {:>10} {:>16} {:>18}",
        "filter bits", "accuracy", "FPGA round trips", "mem B/client B"
    );
    for bits in [1usize << 10, 1 << 14, 1 << 18, 1 << 22] {
        let mut sys = BaselineSystem::new(BaselineConfig {
            predictor_bits: bits,
            ..BaselineConfig::default()
        });
        for req in Workload::new(WorkloadSpec::write_m(n)) {
            if let Request::Write { lba, data } = req {
                sys.write(lba, data).unwrap();
            }
        }
        sys.flush().unwrap();
        let p = sys.predictor_stats();
        // Each chunk takes one round trip; mispredicted uniques take two.
        let round_trips = p.predictions + (p.predictions - p.correct);
        println!(
            "{:>13} {:>9.1}% {:>16} {:>18.2}",
            bits,
            p.accuracy() * 100.0,
            round_trips,
            sys.ledger().mem_bytes_per_client_byte(),
        );
        // Anchor: the per-chunk memory cost never goes away, even when
        // the filter is perfect (Observation #3's point).
        assert!(sys.ledger().mem_bytes(MemPath::UniquePrediction) > 0);
    }
    // Reference writes without any predictor at all (FIDR-style early
    // detection) need exactly one data pass.
    let mut fidr = fidr::core::FidrSystem::new(fidr::core::FidrConfig::default());
    for req in Workload::new(WorkloadSpec::write_m(n)) {
        if let Request::Write { lba, data } = req {
            fidr.write(Lba(lba.0), Bytes::from(data.to_vec())).unwrap();
        }
    }
    fidr.flush().unwrap();
    println!(
        "{:>13} {:>9} {:>16} {:>18.2}   <- FIDR (no predictor)",
        "-",
        "-",
        n,
        fidr.ledger().mem_bytes_per_client_byte(),
    );
    println!("\nsmaller filters saturate: accuracy falls and mispredicted uniques");
    println!("pay a second host<->FPGA round trip. FIDR's in-NIC hashing makes the");
    println!("entire mechanism — and its 23.7% memory-BW bill — unnecessary.");
}
