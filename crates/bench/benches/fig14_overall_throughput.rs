//! Figure 14: end-to-end throughput of the staged FIDR designs.
//!
//! Projects each workload × variant onto the 22-core socket (§7.5's
//! method: measured CPU, memory bandwidth, and Cache HW-Engine
//! throughput). Paper headlines: NIC offload + P2P alone gives up to
//! 1.6×; the single-update HW cache can *regress* Write-L/M; concurrent
//! updates lift the total to up to 3.3× (write-only) and 1.7 × (mixed).

use fidr::hwsim::PlatformSpec;
use fidr::workload::WorkloadSpec;
use fidr::{run_workload, RunConfig, SystemVariant};
use fidr_bench::{banner, ops};

fn main() {
    banner(
        "Figure 14",
        "achievable throughput per variant, normalized to the baseline",
    );
    let platform = PlatformSpec::default();
    println!(
        "{:<12} {:>20} {:>16} {:>18} {:>16} {:>10}",
        "Workload", "baseline", "+NIC+P2P", "+HW cache (1upd)", "full (4upd)", "speedup"
    );
    for spec in WorkloadSpec::table3(ops()) {
        let name = spec.name.clone();
        let gbps: Vec<f64> = SystemVariant::ALL
            .iter()
            .map(|&v| {
                run_workload(v, spec.clone(), RunConfig::default()).achievable_gbps(&platform)
            })
            .collect();
        println!(
            "{:<12} {:>15.1} GB/s {:>11.1} GB/s {:>13.1} GB/s {:>11.1} GB/s {:>9.2}x",
            name,
            gbps[0],
            gbps[1],
            gbps[2],
            gbps[3],
            gbps[3] / gbps[0]
        );
        if gbps[2] < gbps[1] {
            println!("             ^ single-update HW tree regresses this workload (paper §7.5)");
        }
    }
    println!("\npaper: up to 3.3x on write-only, 1.7x on Read-Mixed; NIC+P2P alone");
    println!("up to 1.6x; single-update HW cache lowers Write-L/Write-M.");
}
