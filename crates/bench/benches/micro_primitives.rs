//! Criterion micro-benchmarks for the substrate primitives: SHA-256,
//! the LZ codec, fingerprint bucketing, the software B+ tree, the HW-tree
//! model, and Hash-PBN bucket scans.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fidr::cache::{BPlusTree, HwTree, HwTreeConfig, PipelinedTree};
use fidr::chunk::Pbn;
use fidr::compress::{compress, decompress, ContentGenerator};
use fidr::hash::{Fingerprint, Sha256};
use fidr::tables::Bucket;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    let chunk = ContentGenerator::new(0.5).chunk(1, 4096);
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("digest_4k", |b| {
        b.iter(|| Sha256::digest(black_box(&chunk)))
    });
    g.finish();
}

fn bench_lzss(c: &mut Criterion) {
    let mut g = c.benchmark_group("lzss");
    let chunk = ContentGenerator::new(0.5).chunk(2, 4096);
    let packed = compress(&chunk);
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("compress_4k_r05", |b| {
        b.iter(|| compress(black_box(&chunk)))
    });
    g.bench_function("compress_4k_r05_high", |b| {
        b.iter(|| {
            fidr::compress::compress_with_level(
                black_box(&chunk),
                fidr::compress::CompressionLevel::High,
            )
        })
    });
    g.bench_function("decompress_4k_r05", |b| {
        b.iter(|| decompress(black_box(&packed), 4096).unwrap())
    });
    g.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    let chunk = ContentGenerator::new(0.5).chunk(3, 4096);
    let fp = Fingerprint::of(&chunk);
    c.bench_function("fingerprint_bucket_index", |b| {
        b.iter(|| black_box(&fp).bucket_index(1 << 20))
    });
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    let mut tree = BPlusTree::new();
    for k in 0..100_000u64 {
        tree.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k as u32);
    }
    let mut i = 0u64;
    g.bench_function("search_100k", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            tree.search(black_box(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        })
    });
    g.bench_function("insert_remove", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let k = i.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
            tree.insert(k, 0);
            tree.remove(k)
        })
    });
    g.finish();
}

fn bench_pipelined_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipelined_tree");
    let mut tree = PipelinedTree::new();
    for k in 0..100_000u64 {
        tree.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k as u32);
    }
    let mut i = 0u64;
    g.bench_function("search_100k", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            tree.search(black_box(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        })
    });
    g.bench_function("insert_remove", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let k = i.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
            tree.insert(k, 0);
            tree.remove(k)
        })
    });
    g.finish();
}

fn bench_hwtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("hwtree_model");
    let mut tree = HwTree::new(HwTreeConfig {
        update_slots: 4,
        ..HwTreeConfig::with_levels(14)
    });
    for k in 0..50_000u64 {
        tree.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k as u32);
    }
    let mut i = 0u64;
    g.bench_function("search", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            tree.search(black_box(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        })
    });
    g.bench_function("speculative_update", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let k = i.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
            tree.insert(k, 0);
            tree.remove(k)
        })
    });
    g.finish();
}

fn bench_bucket_scan(c: &mut Criterion) {
    let mut bucket = Bucket::new();
    let mut fps = Vec::new();
    for i in 0..100u64 {
        let fp = Fingerprint::of(&i.to_le_bytes());
        bucket.insert(fp, Pbn(i)).unwrap();
        fps.push(fp);
    }
    let mut i = 0usize;
    c.bench_function("bucket_scan_100_entries", |b| {
        b.iter(|| {
            i = (i + 1) % fps.len();
            bucket.lookup(black_box(&fps[i]))
        })
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_lzss,
    bench_fingerprint,
    bench_btree,
    bench_pipelined_tree,
    bench_hwtree,
    bench_bucket_scan
);
criterion_main!(benches);
