//! Figure 16: cost breakdown at 75 GB/s and 500 TB effective capacity.
//!
//! Bars: no reduction, the baseline forced into partial reduction, and
//! FIDR — each split into data SSDs, table SSDs, DRAM, CPU and FPGA.

use fidr::cost::{CostBreakdown, CostModel, Scenario};
use fidr_bench::banner;

fn print_bar(name: &str, c: &CostBreakdown) {
    println!(
        "{:<22} {:>10.0} {:>10.0} {:>8.0} {:>8.0} {:>8.0} {:>11.0}",
        name,
        c.data_ssd,
        c.table_ssd,
        c.dram,
        c.cpu,
        c.fpga,
        c.total()
    );
}

fn main() {
    banner(
        "Figure 16",
        "cost breakdown at 75 GB/s, 500 TB effective ($)",
    );
    let model = CostModel::default();
    let effective_gb = 500_000.0;

    let fidr = model.fidr(Scenario {
        effective_gb,
        throughput_gbps: 75.0,
        reduction_factor: 4.0,
        reduced_fraction: 1.0,
        cores: 0.29 * 75.0,
        cache_dram_gb: 100.0,
    });
    let baseline = model.baseline(Scenario {
        effective_gb,
        throughput_gbps: 75.0,
        reduction_factor: 4.0,
        reduced_fraction: 25.0 / 75.0,
        cores: 22.0,
        cache_dram_gb: 100.0,
    });
    let none = model.no_reduction(effective_gb);

    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>8} {:>8} {:>11}",
        "Configuration", "data SSD", "table SSD", "DRAM", "CPU", "FPGA", "TOTAL"
    );
    print_bar("No data reduction", &none);
    print_bar("Baseline (partial)", &baseline);
    print_bar("FIDR", &fidr);

    println!(
        "\nFIDR saves {:.1}% vs no reduction and {:.1}% vs the partial baseline",
        model.saving(&fidr, effective_gb) * 100.0,
        (1.0 - fidr.total() / baseline.total()) * 100.0,
    );
    println!("paper: SSD savings dominate the added CPU/FPGA/DRAM cost; the");
    println!("baseline's partial reduction makes it significantly pricier than FIDR.");
}
