//! Figure 12: FIDR's CPU-utilization reduction, in stages.
//!
//! For each workload, reports CPU cores needed at the 75 GB/s target for
//! the baseline, for FIDR's NIC offload + P2P alone (predictor gone,
//! table caching still software), and for full FIDR (HW cache engine).
//! Paper headline: NIC-based early hashing removes 20–37 %; HW table-cache
//! offloading removes a further 19–44 points; up to 68 % total on
//! write-only and 39 % on read-mixed.

use fidr::hwsim::{PlatformSpec, Projection};
use fidr::workload::WorkloadSpec;
use fidr::{run_workload, RunConfig, SystemVariant};
use fidr_bench::{banner, ops};

fn main() {
    banner(
        "Figure 12",
        "CPU cores needed at 75 GB/s, staged (lower is better)",
    );
    let platform = PlatformSpec::default();
    let variants = [
        SystemVariant::Baseline,
        SystemVariant::FidrNicP2p,
        SystemVariant::FidrFull,
    ];
    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>16}",
        "Workload", "baseline", "+NIC offload", "full FIDR", "total reduction"
    );
    for spec in WorkloadSpec::table3(ops()) {
        let name = spec.name.clone();
        let cores: Vec<f64> = variants
            .iter()
            .map(|&v| {
                let r = run_workload(v, spec.clone(), RunConfig::default());
                Projection::cores_needed(&r.ledger, &platform, platform.target_throughput)
            })
            .collect();
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>12.1} {:>15.1}%",
            name,
            cores[0],
            cores[1],
            cores[2],
            (1.0 - cores[2] / cores[0]) * 100.0
        );
    }
    println!("\npaper: NIC offload cuts 20-37%; HW cache mgmt a further 19-44 points;");
    println!("up to 68% total on write-only workloads, 39% on Read-Mixed.");
}
