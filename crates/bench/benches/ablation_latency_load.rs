//! Ablation: read latency under load — analytic M/D/1 vs discrete-event.
//!
//! §7.6's numbers are single points; this bench sweeps offered load on
//! both read datapaths and cross-checks the closed-form queueing
//! approximation (`LatencyModel::total_under_load`) against the
//! discrete-event pipeline simulator. FIDR's shorter host-free datapath
//! both starts lower *and* saturates later per device chain.

use fidr::core::LatencyModel;
use fidr::ssd::SsdSpec;
use fidr_bench::banner;

fn main() {
    banner(
        "Ablation",
        "read latency vs offered load: M/D/1 closed form vs discrete-event",
    );
    let ssd = SsdSpec::default();
    for (name, model) in [
        ("baseline read", LatencyModel::baseline_read(&ssd)),
        ("FIDR read", LatencyModel::fidr_read(&ssd)),
    ] {
        let pipeline = model.to_pipeline();
        let capacity = pipeline.capacity_hz();
        println!(
            "\n{name}: per-chain capacity {:.0} reads/s (bottleneck stage)",
            capacity
        );
        println!(
            "{:>12} {:>18} {:>16} {:>16} {:>14}",
            "load", "offered (reads/s)", "DES mean", "DES p99", "M/D/1 mean"
        );
        for rho in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let rate = capacity * rho;
            let r = pipeline.run_poisson(60_000, rate, 0xF1D8);
            // The closed form models per-stage queueing at `rho`; compare
            // against the service stages only (no batch wait).
            let analytic = model.total_under_load(rho).as_secs_f64()
                - model
                    .stages
                    .iter()
                    .find(|s| s.name == "batch wait")
                    .map(|s| s.time.as_secs_f64() * (1.0 + rho / (2.0 * (1.0 - rho))))
                    .unwrap_or(0.0);
            println!(
                "{:>11.0}% {:>18.0} {:>13.0} us {:>13.0} us {:>11.0} us",
                rho * 100.0,
                rate,
                r.mean_latency.as_secs_f64() * 1e6,
                r.p99_latency.as_secs_f64() * 1e6,
                analytic * 1e6,
            );
        }
    }
    println!("\nwith deterministic arrivals and service the DES shows no queueing");
    println!("below saturation; the M/D/1 form is the conservative envelope for");
    println!("bursty arrivals. Either way the FIDR chain stays ~200 us below the");
    println!("baseline chain at every load point.");
}
