//! Ablation: the §7.5 analytic projection vs a discrete-event replay.
//!
//! The paper (and Figure 14 here) projects throughput by dividing socket
//! capacities by measured per-byte demands. This bench rebuilds each run
//! as a tandem queueing pipeline — one station per shared resource — and
//! drives it with Poisson arrivals: measured saturation must land on the
//! analytic number, and the sweep shows the write-latency knee the
//! closed form cannot express.

use fidr::hwsim::PlatformSpec;
use fidr::workload::WorkloadSpec;
use fidr::{run_workload, RunConfig, SystemVariant};
use fidr_bench::{banner, ops};

fn main() {
    banner(
        "Ablation",
        "analytic projection vs discrete-event saturation (Write-H)",
    );
    let platform = PlatformSpec::default();
    for variant in [SystemVariant::Baseline, SystemVariant::FidrFull] {
        let report = run_workload(variant, WorkloadSpec::write_h(ops()), RunConfig::default());
        let analytic = report.achievable_gbps(&platform);
        let pipeline = report.to_write_pipeline(&platform);
        let capacity_gbps = pipeline.capacity_hz() * 4096.0 / 1e9;

        println!(
            "\n{}: analytic projection {:.1} GB/s, DES pipeline capacity {:.1} GB/s",
            variant.label(),
            analytic,
            capacity_gbps
        );
        println!(
            "{:>12} {:>16} {:>18} {:>16}",
            "load", "offered GB/s", "measured GB/s", "mean latency"
        );
        for rho in [0.5, 0.8, 0.95, 1.3] {
            let rate = pipeline.capacity_hz() * rho;
            let r = pipeline.run_poisson(40_000, rate, 0xF1D8);
            println!(
                "{:>11.0}% {:>16.1} {:>18.1} {:>13.0} us",
                rho * 100.0,
                rate * 4096.0 / 1e9,
                r.throughput_hz * 4096.0 / 1e9,
                r.mean_latency.as_secs_f64() * 1e6,
            );
        }
        let agreement = (capacity_gbps - analytic).abs() / analytic;
        assert!(
            agreement < 0.02,
            "DES capacity and analytic projection must agree (off by {:.1}%)",
            agreement * 100.0
        );
    }
    println!("\noffered load beyond 100% pins measured throughput at the projected");
    println!("ceiling — the event-driven replay and the closed form agree, and the");
    println!("latency knee shows how much headroom a latency SLO really leaves.");
}
