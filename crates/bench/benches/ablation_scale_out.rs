//! Ablation: multi-socket scale-out.
//!
//! The paper evaluates per socket and argues sockets scale independently
//! (§3.2). This bench stripes the Write-H client space across 1/2/4
//! independent shards (sockets), runs them on real parallel threads, and
//! reports both the aggregate projected throughput (which must scale
//! linearly — each socket serves its own client population) and this
//! process's functional wall-clock throughput (real SHA-256 + LZ work
//! per second; scales with host cores, of which CI machines may have 1).

use fidr::hwsim::PlatformSpec;
use fidr::workload::WorkloadSpec;
use fidr::{run_workload_sharded, RunConfig, SystemVariant};
use fidr_bench::{banner, ops};

fn main() {
    banner("Ablation", "multi-socket scale-out (FIDR full, Write-H)");
    let platform = PlatformSpec::default();
    let n = ops();
    println!(
        "{:>8} {:>22} {:>24} {:>14}",
        "sockets", "aggregate projected", "functional wall-clock", "scaling"
    );
    let mut single = 0.0;
    for shards in [1usize, 2, 4] {
        let report = run_workload_sharded(
            SystemVariant::FidrFull,
            WorkloadSpec::write_h(n),
            RunConfig::default(),
            shards,
        );
        let agg = report.aggregate_gbps(&platform);
        if shards == 1 {
            single = agg;
        }
        println!(
            "{:>8} {:>17.1} GB/s {:>19.3} GB/s {:>13.2}x",
            shards,
            agg,
            report.functional_gbps(),
            agg / single,
        );
    }
    println!("\nprojected capacity adds per socket (independent cores/memory/IO);");
    println!("the functional number is this process really reducing data on N threads.");
}
