//! Table 2: CPU utilization within table-cache management, normalized.
//!
//! Paper rows: tree indexing 43.9 % (tree nodes, <3 GB, best on the
//! accelerator), table-SSD access 24.7 % (IO queues, KB–MBs, accelerator),
//! cache content access 6.3 % (10–100s GB, host), replacement management
//! 1.0 % (LRU/free lists, MBs, either).

use fidr::hwsim::CpuTask;
use fidr::{run_workload, SystemVariant};
use fidr_bench::{banner, ops, profile_run_config, profile_write_only};

fn main() {
    banner(
        "Table 2",
        "normalized CPU within table caching + best placement",
    );
    let run = run_workload(
        SystemVariant::Baseline,
        profile_write_only(ops()),
        profile_run_config(),
    );

    let rows = [
        (
            CpuTask::TreeIndexing,
            "Tree nodes",
            "Below 3 GB",
            "Accelerator",
            43.9,
        ),
        (
            CpuTask::TableSsdStack,
            "IO control queues",
            "KB-MBs",
            "Accelerator",
            24.7,
        ),
        (
            CpuTask::TableContentScan,
            "Table cache content",
            "10-100s GB",
            "Host",
            6.3,
        ),
        (
            CpuTask::CacheReplacement,
            "LRU and free lists",
            "MBs",
            "Host or accelerator",
            1.0,
        ),
    ];

    let caching_total: u64 = rows.iter().map(|(t, ..)| run.ledger.cpu_cycles(*t)).sum();
    println!(
        "{:<28} {:>10} {:>20} {:>12} {:>20} {:>8}",
        "Component", "CPU util", "Data structure", "Capacity", "Best place to run", "paper"
    );
    for (task, structure, capacity, place, paper) in rows {
        println!(
            "{:<28} {:>9.1}% {:>20} {:>12} {:>20} {:>7.1}%",
            task.label(),
            run.ledger.cpu_cycles(task) as f64 / caching_total as f64 * 100.0,
            structure,
            capacity,
            place,
            paper,
        );
    }
    let small = run.ledger.cpu_cycles(CpuTask::TreeIndexing)
        + run.ledger.cpu_cycles(CpuTask::TableSsdStack);
    println!(
        "\nsmall-data-structure share of table-caching CPU: {:.1}% (paper: 68.8%)",
        small as f64 / caching_total as f64 * 100.0
    );
}
