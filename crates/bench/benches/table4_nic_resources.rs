//! Table 4: FPGA resource utilization of the FIDR custom NIC.
//!
//! Paper rows (write-only): data-reduction support 125 K LUTs (10.7 %),
//! 128 K FFs, 95 BRAMs; basic NIC + TCP offload 166 K LUTs, 1024 BRAMs;
//! total 24.5 % LUTs / 51.8 % BRAM. Mixed halves the hashing: 84 K LUTs,
//! 75 BRAMs of support logic.

use fidr::cost::{basic_nic, nic_reduction_support, vcu1525, FpgaResources};
use fidr_bench::banner;

fn pct(v: u64, of: u64) -> String {
    format!("{:.1}%", v as f64 / of as f64 * 100.0)
}

fn row(name: &str, r: FpgaResources, board: &FpgaResources) {
    println!(
        "{:<28} {:>7}K ({:>6}) {:>7}K ({:>6}) {:>6} ({:>6})",
        name,
        r.luts / 1000,
        pct(r.luts, board.luts),
        r.ffs / 1000,
        pct(r.ffs, board.ffs),
        r.brams,
        pct(r.brams, board.brams),
    );
}

fn main() {
    banner("Table 4", "FIDR NIC resource utilization on a VCU1525");
    let board = vcu1525();
    for (title, write_fraction) in [
        ("Write-only workload", 1.0),
        ("Mixed workload (50% read)", 0.5),
    ] {
        println!("\n{title}");
        println!(
            "{:<28} {:>16} {:>16} {:>14}",
            "", "LUTs", "Flip flops", "BRAMs"
        );
        let support = nic_reduction_support(write_fraction);
        let nic = basic_nic();
        row("Data reduction support", support, &board);
        row("Basic NIC + TCP offload", nic, &board);
        row("Total", support.plus(nic), &board);
    }
    println!("\npaper: write-only support 125K LUTs / 95 BRAMs; mixed 84K / 75;");
    println!("totals 24.5% LUTs, 51.8% BRAMs — small enough for low-end FPGAs");
    println!("once the basic NIC datapath is a fixed ASIC (§7.7.1).");
}
