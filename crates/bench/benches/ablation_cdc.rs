//! Ablation: fixed 4-KB chunking vs content-defined chunking.
//!
//! The paper picks fixed small chunking for its low computational cost
//! (§2.1.1) — variable chunking is what commercial backup systems use to
//! survive *byte-shifted* duplicates. This ablation measures both on two
//! streams: block-aligned duplicates (fixed chunking's home turf) and a
//! re-uploaded stream with a few bytes inserted (CDC's home turf).

use fidr::chunk::GearChunker;
use fidr::hash::Fingerprint;
use fidr_bench::{banner, ops};
use std::collections::HashSet;

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 24) as u8
        })
        .collect()
}

fn fixed_dedup(streams: &[&[u8]]) -> f64 {
    let mut seen: HashSet<Fingerprint> = HashSet::new();
    let mut total = 0u64;
    let mut dups = 0u64;
    for stream in streams {
        for chunk in stream.chunks(4096) {
            total += 1;
            if !seen.insert(Fingerprint::of(chunk)) {
                dups += 1;
            }
        }
    }
    dups as f64 / total as f64
}

fn cdc_dedup(streams: &[&[u8]]) -> f64 {
    let chunker = GearChunker::new(1024, 4096, 16384);
    let mut seen: HashSet<Fingerprint> = HashSet::new();
    let mut total = 0u64;
    let mut dups = 0u64;
    for stream in streams {
        for cut in chunker.split(stream) {
            total += 1;
            if !seen.insert(Fingerprint::of(&stream[cut.start..cut.start + cut.len])) {
                dups += 1;
            }
        }
    }
    dups as f64 / total as f64
}

fn main() {
    banner(
        "Ablation",
        "fixed 4-KB vs content-defined chunking on shifted duplicates",
    );
    let len = (ops() * 256).max(1 << 20);
    let base = noise(len, 42);

    // Scenario A: the same stream re-written block-aligned.
    let aligned = base.clone();
    // Scenario B: the same stream re-uploaded with 7 bytes inserted near
    // the front (the classic backup-delta case).
    let mut shifted = base.clone();
    for (i, b) in [1u8, 2, 3, 4, 5, 6, 7].iter().enumerate() {
        shifted.insert(1000 + i * 3, *b);
    }

    println!(
        "{:<34} {:>14} {:>14}",
        "scenario", "fixed 4 KB", "CDC (gear)"
    );
    println!(
        "{:<34} {:>13.1}% {:>13.1}%",
        "aligned re-write",
        fixed_dedup(&[&base, &aligned]) * 100.0,
        cdc_dedup(&[&base, &aligned]) * 100.0,
    );
    println!(
        "{:<34} {:>13.1}% {:>13.1}%",
        "re-upload with 7 bytes inserted",
        fixed_dedup(&[&base, &shifted]) * 100.0,
        cdc_dedup(&[&base, &shifted]) * 100.0,
    );
    println!("\nfixed chunking collapses on byte-shifted data (every block after");
    println!("the insertion changes), while CDC re-synchronizes within a few");
    println!("chunks. Primary block storage is write-aligned, which is why the");
    println!("paper (and this system) chooses fixed 4-KB chunking — but the CDC");
    println!("path is here for object/backup-style front ends.");
}
