//! Figure 3: IO-request inflation under large chunking.
//!
//! Replays mail-server-like and webVM-like write traces through the
//! deduplicating store at 4-KB vs larger chunk sizes with the paper's
//! 4-MB request buffer, and reports total SSD IO normalized to 4-KB
//! chunking. Paper headline: up to 17.5× more IO at 32-KB chunking.

use fidr::chunk::replay_chunking;
use fidr::workload::skeleton::{mail_trace, webvm_trace};
use fidr_bench::{banner, ops};

fn main() {
    banner(
        "Figure 3",
        "IO increase from read-modify-write + dedup loss under large chunking",
    );
    let n = ops() * 4;
    let buffer_blocks = 1024; // 4 MB of 4-KB blocks (§3.1)

    for (name, trace) in [
        ("Mail", mail_trace(n, 0xF1D0_0003)),
        ("WebVM", webvm_trace(n, 0xF1D0_0003)),
    ] {
        println!("\ntrace: {name} ({n} block writes, 4 MB request buffer)");
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>14} {:>12}",
            "chunking", "RMW reads", "writes", "total IO", "dedup ratio", "vs 4 KB"
        );
        let base = replay_chunking(&trace, 1, buffer_blocks);
        for chunk_blocks in [1usize, 2, 4, 8] {
            let r = replay_chunking(&trace, chunk_blocks, buffer_blocks);
            println!(
                "{:>8}KB {:>12} {:>12} {:>12} {:>13.1}% {:>11.1}x",
                chunk_blocks * 4,
                r.rmw_read_blocks,
                r.write_blocks,
                r.total_io_blocks(),
                r.dedup_ratio() * 100.0,
                r.total_io_blocks() as f64 / base.total_io_blocks() as f64,
            );
        }
    }
    println!("\npaper: mail trace reaches up to 17.5x IO at 32-KB chunking;");
    println!("       large chunks also degrade duplicate detection (§3.1).");
}
