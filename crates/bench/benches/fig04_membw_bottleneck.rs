//! Figure 4: the baseline's host-memory-bandwidth bottleneck.
//!
//! Runs the CIDR-extended baseline on the §3.2 profiling workloads,
//! measures host-DRAM bytes per client byte, and projects the bandwidth
//! demand across throughputs — including the paper's two measured points
//! (5 and 6.9 GB/s) and the 75 GB/s target. Paper headline: 317 GB/s
//! (write-only) and 269 GB/s (mixed) demanded at 75 GB/s versus the
//! socket's 170 GB/s theoretical maximum.

use fidr::hwsim::{PlatformSpec, Projection};
use fidr::{run_workload, SystemVariant};
use fidr_bench::{banner, ops, profile_mixed, profile_run_config, profile_write_only};

fn main() {
    banner(
        "Figure 4",
        "memory bandwidth demand of the HW-accelerated baseline",
    );
    let platform = PlatformSpec::default();
    let specs = [profile_write_only(ops()), profile_mixed(ops())];

    for spec in specs {
        let name = spec.name.clone();
        let report = run_workload(SystemVariant::Baseline, spec, profile_run_config());
        println!(
            "\nworkload: {name}\n  measured host-memory traffic: {:.2} bytes per client byte",
            report.ledger.mem_bytes_per_client_byte()
        );
        println!(
            "{:>18} {:>22} {:>12}",
            "throughput", "memory BW needed", "feasible?"
        );
        for gbps in [5.0, 6.9, 25.0, 40.0, 47.0, 75.0] {
            let need = Projection::mem_bw_needed(&report.ledger, gbps * 1e9);
            println!(
                "{:>13.1} GB/s {:>17.1} GB/s {:>12}",
                gbps,
                need / 1e9,
                if need <= platform.mem_bw { "yes" } else { "NO" }
            );
        }
        let cap = platform.mem_bw / report.ledger.mem_bytes_per_client_byte();
        println!(
            "  socket limit {} => baseline caps at {:.1} GB/s ({:.1}x below the 75 GB/s target)",
            fidr_bench::gbps(platform.mem_bw),
            cap / 1e9,
            75e9 / cap
        );
    }
    println!("\npaper: 317 GB/s (write-only) / 269 GB/s (mixed) at 75 GB/s;");
    println!("       170 GB/s available => throughput limited to 40-47 GB/s (1.9x short).");
}
