//! Ablation: Cache HW-Engine design choices.
//!
//! Sweeps the two knobs behind Figure 13 — speculation slots and tree
//! depth — plus a knob the paper fixes: key locality. Speculation relies
//! on "hash values are highly random" (§5.5.1); this ablation shows what
//! happens to the crash rate when keys cluster instead.

use fidr::cache::{HwTree, HwTreeConfig};
use fidr::hwsim::PlatformSpec;
use fidr_bench::{banner, ops};

fn drive(tree: &mut HwTree, n: u64, clustered: bool) {
    let mut victims = 0u64;
    for i in 0..n {
        let key = if clustered {
            // Sequential-ish bucket indexes: adjacent keys share leaves.
            i / 4
        } else {
            i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        tree.search(key);
        if i % 100 < 19 {
            let (ins, del) = if clustered {
                ((i / 2) | (1 << 62), (victims / 2) | (1 << 61))
            } else {
                (
                    i.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1,
                    victims.wrapping_mul(0x6A09_E667_F3BC_C909) | 1,
                )
            };
            tree.insert(ins, 0);
            tree.remove(del);
            victims += 1;
        }
    }
}

fn main() {
    banner(
        "Ablation",
        "HW-tree: depth x slots x key locality (Write-M mix)",
    );
    let platform = PlatformSpec::default();
    let n = (ops() as u64 * 4).max(60_000);

    println!(
        "{:>7} {:>6} {:>11} {:>14} {:>12}",
        "levels", "slots", "keys", "throughput", "crash rate"
    );
    for levels in [9usize, 14] {
        for slots in [1usize, 4] {
            for clustered in [false, true] {
                let mut tree = HwTree::new(HwTreeConfig {
                    update_slots: slots,
                    ..HwTreeConfig::with_levels(levels)
                });
                drive(&mut tree, n, clustered);
                println!(
                    "{:>7} {:>6} {:>11} {:>9.1} GB/s {:>11.3}%",
                    levels,
                    slots,
                    if clustered { "clustered" } else { "uniform" },
                    tree.throughput_bytes_per_sec(4096, platform.fpga_dram_bw) / 1e9,
                    tree.stats().crash_rate() * 100.0,
                );
            }
        }
    }
    println!("\ntakeaways: shallower trees are faster; speculation only pays when");
    println!("keys are uniform (SHA-derived bucket indexes are) — clustered keys");
    println!("crash the speculation window and erode the concurrency win.");
}
