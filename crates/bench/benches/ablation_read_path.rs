//! Ablation: the read-path extensions — §7.5's future-work NVMe offload
//! and §8's hot-block read cache — on a skewed Read-Mixed workload.
//!
//! The paper notes FIDR's Read-Mixed gains are capped by "the inherent
//! CPU utilization overhead of the data SSD software stack for handling
//! read requests. We can also offload this NVMe software stack to FPGA,
//! but we left it as future work." This bench implements that future work
//! and the §8 hot-block cache, and measures what each buys.

use bytes::Bytes;
use fidr::core::{FidrConfig, FidrSystem};
use fidr::hwsim::{PlatformSpec, Projection};
use fidr::workload::{Request, Workload, WorkloadSpec};
use fidr_bench::{banner, ops};

fn run(cfg: FidrConfig, skew: f64, n: usize) -> FidrSystem {
    let spec = WorkloadSpec {
        read_skew: skew,
        ..WorkloadSpec::read_mixed(n)
    };
    let mut sys = FidrSystem::new(cfg);
    for req in Workload::new(spec) {
        match req {
            Request::Write { lba, data } => sys.write(lba, Bytes::from(data.to_vec())).unwrap(),
            Request::Read { lba } => {
                sys.read(lba).unwrap();
            }
        }
    }
    sys.flush().unwrap();
    sys
}

fn main() {
    banner(
        "Ablation",
        "read-path extensions on skewed Read-Mixed (80% reads hit a hot set)",
    );
    let platform = PlatformSpec::default();
    let n = ops();
    let base_cfg = FidrConfig::default();

    let configs = [
        ("FIDR as published", base_cfg.clone()),
        (
            "+ read NVMe offload (future work)",
            FidrConfig {
                read_stack_offload: true,
                ..base_cfg.clone()
            },
        ),
        (
            "+ hot-block read cache (sec. 8)",
            FidrConfig {
                read_stack_offload: true,
                hot_read_cache_chunks: 256,
                ..base_cfg
            },
        ),
    ];

    println!(
        "{:<36} {:>12} {:>14} {:>14}",
        "configuration", "cores@75", "SSD read B/B", "hot-cache hits"
    );
    for (name, cfg) in configs {
        let sys = run(cfg, 0.8, n);
        let ledger = sys.ledger();
        println!(
            "{:<36} {:>12.1} {:>14.3} {:>14}",
            name,
            Projection::cores_needed(ledger, &platform, platform.target_throughput),
            ledger.data_ssd_read_bytes as f64 / ledger.client_bytes() as f64,
            sys.hot_cache_stats().hits,
        );
    }
    println!("\noffloading the read NVMe stack removes the residual Read-Mixed CPU;");
    println!("the hot cache then also removes the SSD reads for the skewed hot set.");
}
