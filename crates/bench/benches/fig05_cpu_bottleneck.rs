//! Figure 5: the baseline's CPU bottleneck.
//!
//! (a) CPU cores needed across throughputs, projected from measured
//! cycles per client byte — paper headline: up to 67 cores at 75 GB/s,
//! 3× more than a 22-core socket.
//! (b) CPU utilization breakdown — paper headline: 85.2 % (write-only) /
//! 50.8 % (mixed) of cycles go to memory management and accelerator
//! scheduling; table-cache management 52.4 %, predictor 32.7 %.

use fidr::hwsim::{report, PlatformSpec, Projection};
use fidr::{run_workload, SystemVariant};
use fidr_bench::{banner, ops, profile_mixed, profile_run_config, profile_write_only};

fn main() {
    banner(
        "Figure 5a",
        "CPU cores needed by the baseline vs throughput",
    );
    let platform = PlatformSpec::default();
    let runs: Vec<_> = [profile_write_only(ops()), profile_mixed(ops())]
        .into_iter()
        .map(|spec| {
            let name = spec.name.clone();
            (
                name,
                run_workload(SystemVariant::Baseline, spec, profile_run_config()),
            )
        })
        .collect();

    println!(
        "{:>14} {:>24} {:>24}",
        "throughput",
        &runs[0].0[..20],
        &runs[1].0[..20]
    );
    for gbps in [5.0, 6.9, 25.0, 50.0, 75.0] {
        let a = Projection::cores_needed(&runs[0].1.ledger, &platform, gbps * 1e9);
        let b = Projection::cores_needed(&runs[1].1.ledger, &platform, gbps * 1e9);
        println!("{gbps:>9.1} GB/s {a:>18.1} cores {b:>18.1} cores");
    }
    println!("  (socket has {} cores)", platform.cores);

    banner("Figure 5b", "baseline CPU utilization breakdown");
    for (name, run) in &runs {
        println!("\nworkload: {name}");
        print!("{}", report::cpu_breakdown_table(&run.ledger));
    }
    println!("\npaper: up to 67 cores at 75 GB/s; management share 85.2% write-only");
    println!("       / 50.8% mixed; table cache mgmt 52.4%, predictor 32.7%.");
}
