//! Table 1: baseline memory-bandwidth breakdown by data path.
//!
//! Paper rows (Write-only / Mixed): NIC↔mem 23.6/27.7 %, unique
//! prediction 23.7/13.9 %, mem↔FPGAs 25.4/35.6 %, table cache 25.7/15.1 %,
//! mem↔data SSD 1.7/7.9 % — with the first three needing only KBs–MBs of
//! capacity and table caching needing 10–100s of GB.

use fidr::hwsim::MemPath;
use fidr::{run_workload, SystemVariant};
use fidr_bench::{banner, ops, profile_mixed, profile_run_config, profile_write_only};

fn main() {
    banner(
        "Table 1",
        "memory BW utilization and capacity class per baseline data path",
    );
    let write = run_workload(
        SystemVariant::Baseline,
        profile_write_only(ops()),
        profile_run_config(),
    );
    let mixed = run_workload(
        SystemVariant::Baseline,
        profile_mixed(ops()),
        profile_run_config(),
    );

    let capacity = |p: MemPath| match p {
        MemPath::NicBuffering => "KBs-MBs",
        MemPath::UniquePrediction => "MBs",
        MemPath::FpgaStaging => "MBs",
        MemPath::TableCache => "10-100s GB",
        MemPath::DataSsdStaging => "KBs-MBs",
    };
    let paper = |p: MemPath| match p {
        MemPath::NicBuffering => (23.6, 27.7),
        MemPath::UniquePrediction => (23.7, 13.9),
        MemPath::FpgaStaging => (25.4, 35.6),
        MemPath::TableCache => (25.7, 15.1),
        MemPath::DataSsdStaging => (1.7, 7.9),
    };

    println!(
        "{:<36} {:>12} {:>12} {:>16} {:>18}",
        "Data Path", "Write-only", "Mixed", "Memory capacity", "paper (W/M)"
    );
    for path in MemPath::ALL {
        let (pw, pm) = paper(path);
        println!(
            "{:<36} {:>11.1}% {:>11.1}% {:>16} {:>10.1}/{:>4.1}%",
            path.label(),
            write.ledger.mem_fraction(path) * 100.0,
            mixed.ledger.mem_fraction(path) * 100.0,
            capacity(path),
            pw,
            pm,
        );
    }
    let small = MemPath::ALL
        .iter()
        .filter(|p| !matches!(p, MemPath::TableCache))
        .map(|&p| write.ledger.mem_fraction(p))
        .sum::<f64>();
    println!(
        "\nlow-capacity paths use {:.1}% of write-only memory BW (paper: 74.4-85.1%)",
        small * 100.0
    );
}
