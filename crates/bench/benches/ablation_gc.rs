//! Ablation: garbage collection under overwrite churn.
//!
//! The paper's runs never reach steady-state overwrite churn, but an
//! append-only reduced store strands capacity in dead chunks until a
//! collector compacts containers. This bench overwrites a working set
//! repeatedly and shows footprint with and without GC, plus what the GC
//! datapath costs each architecture (FIDR compacts peer-to-peer; the
//! baseline bounces every survivor through host memory).

use bytes::Bytes;
use fidr::baseline::{BaselineConfig, BaselineSystem};
use fidr::chunk::Lba;
use fidr::compress::ContentGenerator;
use fidr::core::{FidrConfig, FidrSystem};
use fidr_bench::{banner, ops};

fn main() {
    banner("Ablation", "garbage collection under overwrite churn");
    let working_set = (ops() as u64 / 4).max(1000);
    let rounds = 4u64;
    let gen = ContentGenerator::new(0.5);

    // FIDR with GC after each overwrite round.
    let mut fidr = FidrSystem::new(FidrConfig {
        container_threshold: 1 << 20,
        ..FidrConfig::default()
    });
    let mut fidr_no_gc = FidrSystem::new(FidrConfig {
        container_threshold: 1 << 20,
        ..FidrConfig::default()
    });
    let mut baseline = BaselineSystem::new(BaselineConfig {
        container_threshold: 1 << 20,
        ..BaselineConfig::default()
    });

    println!(
        "{:>6} {:>16} {:>16} {:>16}",
        "round", "FIDR + GC", "FIDR no GC", "baseline + GC"
    );
    for round in 0..rounds {
        for i in 0..working_set {
            // Keep every 4th block stable so containers retain survivors
            // and compaction has real work to do.
            if round > 0 && i % 4 == 0 {
                continue;
            }
            let content = round * working_set + i;
            let data = Bytes::from(gen.chunk(content, 4096));
            fidr.write(Lba(i), data.clone()).unwrap();
            fidr_no_gc.write(Lba(i), data.clone()).unwrap();
            baseline.write(Lba(i), data).unwrap();
        }
        fidr.flush().unwrap();
        fidr_no_gc.flush().unwrap();
        baseline.flush().unwrap();
        let f = fidr.collect_garbage(0.3).unwrap();
        let b = baseline.collect_garbage(0.3).unwrap();
        println!(
            "{:>6} {:>13} KB {:>13} KB {:>13} KB   (GC moved {} + {} chunks)",
            round + 1,
            fidr.stored_bytes() / 1024,
            fidr_no_gc.stored_bytes() / 1024,
            baseline.stored_bytes() / 1024,
            f.moved_chunks,
            b.moved_chunks,
        );
    }

    // Every LBA still serves its newest content: the stable blocks keep
    // round 0's data, everything else has the last round's.
    let last = rounds - 1;
    for i in (0..working_set).step_by(97) {
        let newest_round = if i % 4 == 0 { 0 } else { last };
        let want = gen.chunk(newest_round * working_set + i, 4096);
        assert_eq!(fidr.read(Lba(i)).unwrap(), want, "FIDR LBA {i}");
        assert_eq!(baseline.read(Lba(i)).unwrap(), want, "baseline LBA {i}");
    }
    println!("\nread-back verified after {rounds} overwrite rounds + GC.");
    println!(
        "GC datapath cost: FIDR moved survivors over P2P links ({} B), the",
        fidr.ledger()
            .pcie_bytes(fidr::hwsim::PcieLink::DataSsdDecompressionP2p)
    );
    println!("baseline bounced every survivor through host DRAM.");
}
