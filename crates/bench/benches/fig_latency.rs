//! §7.6: request latency.
//!
//! Prints the stage-by-stage server-side latency of a batched 4-KB read
//! under both datapaths, and the write commit latency. Paper headline:
//! reads drop from 700 µs (baseline) to 490 µs (FIDR); write commit
//! latency matches a no-reduction system thanks to the battery-backed
//! NIC buffer.

use fidr::core::LatencyModel;
use fidr::ssd::SsdSpec;
use fidr_bench::banner;

fn print_model(name: &str, model: &LatencyModel) {
    println!("\n{name}:");
    for stage in &model.stages {
        println!(
            "  {:<44} {:>8.0} us",
            stage.name,
            stage.time.as_secs_f64() * 1e6
        );
    }
    println!(
        "  {:<44} {:>8.0} us",
        "TOTAL",
        model.total().as_secs_f64() * 1e6
    );
}

fn main() {
    banner("§7.6", "server-side request latency (4-KB read in a batch)");
    let ssd = SsdSpec::default();
    let baseline = LatencyModel::baseline_read(&ssd);
    let fidr = LatencyModel::fidr_read(&ssd);
    print_model(
        "baseline read (SSD -> host -> FPGA -> host -> NIC)",
        &baseline,
    );
    print_model("FIDR read (SSD -> FPGA -> NIC, P2P)", &fidr);
    println!(
        "\nread latency: {:.0} us -> {:.0} us ({:.0}% lower)   [paper: 700 -> 490 us, 30%]",
        baseline.total().as_secs_f64() * 1e6,
        fidr.total().as_secs_f64() * 1e6,
        (1.0 - fidr.total().as_secs_f64() / baseline.total().as_secs_f64()) * 100.0
    );
    println!(
        "write commit latency: {:.0} us (NIC battery-backed buffer ack; §7.6.1)",
        LatencyModel::write_commit().total().as_secs_f64() * 1e6
    );
}
