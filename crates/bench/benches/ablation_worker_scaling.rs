//! Worker-scaling ablation for the per-socket batch pipeline (PR 4,
//! reworked for the persistent worker pool + multi-lane hashing in PR 6).
//!
//! Drives pre-generated write-heavy traffic through `FidrSystem` with the
//! table cache sharded one way per worker, and reports two numbers per
//! worker count over the *measured* (steady-state) half of the run:
//!
//! * **wall GB/s** — real bytes hashed, deduplicated and compressed per
//!   second of host wall-clock time, the **median of three repeats**
//!   (each on a fresh system) with the min/max spread reported alongside.
//!   Workload generation is excluded (all chunk contents are generated up
//!   front) so only the write path is timed. With workers > 1 the batch
//!   pipeline runs on the persistent `fidr-pool` threads and hashing
//!   takes the multi-lane AVX2 SHA-256 kernel, so this number moves with
//!   worker count even on a single-CPU host (the lanes are
//!   instruction-level, not thread-level, parallelism); the printed
//!   `host_cpus` keeps thread-level expectations legible. This is the
//!   regression-gated number — see `docs/PERFORMANCE.md` and
//!   `scripts/check.sh`.
//! * **modelled GB/s** — the deterministic pipeline projection under
//!   [`TimeModel`]: stages the worker pool genuinely runs concurrently
//!   (lookup-stage host CPU — tree indexing, bucket content scans, LRU
//!   replacement, table-SSD NVMe submission — plus hash/compression
//!   engine time and per-shard table-SSD IO, which NVMe services at queue
//!   depth ≥ workers) divide by the worker count; everything else (device
//!   manager orchestration, LBA map, NIC ingest at line rate, data-SSD
//!   container seals, host-memory traffic) stays serial, Amdahl-style.
//!
//! The modelled projection is computed from ledger/stat deltas across the
//! measured window, so cold table-SSD compulsory misses from the warmup
//! half do not pollute it. Note the contrast with the `fidr.metrics.v1`
//! export, which is byte-identical for every worker count by design: the
//! export is *accounting* (work done), this is *elapsed time* (work
//! overlapped).

use bytes::Bytes;
use fidr::chunk::Lba;
use fidr::core::{CacheMode, FidrConfig, FidrSystem};
use fidr::hwsim::{CpuTask, Ledger, TimeModel};
use fidr::workload::{Request, Workload, WorkloadSpec};
use fidr_bench::banner;
use std::time::Instant;

/// CPU tasks the sharded lookup stage runs on shard-owner workers.
const LOOKUP_TASKS: [CpuTask; 4] = [
    CpuTask::TreeIndexing,
    CpuTask::TableContentScan,
    CpuTask::CacheReplacement,
    CpuTask::TableSsdStack,
];

/// Snapshot of everything the projection needs, taken between phases.
struct Mark {
    ledger: Ledger,
    unique_chunks: u64,
    containers_sealed: u64,
}

impl Mark {
    fn of(sys: &FidrSystem) -> Mark {
        let r = sys.stats();
        Mark {
            ledger: sys.ledger().clone(),
            unique_chunks: r.unique_chunks,
            containers_sealed: r.containers_sealed,
        }
    }
}

/// Modelled time of the window between two marks, split into the
/// worker-parallel and serial parts described in the module docs.
struct Window {
    parallel_ns: u64,
    serial_ns: u64,
    client_bytes: u64,
}

impl Window {
    fn between(before: &Mark, after: &Mark, time: &TimeModel) -> Window {
        let l0 = &before.ledger;
        let l1 = &after.ledger;
        let client_bytes = l1.client_bytes() - l0.client_bytes();
        let lookup_cycles: u64 = LOOKUP_TASKS
            .iter()
            .map(|t| l1.cpu_cycles(*t) - l0.cpu_cycles(*t))
            .sum();
        let table_bytes = (l1.table_ssd_read_bytes + l1.table_ssd_write_bytes)
            - (l0.table_ssd_read_bytes + l0.table_ssd_write_bytes);
        let table_ios = table_bytes.div_ceil(fidr::tables::BUCKET_BYTES as u64);
        let data_bytes = (l1.data_ssd_read_bytes + l1.data_ssd_write_bytes)
            - (l0.data_ssd_read_bytes + l0.data_ssd_write_bytes);
        let host_ns = time.host_ns(l1) - time.host_ns(l0);
        let lookup_ns = time.cycles_ns(lookup_cycles);
        let unique_bytes = (after.unique_chunks - before.unique_chunks) * 4096;
        let parallel_ns = lookup_ns
            + time.hash_ns(client_bytes, 1)
            + time.compress_ns(unique_bytes)
            + time.table_ssd_ns(table_bytes, table_ios);
        let serial_ns = (host_ns - lookup_ns.min(host_ns))
            + time.nic_ns(client_bytes)
            + time.data_ssd_ns(
                data_bytes,
                after.containers_sealed - before.containers_sealed,
            );
        Window {
            parallel_ns,
            serial_ns,
            client_bytes,
        }
    }

    /// Amdahl projection: the parallel part divides across `workers`.
    fn projected_gbps(&self, workers: usize) -> f64 {
        let ns = self.serial_ns + self.parallel_ns / workers.max(1) as u64;
        self.client_bytes as f64 / (ns as f64 / 1e9) / 1e9
    }
}

fn main() {
    banner(
        "Ablation: worker scaling",
        "per-socket batch pipeline, write-heavy, cache sharded per worker",
    );
    let ops = fidr_bench::ops();
    let writes: Vec<(Lba, Bytes)> = Workload::new(WorkloadSpec::write_h(ops))
        .filter_map(|req| match req {
            Request::Write { lba, data } => Some((lba, data)),
            Request::Read { .. } => None,
        })
        .collect();
    let (warm, measured) = writes.split_at(writes.len() / 2);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let time = TimeModel::default();

    println!(
        "{} write ops ({} warmup + {} measured), host_cpus={host_cpus}",
        writes.len(),
        warm.len(),
        measured.len()
    );
    println!(
        "{:>7}  {:>12}  {:>21}  {:>15}  {:>17}",
        "workers", "wall GB/s", "(min .. max)", "modelled GB/s", "modelled speedup"
    );

    /// Timed wall repeats per worker count; the median is the reported
    /// number. One extra *warmup repeat* runs first and is discarded —
    /// it pays the one-time costs (page faults on the pre-generated
    /// write buffers, allocator growth, branch-predictor training) that
    /// would otherwise depress whichever timed repeat ran first. Its
    /// value is still recorded in the machine-readable line
    /// (`wall_gbps_warmup=`) so a snapshot can show how much the warmup
    /// absorbed.
    const REPEATS: usize = 3;

    let mut wall = Vec::new();
    let mut wall_spread = Vec::new();
    let mut wall_warmup = Vec::new();
    let mut modelled = Vec::new();
    for &workers in &[1usize, 2, 4] {
        let mut samples = Vec::with_capacity(REPEATS + 1);
        let mut modelled_gbps = 0.0;
        for _ in 0..REPEATS + 1 {
            // A fresh system per repeat: each sample sees the same cold
            // caches, the same warmup, the same persistent pool spin-up.
            let mut sys = FidrSystem::new(FidrConfig {
                cache_lines: 4096,
                table_buckets: 1 << 17,
                container_threshold: 4 << 20,
                hash_batch: 256,
                cache_mode: CacheMode::HwEngine { update_slots: 4 },
                hwtree_levels: Some(14),
                workers,
                cache_shards: workers,
                ..FidrConfig::default()
            });
            sys.write_batch(warm.iter().cloned()).expect("warmup write");
            let mark = Mark::of(&sys);
            let t0 = Instant::now();
            sys.write_batch(measured.iter().cloned())
                .expect("measured write");
            let elapsed = t0.elapsed();
            sys.flush().expect("flush");
            let window = Window::between(&mark, &Mark::of(&sys), &time);
            samples.push(window.client_bytes as f64 / elapsed.as_secs_f64() / 1e9);
            // Deterministic: identical across repeats, keep the last.
            modelled_gbps = window.projected_gbps(workers);
        }
        // The first sample is the warmup: record it, then drop it from
        // the median-of-three.
        let warmup = samples.remove(0);
        samples.sort_by(|a, b| a.total_cmp(b));
        let (min, median, max) = (samples[0], samples[REPEATS / 2], samples[REPEATS - 1]);
        println!(
            "{workers:>7}  {median:>12.3}  ({min:>8.3} .. {max:>8.3})  {modelled_gbps:>15.3}  \
             {:>16.2}x",
            modelled_gbps / modelled.first().copied().unwrap_or(modelled_gbps)
        );
        wall.push(median);
        wall_spread.push((min, max));
        wall_warmup.push(warmup);
        modelled.push(modelled_gbps);
    }

    // Machine-readable lines for scripts/bench_snapshot.sh.
    for (i, &workers) in [1usize, 2, 4].iter().enumerate() {
        println!(
            "worker-scaling: workers={workers} wall_gbps={:.4} wall_gbps_min={:.4} \
             wall_gbps_max={:.4} wall_gbps_warmup={:.4} modelled_gbps={:.4}",
            wall[i], wall_spread[i].0, wall_spread[i].1, wall_warmup[i], modelled[i]
        );
    }
    println!(
        "worker-scaling: wall_speedup_4x={:.3} modelled_speedup_4x={:.3} host_cpus={host_cpus}",
        wall[2] / wall[0],
        modelled[2] / modelled[0]
    );
}
