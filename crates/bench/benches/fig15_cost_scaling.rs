//! Figure 15: storage cost vs throughput at two capacities.
//!
//! Sweeps 25/50/75 GB/s at 100 TB and 500 TB effective capacity and
//! reports cost per effective GB (lower is better) for no-reduction, the
//! baseline (forced into partial reduction above its ~25 GB/s per-socket
//! ceiling), and FIDR. Paper headline: FIDR saving moves only from 67 %
//! (25 GB/s) to 58 % (75 GB/s) at 500 TB; the baseline's forced partial
//! reduction blows its cost up at high throughput.

use fidr::cost::{CostModel, Scenario};
use fidr_bench::banner;

/// Baseline per-socket throughput ceiling measured in Figure 14's runs.
const BASELINE_CAP_GBPS: f64 = 25.0;
/// Cores per GB/s measured on the two systems (Figure 12's runs).
const BASELINE_CORES_PER_GBPS: f64 = 0.9;
const FIDR_CORES_PER_GBPS: f64 = 0.29;

fn main() {
    banner(
        "Figure 15",
        "cost per effective GB vs throughput (lower is better)",
    );
    let model = CostModel::default();

    for capacity_tb in [100.0, 500.0] {
        let effective_gb = capacity_tb * 1000.0;
        println!("\ntarget capacity: {capacity_tb:.0} TB effective");
        println!(
            "{:>12} {:>16} {:>18} {:>14} {:>14}",
            "throughput", "no reduction", "baseline(partial)", "FIDR", "FIDR saving"
        );
        for gbps in [25.0, 50.0, 75.0] {
            let fidr = model.fidr(Scenario {
                effective_gb,
                throughput_gbps: gbps,
                reduction_factor: 4.0,
                reduced_fraction: 1.0,
                cores: FIDR_CORES_PER_GBPS * gbps,
                cache_dram_gb: 100.0,
            });
            // Above its ceiling, the baseline reduces only what it can
            // keep up with; the rest lands unreduced on flash.
            let reduced_fraction = (BASELINE_CAP_GBPS / gbps).min(1.0);
            let baseline = model.baseline(Scenario {
                effective_gb,
                throughput_gbps: gbps,
                reduction_factor: 4.0,
                reduced_fraction,
                cores: (BASELINE_CORES_PER_GBPS * gbps * reduced_fraction).min(22.0),
                cache_dram_gb: 100.0,
            });
            let none = model.no_reduction(effective_gb);
            println!(
                "{:>7.0} GB/s {:>13.3} $/GB {:>15.3} $/GB {:>11.3} $/GB {:>13.1}%",
                gbps,
                none.total() / effective_gb,
                baseline.total() / effective_gb,
                fidr.total() / effective_gb,
                model.saving(&fidr, effective_gb) * 100.0,
            );
        }
    }
    println!("\npaper: FIDR saving 67% at 25 GB/s -> 58% at 75 GB/s (500 TB);");
    println!("the baseline matches FIDR at low throughput but must do partial");
    println!("reduction beyond ~25 GB/s per socket, inflating its cost.");
}
