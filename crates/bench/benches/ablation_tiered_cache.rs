//! Tiered-table-cache ablation (PR 7): flat inline dedup vs the
//! temperature-tiered cache with deferred cold-stream dedup, on the
//! mixed-locality multi-stream workload, at *equal DRAM capacity*.
//!
//! The setting is HPDedup's: two hot streams (tight reuse windows that
//! reward DRAM residency) interleave with two cold streams whose
//! duplicates reference uniformly old content. Under the flat policy
//! every write does an inline table-cache lookup, so the cold streams'
//! compulsory misses continuously evict the hot streams' lines — the
//! DRAM tier is spent on fingerprints that will not be referenced again
//! within any affordable window. The tiered policy classifies streams by
//! a per-stream reuse-distance sketch, keeps cold-stream fingerprints
//! out of DRAM entirely (they take the modelled table-SSD slow tier via
//! the background scrubber's read-modify-write groups), and lets the hot
//! working sets stay resident.
//!
//! Both runs use the same cache lines, the same table, the same request
//! sequence; the only difference is the admission policy. Reported per
//! mode: deterministic modelled GB/s (same [`TimeModel`] aggregate as
//! `RunReport::modelled_ns`), the end-state dedup ratio (deferred dedup
//! must converge to the same reduction), and the DRAM hit rate. The
//! `tiered-cache:` lines are machine-readable for
//! `scripts/bench_snapshot.sh` and the `scripts/check.sh` gate.

use fidr::cache::TieredPolicyConfig;
use fidr::core::TieredDedupConfig;
use fidr::hwsim::TimeModel;
use fidr::workload::{MultiStreamWorkload, Request};
use fidr::{run_requests, RunConfig, RunReport, SystemVariant};
use fidr_bench::banner;

/// DRAM lines both modes get — deliberately smaller than the combined
/// hot+cold touched-bucket footprint, so the admission policy (not the
/// capacity) decides who stays resident.
const CACHE_LINES: usize = 1024;

fn run(requests: &[Request], tiered: Option<TieredDedupConfig>) -> RunReport {
    run_requests(
        SystemVariant::FidrFull,
        "mixed-locality",
        requests.iter().cloned(),
        RunConfig {
            cache_lines: CACHE_LINES,
            tiered,
            ..RunConfig::default()
        },
    )
}

fn modelled_gbps(r: &RunReport, time: &TimeModel) -> f64 {
    r.ledger.client_bytes() as f64 / r.modelled_ns(time) as f64
}

fn main() {
    banner(
        "Ablation: tiered table cache",
        "flat vs temperature-tiered admission, mixed-locality streams, equal DRAM",
    );
    let ops = fidr_bench::ops();
    let requests: Vec<Request> = MultiStreamWorkload::mixed_locality(ops).collect();
    let time = TimeModel::default();

    // The classifier thresholds match the measured steady-state
    // separation of `mixed_locality` (hot ≈ 0.8, cold ≈ 0.1 windowed
    // reuse — see the fidr-workload tests): 0.3 splits them with margin
    // on both sides.
    let tiered_cfg = TieredDedupConfig {
        policy: TieredPolicyConfig {
            window: 512,
            hot_threshold: 0.3,
            min_observations: 64,
            epoch: 2048,
        },
        stream_shift: 22,
        scrub_batch: 512,
    };

    let flat = run(&requests, None);
    let tiered = run(&requests, Some(tiered_cfg));

    println!(
        "{ops} requests over 4 streams (2 hot, 2 cold), {CACHE_LINES} DRAM cache lines each\n"
    );
    println!(
        "{:<8} {:>15} {:>12} {:>12} {:>12} {:>12}",
        "mode", "modelled GB/s", "dedup", "DRAM hit", "deferred", "scrub dups"
    );
    for (name, r) in [("flat", &flat), ("tiered", &tiered)] {
        let count = |key: &str| r.metrics.counter(key).unwrap_or(0);
        println!(
            "{name:<8} {:>15.3} {:>11.1}% {:>11.1}% {:>12} {:>12}",
            modelled_gbps(r, &time),
            r.reduction.dedup_ratio() * 100.0,
            r.cache.hit_rate() * 100.0,
            count("dedup.deferred.count"),
            count("scrub.dups.count"),
        );
    }
    let flat_gbps = modelled_gbps(&flat, &time);
    let tiered_gbps = modelled_gbps(&tiered, &time);
    println!(
        "\ntiered/flat: {:.3}x modelled throughput at equal DRAM \
         (hot-stream residency is what the flat policy gives away)",
        tiered_gbps / flat_gbps
    );

    // Machine-readable lines for scripts/bench_snapshot.sh and the
    // scripts/check.sh ablation gate.
    for (name, r) in [("flat", &flat), ("tiered", &tiered)] {
        let count = |key: &str| r.metrics.counter(key).unwrap_or(0);
        println!(
            "tiered-cache: mode={name} modelled_gbps={:.4} dedup_ratio={:.4} cache_hit={:.4} \
             deferred={} scrub_dups={} cold_fetches={}",
            modelled_gbps(r, &time),
            r.reduction.dedup_ratio(),
            r.cache.hit_rate(),
            count("dedup.deferred.count"),
            count("scrub.dups.count"),
            count("cache.tier.cold_fetches.count"),
        );
    }
    println!(
        "tiered-cache: speedup={:.4} dram_lines={CACHE_LINES}",
        tiered_gbps / flat_gbps
    );
}
