//! Property tests: the B+ tree against a `BTreeMap` model, the HW tree's
//! functional equivalence to the software tree, and table-cache coherence
//! with the table SSD.

use fidr_cache::{BPlusTree, HwTree, HwTreeConfig, PipelinedTree, TableCache};
use fidr_chunk::Pbn;
use fidr_hash::Fingerprint;
use fidr_ssd::{QueueLocation, TableSsd};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u32),
    Remove(u64),
    Search(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Narrow key space (0..64) to provoke collisions, replacements and
    // underflow rebalancing.
    prop_oneof![
        (0u64..64, any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..64).prop_map(Op::Remove),
        (0u64..64).prop_map(Op::Search),
    ]
}

proptest! {
    /// The B+ tree behaves exactly like BTreeMap and keeps its invariants.
    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut tree = BPlusTree::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(&k));
                }
                Op::Search(k) => {
                    prop_assert_eq!(tree.search(k), model.get(&k).copied());
                }
            }
            prop_assert_eq!(tree.len(), model.len());
            tree.check_invariants();
        }
    }

    /// Wide-key workloads exercise deep trees.
    #[test]
    fn btree_wide_keys(keys in proptest::collection::vec(any::<u64>(), 1..600)) {
        let mut tree = BPlusTree::new();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            tree.insert(*k, i as u32);
            model.insert(*k, i as u32);
        }
        tree.check_invariants();
        for k in &keys {
            prop_assert_eq!(tree.search(*k), model.get(k).copied());
        }
        for k in keys.iter().step_by(3) {
            prop_assert_eq!(tree.remove(*k), model.remove(k));
            tree.check_invariants();
        }
        prop_assert_eq!(tree.len(), model.len());
    }

    /// The top-down pipelined tree behaves exactly like BTreeMap and
    /// keeps its invariants under any op sequence.
    #[test]
    fn pipelined_tree_matches_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut tree = PipelinedTree::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(&k));
                }
                Op::Search(k) => {
                    prop_assert_eq!(tree.search(k), model.get(&k).copied());
                }
            }
            prop_assert_eq!(tree.len(), model.len());
            tree.check_invariants();
        }
    }

    /// Wide keys drive the pipelined tree deep.
    #[test]
    fn pipelined_tree_wide_keys(keys in proptest::collection::vec(any::<u64>(), 1..600)) {
        let mut tree = PipelinedTree::new();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            tree.insert(*k, i as u32);
            model.insert(*k, i as u32);
        }
        tree.check_invariants();
        for k in &keys {
            prop_assert_eq!(tree.search(*k), model.get(k).copied());
        }
        for k in keys.iter().step_by(2) {
            prop_assert_eq!(tree.remove(*k), model.remove(k));
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len());
    }

    /// The HW tree gives identical answers to the software tree for any
    /// op sequence (speculation must never change results).
    #[test]
    fn hwtree_functionally_equals_btree(ops in proptest::collection::vec(op_strategy(), 1..300),
                                        slots in 1usize..5) {
        let mut hw = HwTree::new(HwTreeConfig { update_slots: slots, ..HwTreeConfig::default() });
        let mut sw = BPlusTree::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    hw.insert(k, v);
                    sw.insert(k, v);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(hw.remove(k), sw.remove(k));
                }
                Op::Search(k) => {
                    prop_assert_eq!(hw.search(k), sw.search(k));
                }
            }
        }
    }

    /// Whatever access pattern hits the cache, flush_all leaves the table
    /// SSD holding every insert ever made.
    #[test]
    fn cache_writeback_preserves_inserts(buckets in proptest::collection::vec(0u64..64, 1..150),
                                         capacity in 2usize..12) {
        let mut ssd = TableSsd::new(64, QueueLocation::HostMemory);
        let mut cache = TableCache::new(capacity, BPlusTree::new());
        let mut inserted: Vec<(u64, Fingerprint, Pbn)> = Vec::new();
        for (i, &b) in buckets.iter().enumerate() {
            let access = cache.access(b, &mut ssd).unwrap();
            let fp = Fingerprint::of(&(i as u64).to_le_bytes());
            let pbn = Pbn(i as u64);
            if cache.bucket(access.line).lookup(&fp).is_none()
                && !cache.bucket(access.line).is_full()
            {
                cache.bucket_mut(access.line).insert(fp, pbn).unwrap();
                inserted.push((b, fp, pbn));
            }
        }
        cache.flush_all(&mut ssd).unwrap();
        for (bucket, fp, pbn) in inserted {
            prop_assert_eq!(ssd.store().bucket(bucket).lookup(&fp), Some(pbn));
        }
    }

    /// Hit + miss always equals accesses, and misses equal SSD fetches.
    #[test]
    fn cache_stats_are_consistent(buckets in proptest::collection::vec(0u64..32, 1..200)) {
        let mut ssd = TableSsd::new(32, QueueLocation::HostMemory);
        let mut cache = TableCache::new(8, BPlusTree::new());
        for &b in &buckets {
            cache.access(b, &mut ssd).unwrap();
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.misses, ssd.stats().read_ios);
        prop_assert_eq!(s.dirty_flushes, ssd.stats().write_ios);
    }
}
