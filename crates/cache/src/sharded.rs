//! Hash-prefix-sharded table cache.
//!
//! The Cache HW-Engine services concurrent index lookups (§5.5); the
//! multi-worker pipeline mirrors that by splitting the table cache into N
//! independent [`TableCache`] shards, each with its own index engine
//! instance, LRU and stats. A bucket's shard is chosen from a SplitMix64
//! mix of its index (a hash prefix), so shards stay balanced and the
//! mapping is deterministic. Shard lines are exposed through one global
//! line namespace (`shard * shard_capacity + local_line`) so callers keep
//! treating line numbers as opaque handles.
//!
//! With one shard the behavior is bit-for-bit the unsharded cache: the
//! line encoding is the identity and every access lands in shard 0.

use crate::hwtree::{HwTree, HwTreeStats};
use crate::table_cache::{Access, CacheIndex, CacheStats, ScrubGroup, TableCache};
use fidr_chunk::Pbn;
use fidr_hash::{splitmix64, Fingerprint};
use fidr_metrics::{Histogram, MetricsSnapshot};
use fidr_ssd::{TableSsd, TableSsdError};
use fidr_tables::Bucket;

/// N independent [`TableCache`] shards behind one cache interface.
///
/// # Examples
///
/// ```
/// use fidr_cache::{BPlusTree, ShardedTableCache};
/// use fidr_ssd::{QueueLocation, TableSsd};
///
/// let mut ssd = TableSsd::new(1024, QueueLocation::HostMemory);
/// let mut cache = ShardedTableCache::new(4, 64, |_| BPlusTree::new());
/// let first = cache.access(7, &mut ssd)?;
/// assert!(!first.hit);
/// assert!(cache.access(7, &mut ssd)?.hit);
/// # Ok::<(), fidr_ssd::TableSsdError>(())
/// ```
#[derive(Debug)]
pub struct ShardedTableCache<I> {
    shards: Vec<TableCache<I>>,
    shard_capacity: usize,
}

impl<I: CacheIndex> ShardedTableCache<I> {
    /// Creates `shards` shards of `capacity / shards` lines each (at
    /// least one line per shard), building each shard's index with
    /// `mk_index(shard_number)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    pub fn new(shards: usize, capacity: usize, mut mk_index: impl FnMut(usize) -> I) -> Self {
        assert!(shards > 0, "need at least one cache shard");
        assert!(capacity > 0, "cache needs at least one line");
        let shard_capacity = (capacity / shards).max(1);
        ShardedTableCache {
            shards: (0..shards)
                .map(|s| TableCache::new(shard_capacity, mk_index(s)))
                .collect(),
            shard_capacity,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lines per shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Total lines across all shards.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// The shard owning `bucket`: a multiply-shift of the bucket index's
    /// SplitMix64 hash prefix. Deterministic and balanced.
    pub fn shard_of(&self, bucket: u64) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let prefix = splitmix64(bucket) >> 32;
        ((prefix * self.shards.len() as u64) >> 32) as usize
    }

    /// Encodes a shard-local line into the global line namespace.
    pub fn global_line(&self, shard: usize, local: u32) -> u32 {
        (shard * self.shard_capacity) as u32 + local
    }

    fn locate(&self, line: u32) -> (usize, u32) {
        let shard = line as usize / self.shard_capacity;
        (shard, line % self.shard_capacity as u32)
    }

    /// Borrow of one shard (e.g. to read its index stats).
    pub fn shard(&self, shard: usize) -> &TableCache<I> {
        &self.shards[shard]
    }

    /// All shards, for read-only aggregation.
    pub fn shards(&self) -> &[TableCache<I>] {
        &self.shards
    }

    /// All shards mutably — the parallel lookup path hands disjoint
    /// shards to different workers.
    pub fn shards_mut(&mut self) -> &mut [TableCache<I>] {
        &mut self.shards
    }

    /// Ensures `bucket` is cached in its shard and returns the access
    /// with a global line number.
    ///
    /// # Errors
    ///
    /// Propagates table-SSD IO failures from the owning shard.
    pub fn access(&mut self, bucket: u64, ssd: &mut TableSsd) -> Result<Access, TableSsdError> {
        let shard = self.shard_of(bucket);
        let access = self.shards[shard].access(bucket, ssd)?;
        Ok(Access {
            line: self.global_line(shard, access.line),
            ..access
        })
    }

    /// Read-only view of a cached bucket by global line.
    ///
    /// # Panics
    ///
    /// Panics if the line does not currently hold a bucket.
    pub fn bucket(&self, line: u32) -> &Bucket {
        let (shard, local) = self.locate(line);
        self.shards[shard].bucket(local)
    }

    /// Mutable view of a cached bucket by global line; marks it dirty.
    ///
    /// # Panics
    ///
    /// Panics if the line does not currently hold a bucket.
    pub fn bucket_mut(&mut self, line: u32) -> &mut Bucket {
        let (shard, local) = self.locate(line);
        self.shards[shard].bucket_mut(local)
    }

    /// Slow-tier batched upsert against the shard owning `bucket` — see
    /// [`TableCache::scrub_group`]. Cold-stream entries route through here
    /// so they can never evict (or even refresh) the DRAM tier's resident
    /// hot-stream lines.
    ///
    /// # Errors
    ///
    /// Propagates table-SSD IO failures from the owning shard.
    pub fn scrub_group(
        &mut self,
        bucket: u64,
        entries: &[(Fingerprint, Pbn)],
        ssd: &mut TableSsd,
    ) -> Result<ScrubGroup, TableSsdError> {
        let shard = self.shard_of(bucket);
        self.shards[shard].scrub_group(bucket, entries, ssd)
    }

    /// Writes every dirty line of every shard back to the table SSD, in
    /// shard order.
    ///
    /// # Errors
    ///
    /// Stops at the first failed bucket write; unflushed lines stay
    /// dirty for a later retry.
    pub fn flush_all(&mut self, ssd: &mut TableSsd) -> Result<(), TableSsdError> {
        for shard in &mut self.shards {
            shard.flush_all(ssd)?;
        }
        Ok(())
    }

    /// Counters merged across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(shard.stats());
        }
        total
    }

    /// Exports the merged `cache.*` counters and lookup-latency histogram
    /// and, when more than one shard runs, per-shard hit/miss counters
    /// under `cache.shard<N>.*` (see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, out: &mut MetricsSnapshot) {
        let stats = self.stats();
        out.set_counter("cache.accesses.count", stats.accesses);
        out.set_counter("cache.hits.count", stats.hits);
        out.set_counter("cache.misses.count", stats.misses);
        out.set_counter("cache.evictions.count", stats.evictions);
        out.set_counter("cache.dirty_flushes.count", stats.dirty_flushes);
        out.set_gauge("cache.hit.ratio", stats.hit_rate());
        let mut lookup_ns = Histogram::new();
        for shard in &self.shards {
            lookup_ns.merge(shard.access_histogram());
        }
        out.set_wall_clock_histogram("cache.lookup.ns", &lookup_ns);
        if self.shards.len() > 1 {
            out.set_counter("cache.shards.count", self.shards.len() as u64);
            for (i, shard) in self.shards.iter().enumerate() {
                let s = shard.stats();
                out.set_counter(&format!("cache.shard{i}.accesses.count"), s.accesses);
                out.set_counter(&format!("cache.shard{i}.hits.count"), s.hits);
                out.set_counter(&format!("cache.shard{i}.misses.count"), s.misses);
            }
        }
    }
}

impl ShardedTableCache<HwTree> {
    /// HW-tree counters merged across shard engines.
    pub fn hwtree_stats(&self) -> HwTreeStats {
        let mut total = HwTreeStats::default();
        for shard in &self.shards {
            total.merge(shard.index().stats());
        }
        total
    }

    /// Engine busy time for the run: shard engines run concurrently, so
    /// the elapsed time is the slowest shard's, not the sum.
    pub fn hwtree_elapsed_seconds(&self, fpga_dram_bw: f64) -> f64 {
        self.shards
            .iter()
            .map(|s| s.index().elapsed_seconds(fpga_dram_bw))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btree::BPlusTree;
    use crate::table_cache::ScrubResult;
    use fidr_chunk::Pbn;
    use fidr_hash::Fingerprint;
    use fidr_ssd::QueueLocation;

    fn ssd(buckets: u64) -> TableSsd {
        TableSsd::new(buckets, QueueLocation::HostMemory)
    }

    #[test]
    fn single_shard_matches_unsharded_cache() {
        let mut s1 = ssd(256);
        let mut s2 = ssd(256);
        let mut flat = TableCache::new(8, BPlusTree::new());
        let mut sharded = ShardedTableCache::new(1, 8, |_| BPlusTree::new());
        for bucket in [3u64, 9, 3, 40, 77, 9, 3, 101, 40, 200, 3] {
            let a = flat.access(bucket, &mut s1).unwrap();
            let b = sharded.access(bucket, &mut s2).unwrap();
            assert_eq!(a, b, "bucket {bucket}");
        }
        assert_eq!(flat.stats(), sharded.stats());
    }

    #[test]
    fn shards_partition_buckets_deterministically() {
        let cache = ShardedTableCache::new(4, 64, |_| BPlusTree::new());
        let mut seen = [0usize; 4];
        for bucket in 0..1024u64 {
            let shard = cache.shard_of(bucket);
            assert_eq!(shard, cache.shard_of(bucket), "stable mapping");
            seen[shard] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 128, "shard {i} underloaded: {count}/1024");
        }
    }

    #[test]
    fn global_lines_round_trip_to_the_owning_shard() {
        let mut s = ssd(1024);
        let mut cache = ShardedTableCache::new(4, 16, |_| BPlusTree::new());
        let fp = Fingerprint::of(b"entry");
        let mut lines = Vec::new();
        for bucket in 0..32u64 {
            let a = cache.access(bucket, &mut s).unwrap();
            cache.bucket_mut(a.line).insert(fp, Pbn(bucket)).unwrap();
            lines.push((bucket, a.line));
        }
        for (bucket, line) in lines {
            // Lines still resident must resolve to the right content.
            if cache.access(bucket, &mut s).unwrap().hit {
                assert_eq!(cache.bucket(line).lookup(&fp), Some(Pbn(bucket)));
            }
        }
    }

    #[test]
    fn flush_all_covers_every_shard() {
        let mut s = ssd(1024);
        let mut cache = ShardedTableCache::new(4, 16, |_| BPlusTree::new());
        let fp = Fingerprint::of(b"dirty");
        for bucket in 0..16u64 {
            let a = cache.access(bucket, &mut s).unwrap();
            cache.bucket_mut(a.line).insert(fp, Pbn(bucket)).unwrap();
        }
        cache.flush_all(&mut s).unwrap();
        for bucket in 0..16u64 {
            assert_eq!(s.store().bucket(bucket).lookup(&fp), Some(Pbn(bucket)));
        }
    }

    #[test]
    fn cold_burst_cannot_evict_hot_resident_entries() {
        let mut s = ssd(4096);
        // 4 shards x 4 lines: a tiny DRAM tier that a cold scan would
        // flatten in the flat-admission world.
        let mut cache = ShardedTableCache::new(4, 16, |_| BPlusTree::new());
        let hot_fp = Fingerprint::of(b"hot entry");
        let hot_buckets: Vec<u64> = (0..8u64).collect();
        for &b in &hot_buckets {
            let a = cache.access(b, &mut s).unwrap();
            cache.bucket_mut(a.line).insert(hot_fp, Pbn(b)).unwrap();
        }
        let before = cache.stats();
        // A cold-stream burst 64x the DRAM capacity, all through the slow
        // tier.
        for b in 1000..2024u64 {
            let fp = Fingerprint::of(&b.to_le_bytes());
            let g = cache.scrub_group(b, &[(fp, Pbn(b))], &mut s).unwrap();
            assert!(!g.resident, "cold bucket {b} must not be resident");
            assert!(g.wrote_back);
            assert_eq!(g.results, vec![ScrubResult::Inserted]);
        }
        let after = cache.stats();
        // The burst moved no cache counters and evicted nothing...
        assert_eq!(before, after, "slow tier leaked into cache counters");
        assert_eq!(after.evictions, 0);
        // ...and every hot line is still resident with its entry intact.
        for &b in &hot_buckets {
            let a = cache.access(b, &mut s).unwrap();
            assert!(a.hit, "hot bucket {b} was evicted by the cold burst");
            assert_eq!(cache.bucket(a.line).lookup(&hot_fp), Some(Pbn(b)));
        }
        // The cold entries still landed durably on the table SSD.
        for b in 1000..2024u64 {
            let fp = Fingerprint::of(&b.to_le_bytes());
            assert_eq!(s.store().bucket(b).lookup(&fp), Some(Pbn(b)));
        }
    }

    #[test]
    fn scrub_group_uses_resident_lines_in_place() {
        let mut s = ssd(1024);
        let mut cache = ShardedTableCache::new(2, 8, |_| BPlusTree::new());
        let a = cache.access(5, &mut s).unwrap();
        let canonical = Fingerprint::of(b"canonical");
        cache.bucket_mut(a.line).insert(canonical, Pbn(1)).unwrap();
        let fresh = Fingerprint::of(b"fresh");
        let g = cache
            .scrub_group(5, &[(canonical, Pbn(99)), (fresh, Pbn(2))], &mut s)
            .unwrap();
        assert!(g.resident);
        assert!(!g.wrote_back, "resident groups dirty the line instead");
        assert_eq!(
            g.results,
            vec![ScrubResult::Existing(Pbn(1)), ScrubResult::Inserted]
        );
        // The in-place insert is dirty, not yet persisted; flush_all
        // carries it to the SSD.
        assert_eq!(s.store().bucket(5).lookup(&fresh), None);
        cache.flush_all(&mut s).unwrap();
        assert_eq!(s.store().bucket(5).lookup(&fresh), Some(Pbn(2)));
        assert_eq!(s.store().bucket(5).lookup(&canonical), Some(Pbn(1)));
    }

    #[test]
    fn scrub_group_is_idempotent_for_retries() {
        let mut s = ssd(256);
        let mut cache = ShardedTableCache::new(1, 4, |_| BPlusTree::new());
        let fp = Fingerprint::of(b"retry me");
        let first = cache.scrub_group(9, &[(fp, Pbn(7))], &mut s).unwrap();
        assert_eq!(first.results, vec![ScrubResult::Inserted]);
        // A retry of the same entry reports the already-applied mapping.
        let second = cache.scrub_group(9, &[(fp, Pbn(7))], &mut s).unwrap();
        assert_eq!(second.results, vec![ScrubResult::Existing(Pbn(7))]);
        assert!(!second.wrote_back, "no-op retry must not rewrite the SSD");
    }

    #[test]
    fn hwtree_stats_merge_across_shards() {
        let mut s = TableSsd::new(256, QueueLocation::CacheEngine);
        let mut cache = ShardedTableCache::new(2, 8, |_| HwTree::new(Default::default()));
        for bucket in 0..64u64 {
            cache.access(bucket, &mut s).unwrap();
        }
        let merged = cache.hwtree_stats();
        let by_hand: u64 = cache
            .shards()
            .iter()
            .map(|c| c.index().stats().searches)
            .sum();
        assert_eq!(merged.searches, by_hand);
        assert!(merged.searches >= 64);
        assert!(cache.hwtree_elapsed_seconds(100e9) > 0.0);
    }
}
