//! The FIDR Cache HW-Engine's pipelined tree index (paper §5.5, §6.3).
//!
//! The engine indexes (table-bucket index → cache-line) pairs in an
//! FPGA-resident balanced tree derived from the pipelined dynamic search
//! tree of Yang & Prasanna [48], with FIDR's two modifications: 16-key leaf
//! nodes (so all non-leaf levels fit in on-chip SRAM and only the leaf
//! stage lives in FPGA-board DRAM) and *speculative concurrent updates*
//! with crash/replay (Algorithms 1 and 2, §5.5.1).
//!
//! Functionally the index is exact (it wraps the workspace's top-down
//! [`PipelinedTree`] — the single-pass structure the hardware runs); the
//! hardware character — pipeline cycles, update serialization, speculation
//! window, conflict crashes, leaf-stage DRAM traffic — is simulated
//! alongside and drives Figure 13 and Table 5.

use crate::pipelined::PipelinedTree;
use fidr_hash::fnv1a_u64;
use std::collections::VecDeque;

/// Static configuration of one HW-tree instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwTreeConfig {
    /// Pipeline clock (250 MHz class fabric).
    pub clock_hz: f64,
    /// Concurrent update slots enabled by speculation (1 = the prior
    /// art's single-update tree; FIDR evaluates up to 4).
    pub update_slots: usize,
    /// Tree levels (pipeline stages). 9 for the 410-MB cache, 14 for the
    /// 100-GB cache (paper Table 5).
    pub levels: usize,
    /// Keys per leaf node (16 in FIDR's modification).
    pub leaf_keys: usize,
    /// FPGA-board DRAM bytes touched in the leaf stage per request.
    pub leaf_bytes: u64,
    /// Fixed pipeline-occupancy cycles per committed update.
    pub update_fixed_cycles: u64,
    /// Serialization cycles per update that speculation divides across
    /// slots (the win measured in Figure 13).
    pub update_serial_cycles: u64,
}

impl Default for HwTreeConfig {
    fn default() -> Self {
        HwTreeConfig::with_levels(9)
    }
}

impl HwTreeConfig {
    /// Builds a configuration for a tree of `levels` pipeline stages.
    /// Update costs scale with the pipeline depth — each update occupies
    /// ~1.3 stages-worth of fixed cycles plus ~5.5 stages-worth of
    /// serialization that speculation divides across slots. (Fit: Write-M
    /// single-update 27.1 GB/s and 4-slot 63.8 GB/s at 14 levels, §7.4;
    /// the 80 vs 64 GB/s medium/large gap of Table 5.)
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    pub fn with_levels(levels: usize) -> Self {
        assert!(levels > 0, "tree needs at least one level");
        HwTreeConfig {
            clock_hz: 250e6,
            update_slots: 1,
            levels,
            leaf_keys: 16,
            leaf_bytes: 512,
            update_fixed_cycles: (1.3 * levels as f64).round() as u64,
            update_serial_cycles: (5.5 * levels as f64).round() as u64,
        }
    }

    /// Derives the level count for a cache of `cache_lines` 4-KB lines:
    /// 16-key leaves under a 2-key (3-way) internal tree, reproducing the
    /// paper's 9 levels at ~100 K lines and 14 levels at ~25 M lines.
    pub fn for_cache_lines(cache_lines: u64) -> Self {
        let leaves = (cache_lines / 16).max(1);
        let mut levels = 1usize;
        let mut reach = 1u64;
        while reach < leaves {
            reach *= 3;
            levels += 1;
        }
        HwTreeConfig::with_levels(levels)
    }

    /// Effective cycles per update at the configured concurrency.
    pub fn cycles_per_update(&self) -> f64 {
        self.update_fixed_cycles as f64
            + self.update_serial_cycles as f64 / self.update_slots as f64
    }
}

/// Hardware-side counters of one HW-tree run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwTreeStats {
    /// Search requests processed.
    pub searches: u64,
    /// Update requests (inserts + deletes) committed.
    pub updates: u64,
    /// Updates that mis-speculated and replayed (Algorithm 2 line 2).
    pub crashes: u64,
    /// Pipeline cycles consumed.
    pub cycles: u64,
    /// FPGA-board DRAM bytes moved by the leaf stage.
    pub fpga_dram_bytes: u64,
}

impl HwTreeStats {
    /// Folds another engine's counters into this one (aggregating the
    /// per-shard engines of a sharded cache, or carrying a retired
    /// engine's history forward after degradation).
    pub fn merge(&mut self, other: HwTreeStats) {
        self.searches += other.searches;
        self.updates += other.updates;
        self.crashes += other.crashes;
        self.cycles += other.cycles;
        self.fpga_dram_bytes += other.fpga_dram_bytes;
    }

    /// Crash (replay) rate among updates.
    pub fn crash_rate(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.crashes as f64 / self.updates as f64
        }
    }
}

/// The Cache HW-Engine tree: exact mapping + cycle/conflict simulation.
///
/// # Examples
///
/// ```
/// use fidr_cache::{HwTree, HwTreeConfig};
///
/// let mut tree = HwTree::new(HwTreeConfig { update_slots: 4, ..HwTreeConfig::default() });
/// tree.insert(100, 5);
/// assert_eq!(tree.search(100), Some(5));
/// assert_eq!(tree.remove(100), Some(5));
/// assert!(tree.stats().cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct HwTree {
    map: PipelinedTree,
    cfg: HwTreeConfig,
    stats: HwTreeStats,
    /// Node-id sets of updates currently in flight (the speculation
    /// window); length < `update_slots`.
    window: VecDeque<Vec<u64>>,
}

impl HwTree {
    /// Creates an engine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `update_slots` is zero.
    pub fn new(cfg: HwTreeConfig) -> Self {
        assert!(cfg.update_slots >= 1, "need at least one update slot");
        HwTree {
            map: PipelinedTree::new(),
            cfg,
            stats: HwTreeStats::default(),
            window: VecDeque::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HwTreeConfig {
        &self.cfg
    }

    /// Hardware counters so far.
    pub fn stats(&self) -> HwTreeStats {
        self.stats
    }

    /// Clears the hardware counters (not the mapping).
    pub fn reset_stats(&mut self) {
        self.stats = HwTreeStats::default();
        self.window.clear();
    }

    /// Mapped entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no entries are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Pipelined search: one result per cycle.
    pub fn search(&mut self, key: u64) -> Option<u32> {
        self.stats.searches += 1;
        self.stats.cycles += 1;
        self.stats.fpga_dram_bytes += self.cfg.leaf_bytes;
        self.map.search(key)
    }

    /// Inserts a (bucket, line) pair through the update pipeline.
    pub fn insert(&mut self, key: u64, line: u32) {
        self.issue_update(key);
        self.map.insert(key, line);
    }

    /// Deletes a pair through the update pipeline (cache replacement).
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        self.issue_update(key);
        self.map.remove(key)
    }

    /// Simulates issuing one update through the speculative pipeline:
    /// records the traversed node set, detects conflicts against the
    /// in-flight window (Algorithm 1), and charges replay on a crash
    /// (Algorithm 2).
    fn issue_update(&mut self, key: u64) {
        let nodes = self.path_nodes(key);

        // Algorithm 1: crash iff any traversed node or its neighbor was
        // speculatively updated by an in-flight request.
        let crashed = self.window.iter().any(|inflight| {
            inflight
                .iter()
                .any(|&n| nodes.iter().any(|&m| conflicts(n, m)))
        });

        let per_update = self.cfg.cycles_per_update().round() as u64;
        if crashed {
            // Algorithm 2 line 2: discard and replay. The replay drains the
            // window first (serial re-execution), costing a full
            // unshared pass.
            self.stats.crashes += 1;
            self.stats.cycles += self.cfg.update_fixed_cycles + self.cfg.update_serial_cycles;
            self.stats.fpga_dram_bytes += self.cfg.leaf_bytes;
            self.window.clear();
        }

        self.stats.updates += 1;
        self.stats.cycles += per_update;
        self.stats.fpga_dram_bytes += self.cfg.leaf_bytes;

        // Slide the speculation window.
        if self.cfg.update_slots > 1 {
            self.window.push_back(nodes);
            while self.window.len() >= self.cfg.update_slots {
                self.window.pop_front();
            }
        }
    }

    /// Models the node ids an update *modifies* (Algorithm 1's
    /// `spec_updated_node` entries): always the leaf, plus each ancestor
    /// with probability 1/`leaf_keys` per level (split/merge propagation).
    /// Hash-PBN bucket indexes derive from SHA-256 prefixes, so leaf
    /// positions are uniform (§5.5.1: "hash values are highly random").
    fn path_nodes(&self, key: u64) -> Vec<u64> {
        let h = fnv1a_u64(key);
        let node_at = |level: u64| -> u64 {
            let bits = (2 * level).min(48) as u32;
            (level << 52) | (h >> (64 - bits))
        };
        let leaf_level = self.cfg.levels as u64;
        let mut nodes = vec![node_at(leaf_level)];
        // Propagation coin flips drawn deterministically from the key.
        let mut coins = fnv1a_u64(key ^ 0x5eed_5eed_5eed_5eed);
        let per_level = self.cfg.leaf_keys as u64;
        let mut level = leaf_level;
        while level > 1 && coins.is_multiple_of(per_level) {
            level -= 1;
            nodes.push(node_at(level));
            coins /= per_level;
        }
        nodes
    }

    /// Wall-clock seconds this run would take on the engine, accounting for
    /// both the pipeline clock and the FPGA-board DRAM bandwidth cap.
    pub fn elapsed_seconds(&self, fpga_dram_bw: f64) -> f64 {
        let cycle_time = self.stats.cycles as f64 / self.cfg.clock_hz;
        let dram_time = self.stats.fpga_dram_bytes as f64 / fpga_dram_bw;
        cycle_time.max(dram_time)
    }

    /// Data-reduction throughput (bytes/s) this engine sustains when each
    /// search serves one `chunk_bytes` client chunk — the Figure 13 y-axis.
    pub fn throughput_bytes_per_sec(&self, chunk_bytes: u64, fpga_dram_bw: f64) -> f64 {
        let secs = self.elapsed_seconds(fpga_dram_bw);
        if secs == 0.0 {
            return 0.0;
        }
        (self.stats.searches * chunk_bytes) as f64 / secs
    }
}

/// Two modeled nodes conflict when they are the same node or lateral
/// neighbors at the same level (split/merge can touch a neighbor).
fn conflicts(a: u64, b: u64) -> bool {
    if a == b {
        return true;
    }
    (a >> 52) == (b >> 52) && a.abs_diff(b) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_mapping_is_exact() {
        let mut t = HwTree::new(HwTreeConfig::default());
        for k in 0..1000u64 {
            t.insert(k, (k % 97) as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(t.search(k), Some((k % 97) as u32));
        }
        for k in (0..1000u64).step_by(3) {
            assert_eq!(t.remove(k), Some((k % 97) as u32));
        }
        assert_eq!(t.search(3), None);
        assert_eq!(t.search(4), Some(4));
    }

    #[test]
    fn levels_match_paper_table5() {
        // 410 MB cache = ~100 K lines → 9 levels.
        assert_eq!(HwTreeConfig::for_cache_lines(100_000).levels, 9);
        // ~100 GB cache = ~25 M lines → 14 levels.
        assert_eq!(HwTreeConfig::for_cache_lines(25_000_000).levels, 14);
    }

    #[test]
    fn more_slots_cost_fewer_cycles_per_update() {
        let c1 = HwTreeConfig {
            update_slots: 1,
            ..HwTreeConfig::default()
        };
        let c4 = HwTreeConfig {
            update_slots: 4,
            ..HwTreeConfig::default()
        };
        assert!(c4.cycles_per_update() < c1.cycles_per_update() / 2.0);
    }

    #[test]
    fn single_slot_never_crashes() {
        let mut t = HwTree::new(HwTreeConfig::default());
        for k in 0..10_000u64 {
            t.insert(k, 0);
        }
        assert_eq!(t.stats().crashes, 0);
    }

    #[test]
    fn random_keys_rarely_crash_with_speculation() {
        let cfg = HwTreeConfig {
            update_slots: 4,
            ..HwTreeConfig::with_levels(14)
        };
        let mut t = HwTree::new(cfg);
        for k in 0..50_000u64 {
            // Uniformly mixed keys, as SHA-derived bucket indexes are.
            t.insert(k.wrapping_mul(0x9e3779b97f4a7c15), 0);
        }
        let rate = t.stats().crash_rate();
        assert!(
            rate < 0.001,
            "crash rate {rate} should be <0.1% (paper §7.4)"
        );
    }

    #[test]
    fn adjacent_hot_keys_do_crash() {
        // Same key updated back-to-back must conflict when speculated.
        let cfg = HwTreeConfig {
            update_slots: 4,
            ..HwTreeConfig::default()
        };
        let mut t = HwTree::new(cfg);
        t.insert(7, 0);
        t.remove(7);
        assert!(t.stats().crashes >= 1);
    }

    #[test]
    fn throughput_scales_with_update_slots() {
        // Write-M-like mix: ~19 % miss → 0.38 updates per search.
        let run = |slots: usize| {
            let cfg = HwTreeConfig {
                update_slots: slots,
                ..HwTreeConfig::with_levels(14)
            };
            let mut t = HwTree::new(cfg);
            let mut k = 0u64;
            for i in 0..100_000u64 {
                t.search(i.wrapping_mul(0x9e3779b97f4a7c15));
                if i % 100 < 19 {
                    // miss: insert a fresh bucket + delete a random victim
                    t.insert(k.wrapping_mul(0x2545F4914F6CDD1D) | 1, 0);
                    t.remove(k.wrapping_mul(0x6A09E667F3BCC909) | 1);
                    k += 1;
                }
            }
            t.throughput_bytes_per_sec(4096, 16e9)
        };
        let single = run(1);
        let quad = run(4);
        // Figure 13 shape: 27.1 GB/s → 63.8 GB/s for Write-M.
        assert!(
            single > 20e9 && single < 35e9,
            "single-update {:.1} GB/s",
            single / 1e9
        );
        assert!(quad > 55e9 && quad < 80e9, "4-slot {:.1} GB/s", quad / 1e9);
        assert!(quad / single > 2.0);
    }

    #[test]
    fn high_hit_rate_saturates_fpga_dram() {
        // Write-H-like: 10 % miss. Throughput should cap near the DRAM
        // bound of ~127 GB/s (paper §7.4).
        let cfg = HwTreeConfig {
            update_slots: 4,
            ..HwTreeConfig::with_levels(14)
        };
        let mut t = HwTree::new(cfg);
        for i in 0..100_000u64 {
            t.search(i.wrapping_mul(0x9e3779b97f4a7c15));
            if i % 100 < 10 {
                t.insert(i.wrapping_mul(0x2545F4914F6CDD1D) | 1, 0);
                t.remove(i.wrapping_mul(0x6A09E667F3BCC909) | 1);
            }
        }
        let gbps = t.throughput_bytes_per_sec(4096, 16e9) / 1e9;
        assert!(gbps > 100.0 && gbps <= 130.0, "Write-H-like {gbps} GB/s");
    }
}
