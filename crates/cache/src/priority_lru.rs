//! Prioritized LRU replacement for multi-tenant table caching (paper §8).
//!
//! "In multi-tenant environments … to address table cache contention,
//! instead of a basic LRU replacement policy, we may use a prioritized LRU
//! policy that considers each workload's locality." This policy partitions
//! the recency order by tenant priority class: eviction victims come from
//! the lowest-priority class that holds more than its guaranteed share,
//! so a scan-heavy low-priority tenant cannot wash out a high-priority
//! tenant's working set.

use std::collections::HashMap;

/// A tenant priority class; higher values evict later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Priority(pub u8);

/// Per-tenant accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Hits for this tenant.
    pub hits: u64,
    /// Misses for this tenant.
    pub misses: u64,
    /// Lines this tenant currently holds.
    pub resident: usize,
}

impl TenantStats {
    /// Hit rate for this tenant.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    tenant: u32,
    priority: Priority,
    /// Monotonic access stamp; smaller = colder.
    stamp: u64,
}

/// A prioritized-LRU cache directory mapping keys to tenant-tagged lines.
///
/// This models the replacement *policy* layer: keys are bucket indexes,
/// the cached payloads live elsewhere (host DRAM). Guaranteed shares keep
/// each priority class at least `guarantee` lines before it can be robbed.
///
/// # Examples
///
/// ```
/// use fidr_cache::{Priority, PriorityLruCache};
///
/// let mut cache = PriorityLruCache::new(2, 1);
/// cache.access(100, 0, Priority(2)); // high-priority tenant
/// cache.access(200, 1, Priority(0)); // low-priority tenant
/// cache.access(300, 1, Priority(0)); // evicts tenant 1's own line
/// assert!(cache.contains(100));
/// assert!(!cache.contains(200));
/// ```
#[derive(Debug)]
pub struct PriorityLruCache {
    capacity: usize,
    guarantee: usize,
    entries: HashMap<u64, Entry>,
    tenants: HashMap<u32, TenantStats>,
    clock: u64,
}

impl PriorityLruCache {
    /// Creates a cache of `capacity` lines with a per-priority-class
    /// guaranteed share of `guarantee` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, guarantee: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        PriorityLruCache {
            capacity,
            guarantee,
            entries: HashMap::new(),
            tenants: HashMap::new(),
            clock: 0,
        }
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Lines resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stats for one tenant.
    pub fn tenant_stats(&self, tenant: u32) -> TenantStats {
        self.tenants.get(&tenant).copied().unwrap_or_default()
    }

    /// Records `tenant` (at `priority`) accessing `key`; returns `true`
    /// on a hit. On a miss the key is installed, evicting per policy.
    pub fn access(&mut self, key: u64, tenant: u32, priority: Priority) -> bool {
        self.clock += 1;
        let stamp = self.clock;
        let stats = self.tenants.entry(tenant).or_default();
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.stamp = stamp;
            entry.tenant = tenant;
            entry.priority = priority;
            stats.hits += 1;
            return true;
        }
        stats.misses += 1;
        if self.entries.len() >= self.capacity {
            self.evict_for(priority);
        }
        self.entries.insert(
            key,
            Entry {
                tenant,
                priority,
                stamp,
            },
        );
        self.tenants.entry(tenant).or_default().resident += 1;
        false
    }

    /// Picks and removes a victim: the coldest entry of the lowest
    /// priority class holding more than its guarantee; if every class is
    /// at/below guarantee, the coldest entry at or below the requester's
    /// priority; as a last resort, the globally coldest entry.
    fn evict_for(&mut self, requester: Priority) {
        let victim_key = self
            .victim_above_guarantee()
            .or_else(|| self.coldest_at_or_below(requester))
            .or_else(|| self.coldest_overall());
        if let Some(key) = victim_key {
            let entry = self.entries.remove(&key).expect("victim resident");
            let stats = self.tenants.get_mut(&entry.tenant).expect("tenant tracked");
            stats.resident -= 1;
        }
    }

    fn class_sizes(&self) -> HashMap<Priority, usize> {
        let mut sizes: HashMap<Priority, usize> = HashMap::new();
        for e in self.entries.values() {
            *sizes.entry(e.priority).or_default() += 1;
        }
        sizes
    }

    fn victim_above_guarantee(&self) -> Option<u64> {
        let sizes = self.class_sizes();
        let mut classes: Vec<Priority> = sizes
            .iter()
            .filter(|&(_, &n)| n > self.guarantee)
            .map(|(&p, _)| p)
            .collect();
        classes.sort_unstable();
        let class = *classes.first()?;
        self.coldest_in_class(class)
    }

    fn coldest_in_class(&self, class: Priority) -> Option<u64> {
        self.entries
            .iter()
            .filter(|(_, e)| e.priority == class)
            .min_by_key(|(_, e)| e.stamp)
            .map(|(&k, _)| k)
    }

    fn coldest_at_or_below(&self, requester: Priority) -> Option<u64> {
        self.entries
            .iter()
            .filter(|(_, e)| e.priority <= requester)
            .min_by_key(|(_, e)| e.stamp)
            .map(|(&k, _)| k)
    }

    fn coldest_overall(&self) -> Option<u64> {
        self.entries
            .iter()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(&k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_lru_within_one_class() {
        let mut c = PriorityLruCache::new(2, 0);
        c.access(1, 0, Priority(1));
        c.access(2, 0, Priority(1));
        c.access(1, 0, Priority(1)); // refresh 1
        c.access(3, 0, Priority(1)); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn low_priority_scan_cannot_evict_high_priority() {
        let mut c = PriorityLruCache::new(4, 1);
        // High-priority tenant warms two lines.
        c.access(10, 0, Priority(3));
        c.access(11, 0, Priority(3));
        // Low-priority tenant scans 20 distinct keys.
        for k in 100..120 {
            c.access(k, 1, Priority(0));
        }
        assert!(c.contains(10), "high-priority line 10 must survive");
        assert!(c.contains(11), "high-priority line 11 must survive");
        // The scanner churned only its own share.
        assert_eq!(c.tenant_stats(1).resident, 2);
    }

    #[test]
    fn high_priority_can_take_from_low() {
        let mut c = PriorityLruCache::new(2, 0);
        c.access(1, 1, Priority(0));
        c.access(2, 1, Priority(0));
        c.access(3, 0, Priority(5)); // displaces a low-priority line
        assert!(c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn guarantee_protects_minimum_share() {
        let mut c = PriorityLruCache::new(3, 1);
        c.access(1, 1, Priority(0));
        // High-priority fills the rest and keeps pushing.
        for k in 10..20 {
            c.access(k, 0, Priority(9));
        }
        // The low class kept its guaranteed single line.
        assert!(c.contains(1), "guaranteed share violated");
    }

    #[test]
    fn per_tenant_hit_rates() {
        let mut c = PriorityLruCache::new(8, 0);
        c.access(1, 7, Priority(1));
        c.access(1, 7, Priority(1));
        c.access(2, 7, Priority(1));
        let s = c.tenant_stats(7);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
