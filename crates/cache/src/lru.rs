//! LRU recency list and free-list for table-cache lines.
//!
//! In FIDR's hybrid split, "the cache LRU list is also kept in the host
//! side" (because the host scans cache content anyway), while the free list
//! is "a circular buffer … in FPGA-board DRAM" consumed by the Cache
//! HW-Engine (paper §5.5, §6.3). Both structures are O(1) per operation:
//! the LRU is an intrusive doubly-linked list over line indices; the free
//! list is a fixed-capacity ring.

/// O(1) LRU recency list over cache-line indices `0..capacity`.
///
/// # Examples
///
/// ```
/// use fidr_cache::LruList;
///
/// let mut lru = LruList::new(4);
/// lru.push_hot(0);
/// lru.push_hot(1);
/// lru.touch(0);
/// assert_eq!(lru.pop_coldest(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct LruList {
    prev: Vec<u32>,
    next: Vec<u32>,
    present: Vec<bool>,
    head: u32, // most recently used
    tail: u32, // least recently used
    len: usize,
}

const NIL: u32 = u32::MAX;

impl LruList {
    /// Creates a list for `capacity` line indices.
    pub fn new(capacity: usize) -> Self {
        LruList {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            present: vec![false; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Lines currently tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `line` as the most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `line` is already present or out of range.
    pub fn push_hot(&mut self, line: u32) {
        let i = line as usize;
        assert!(!self.present[i], "line {line} already in LRU");
        self.present[i] = true;
        self.prev[i] = NIL;
        self.next[i] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = line;
        }
        self.head = line;
        if self.tail == NIL {
            self.tail = line;
        }
        self.len += 1;
    }

    /// Moves `line` to the most-recently-used position.
    ///
    /// # Panics
    ///
    /// Panics if `line` is not present.
    pub fn touch(&mut self, line: u32) {
        assert!(self.present[line as usize], "touch of absent line {line}");
        if self.head == line {
            return;
        }
        self.unlink(line);
        self.len += 1; // unlink decremented
        self.present[line as usize] = true;
        let i = line as usize;
        self.prev[i] = NIL;
        self.next[i] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = line;
        }
        self.head = line;
        if self.tail == NIL {
            self.tail = line;
        }
    }

    /// Removes and returns the least recently used line.
    pub fn pop_coldest(&mut self) -> Option<u32> {
        if self.tail == NIL {
            return None;
        }
        let line = self.tail;
        self.unlink(line);
        Some(line)
    }

    /// Peeks the coldest `n` lines, coldest first, without removing them —
    /// the batch FIDR ships to the HW-Engine for deletion (§5.5: "FIDR
    /// HW-Engine periodically receives batches of top LRU list items").
    pub fn coldest(&self, n: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(n);
        let mut cur = self.tail;
        while cur != NIL && out.len() < n {
            out.push(cur);
            cur = self.prev[cur as usize];
        }
        out
    }

    /// Removes an arbitrary line.
    ///
    /// # Panics
    ///
    /// Panics if `line` is not present.
    pub fn remove(&mut self, line: u32) {
        assert!(self.present[line as usize], "remove of absent line {line}");
        self.unlink(line);
    }

    fn unlink(&mut self, line: u32) {
        let i = line as usize;
        let (p, n) = (self.prev[i], self.next[i]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.prev[i] = NIL;
        self.next[i] = NIL;
        self.present[i] = false;
        self.len -= 1;
    }
}

/// Fixed-capacity ring of free cache-line indices (the HW-Engine's
/// FPGA-DRAM circular buffer, §6.3).
#[derive(Debug, Clone)]
pub struct FreeList {
    ring: Vec<u32>,
    head: usize,
    tail: usize,
    len: usize,
}

impl FreeList {
    /// Creates a free list pre-loaded with all lines `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        FreeList {
            ring: (0..capacity as u32).collect(),
            head: 0,
            tail: 0,
            len: capacity,
        }
    }

    /// Free lines available.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no free line is available.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Takes a free line.
    pub fn allocate(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let line = self.ring[self.head];
        self.head = (self.head + 1) % self.ring.len();
        self.len -= 1;
        Some(line)
    }

    /// Returns a line to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the ring is already full.
    pub fn release(&mut self, line: u32) {
        assert!(self.len < self.ring.len(), "free list overflow");
        self.ring[self.tail] = line;
        self.tail = (self.tail + 1) % self.ring.len();
        self.len += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut l = LruList::new(4);
        for i in 0..4 {
            l.push_hot(i);
        }
        l.touch(0); // order hot→cold: 0,3,2,1
        assert_eq!(l.pop_coldest(), Some(1));
        assert_eq!(l.pop_coldest(), Some(2));
        assert_eq!(l.pop_coldest(), Some(3));
        assert_eq!(l.pop_coldest(), Some(0));
        assert_eq!(l.pop_coldest(), None);
    }

    #[test]
    fn coldest_batch_preview() {
        let mut l = LruList::new(5);
        for i in 0..5 {
            l.push_hot(i);
        }
        assert_eq!(l.coldest(3), vec![0, 1, 2]);
        assert_eq!(l.len(), 5, "peek must not remove");
    }

    #[test]
    fn remove_from_middle() {
        let mut l = LruList::new(3);
        for i in 0..3 {
            l.push_hot(i);
        }
        l.remove(1);
        assert_eq!(l.pop_coldest(), Some(0));
        assert_eq!(l.pop_coldest(), Some(2));
        assert!(l.is_empty());
    }

    #[test]
    fn touch_head_is_noop() {
        let mut l = LruList::new(2);
        l.push_hot(0);
        l.push_hot(1);
        l.touch(1);
        assert_eq!(l.pop_coldest(), Some(0));
    }

    #[test]
    #[should_panic(expected = "already in LRU")]
    fn double_push_panics() {
        let mut l = LruList::new(2);
        l.push_hot(0);
        l.push_hot(0);
    }

    #[test]
    fn free_list_cycles() {
        let mut f = FreeList::full(3);
        assert_eq!(f.len(), 3);
        let a = f.allocate().unwrap();
        let b = f.allocate().unwrap();
        f.release(a);
        let c = f.allocate().unwrap();
        let d = f.allocate().unwrap();
        assert_eq!(d, a, "released line recycled in FIFO order");
        assert!(f.allocate().is_none());
        f.release(b);
        f.release(c);
        f.release(d);
        assert_eq!(f.len(), 3);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn free_list_overflow_panics() {
        let mut f = FreeList::full(1);
        f.release(0);
    }
}
