//! The host-DRAM Hash-PBN table cache.
//!
//! "The server caches only part of the table in DRAM and keeps the full
//! table in separate SSDs" (paper §2.1.3). Cache lines are 4-KB buckets.
//! The *index* (bucket index → line) is pluggable: the baseline uses the
//! software B+ tree on the CPU, FIDR uses the Cache HW-Engine — exactly the
//! split Observation #4 argues for. Content, LRU and dirty state stay in
//! host memory in both systems.

use crate::btree::BPlusTree;
use crate::hwtree::HwTree;
use crate::lru::{FreeList, LruList};
use fidr_chunk::Pbn;
use fidr_hash::Fingerprint;
use fidr_metrics::{Histogram, MetricsSnapshot};
use fidr_ssd::{TableSsd, TableSsdError};
use fidr_tables::Bucket;
use std::time::Instant;

/// Pluggable bucket-index for the table cache.
///
/// Implemented by the software [`BPlusTree`] (baseline) and the hardware
/// [`HwTree`] (FIDR). The trait is object-safe so systems can hold a
/// `Box<dyn CacheIndex>`.
pub trait CacheIndex {
    /// Finds the cache line holding `bucket`, if cached.
    fn index_search(&mut self, bucket: u64) -> Option<u32>;
    /// Records that `bucket` now lives at `line`.
    fn index_insert(&mut self, bucket: u64, line: u32);
    /// Forgets `bucket` (eviction), returning its old line.
    fn index_remove(&mut self, bucket: u64) -> Option<u32>;
}

impl CacheIndex for BPlusTree {
    fn index_search(&mut self, bucket: u64) -> Option<u32> {
        self.search(bucket)
    }
    fn index_insert(&mut self, bucket: u64, line: u32) {
        self.insert(bucket, line);
    }
    fn index_remove(&mut self, bucket: u64) -> Option<u32> {
        self.remove(bucket)
    }
}

impl CacheIndex for HwTree {
    fn index_search(&mut self, bucket: u64) -> Option<u32> {
        self.search(bucket)
    }
    fn index_insert(&mut self, bucket: u64, line: u32) {
        self.insert(bucket, line);
    }
    fn index_remove(&mut self, bucket: u64) -> Option<u32> {
        self.remove(bucket)
    }
}

/// Counters for one cache run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Bucket accesses.
    pub accesses: u64,
    /// Accesses served from DRAM.
    pub hits: u64,
    /// Accesses that fetched from the table SSD.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Evicted lines that were dirty and flushed to the table SSD.
    pub dirty_flushes: u64,
}

impl CacheStats {
    /// Folds another run's counters into this one (e.g. carrying a
    /// degraded HW-Engine cache's history into its software successor).
    pub fn merge(&mut self, other: CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.dirty_flushes += other.dirty_flushes;
    }

    /// Hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cache line now holding the bucket.
    pub line: u32,
    /// Whether it was already cached.
    pub hit: bool,
    /// Lines evicted during this access's replacement work.
    pub evicted: u32,
    /// Dirty lines flushed during this access's eviction work.
    pub flushed: u32,
}

/// Outcome of one fingerprint upsert inside a [`ScrubGroup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubResult {
    /// The fingerprint was already mapped — the canonical PBN.
    Existing(Pbn),
    /// The fingerprint was absent and has been inserted.
    Inserted,
    /// The bucket is full; nothing was inserted.
    Full,
}

/// Result of a slow-tier [`scrub_group`](TableCache::scrub_group) call:
/// one [`ScrubResult`] per upsert, in call order, plus where the work
/// happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubGroup {
    /// Per-upsert outcomes, aligned with the input slice.
    pub results: Vec<ScrubResult>,
    /// Whether the bucket was resident in the DRAM tier (mutated in
    /// place, line marked dirty) rather than read-modify-written on the
    /// table SSD.
    pub resident: bool,
    /// Whether a non-resident bucket was written back (at least one
    /// insert happened).
    pub wrote_back: bool,
}

/// The table cache: content lines + LRU + free list over a pluggable index.
///
/// # Examples
///
/// ```
/// use fidr_cache::{BPlusTree, TableCache};
/// use fidr_ssd::{QueueLocation, TableSsd};
///
/// let mut ssd = TableSsd::new(1024, QueueLocation::HostMemory);
/// let mut cache = TableCache::new(16, BPlusTree::new());
/// let first = cache.access(7, &mut ssd)?;
/// assert!(!first.hit);
/// let second = cache.access(7, &mut ssd)?;
/// assert!(second.hit);
/// # Ok::<(), fidr_ssd::TableSsdError>(())
/// ```
#[derive(Debug)]
pub struct TableCache<I> {
    lines: Vec<Bucket>,
    line_bucket: Vec<Option<u64>>,
    dirty: Vec<bool>,
    index: I,
    lru: LruList,
    free: FreeList,
    stats: CacheStats,
    evict_batch: usize,
    /// Wall-clock time per [`access`](TableCache::access), covering the
    /// index walk and any eviction/fetch work.
    access_ns: Histogram,
}

impl<I: CacheIndex> TableCache<I> {
    /// Creates a cache of `capacity` 4-KB lines over `index`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, index: I) -> Self {
        assert!(capacity > 0, "cache needs at least one line");
        TableCache {
            lines: vec![Bucket::new(); capacity],
            line_bucket: vec![None; capacity],
            dirty: vec![false; capacity],
            index,
            lru: LruList::new(capacity),
            free: FreeList::full(capacity),
            stats: CacheStats::default(),
            evict_batch: 8,
            access_ns: Histogram::new(),
        }
    }

    /// Cache capacity in lines.
    pub fn capacity(&self) -> usize {
        self.lines.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Borrow of the underlying index (e.g. to read HW-tree stats).
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Mutable borrow of the underlying index.
    pub fn index_mut(&mut self) -> &mut I {
        &mut self.index
    }

    /// Ensures `bucket` is cached, fetching and evicting as needed, and
    /// returns where it lives.
    ///
    /// # Errors
    ///
    /// [`TableSsdError`] if an eviction write-back or the miss fetch fails
    /// past the device's retry budget. The cache stays consistent: a line
    /// whose dirty write-back failed is re-indexed and keeps its content
    /// (nothing was persisted), and a failed fetch installs nothing.
    pub fn access(&mut self, bucket: u64, ssd: &mut TableSsd) -> Result<Access, TableSsdError> {
        match self.access_cached(bucket) {
            Some(access) => Ok(access),
            None => self.access_after_miss(bucket, ssd),
        }
    }

    /// Hit-only fast path: the index walk plus, on a hit, the full hit
    /// bookkeeping of [`access`](TableCache::access) (counters, LRU touch,
    /// latency sample). On a miss nothing is recorded beyond the index
    /// search itself and the caller must complete the access with
    /// [`access_after_miss`](TableCache::access_after_miss). The parallel
    /// lookup workers use this split to avoid serializing on the shared
    /// table SSD when the bucket is already resident.
    pub fn access_cached(&mut self, bucket: u64) -> Option<Access> {
        let started = Instant::now();
        let line = self.index.index_search(bucket)?;
        self.stats.accesses += 1;
        self.stats.hits += 1;
        self.lru.touch(line);
        self.access_ns.record_duration(started.elapsed());
        Some(Access {
            line,
            hit: true,
            evicted: 0,
            flushed: 0,
        })
    }

    /// Completes a miss after [`access_cached`](TableCache::access_cached)
    /// returned `None`: evicts as needed, fetches the bucket and installs
    /// it. Must only be called directly after a `None` from
    /// `access_cached` for the same bucket; counters and index traffic
    /// then add up exactly as one plain `access`.
    ///
    /// # Errors
    ///
    /// As for [`access`](TableCache::access).
    pub fn access_after_miss(
        &mut self,
        bucket: u64,
        ssd: &mut TableSsd,
    ) -> Result<Access, TableSsdError> {
        let started = Instant::now();
        self.stats.accesses += 1;
        self.stats.misses += 1;
        let mut evicted = 0u32;
        let mut flushed = 0u32;
        // Keep the free list non-empty by evicting a small batch of the
        // coldest lines (the HW-Engine's periodic deletions, §5.5).
        if self.free.is_empty() {
            for _ in 0..self.evict_batch {
                let Some(victim) = self.lru.pop_coldest() else {
                    break;
                };
                let victim_bucket =
                    self.line_bucket[victim as usize].expect("victim line holds a bucket");
                self.index.index_remove(victim_bucket);
                if self.dirty[victim as usize] {
                    if let Err(e) =
                        ssd.flush_bucket(victim_bucket, self.lines[victim as usize].clone())
                    {
                        // Nothing was persisted: put the victim back so the
                        // only up-to-date copy of the bucket stays cached.
                        self.index.index_insert(victim_bucket, victim);
                        self.lru.push_hot(victim);
                        self.access_ns.record_duration(started.elapsed());
                        return Err(e);
                    }
                    self.dirty[victim as usize] = false;
                    self.stats.dirty_flushes += 1;
                    flushed += 1;
                }
                self.lines[victim as usize] = Bucket::new();
                self.line_bucket[victim as usize] = None;
                self.free.release(victim);
                self.stats.evictions += 1;
                evicted += 1;
            }
        }

        let content = match ssd.fetch_bucket(bucket) {
            Ok(content) => content,
            Err(e) => {
                // Eviction work (if any) is already committed and
                // consistent; the miss itself installs nothing.
                self.access_ns.record_duration(started.elapsed());
                return Err(e);
            }
        };
        let line = self.free.allocate().expect("eviction refilled free list");
        self.lines[line as usize] = content;
        self.line_bucket[line as usize] = Some(bucket);
        self.dirty[line as usize] = false;
        self.index.index_insert(bucket, line);
        self.lru.push_hot(line);
        self.access_ns.record_duration(started.elapsed());
        Ok(Access {
            line,
            hit: false,
            evicted,
            flushed,
        })
    }

    /// Index-only residency probe: the line holding `bucket`, if cached.
    ///
    /// Unlike [`access`](TableCache::access) this records no hit/miss
    /// counters, does not touch the LRU and never fetches — the slow-tier
    /// path uses it to *look without being admitted*.
    pub fn probe(&mut self, bucket: u64) -> Option<u32> {
        self.index.index_search(bucket)
    }

    /// Slow-tier batched upsert: looks up (and inserts where absent) each
    /// `(fingerprint, pbn)` pair of `entries` in `bucket` **without
    /// disturbing the DRAM tier**. A resident bucket is used in place (no
    /// LRU touch, so cold traffic cannot refresh or evict hot lines; the
    /// line is marked dirty only if something was inserted). A
    /// non-resident bucket is fetched from the table SSD, updated, and
    /// written straight back — it is *not* installed in the cache and no
    /// eviction happens. Nothing here moves the `accesses`/`hits`/`misses`
    /// counters: the slow tier is accounted separately by the caller.
    ///
    /// # Errors
    ///
    /// Propagates table-SSD fetch/write-back failures; on a failed
    /// write-back no result is returned and the on-SSD bucket is
    /// unchanged, so the whole group can be retried.
    pub fn scrub_group(
        &mut self,
        bucket: u64,
        entries: &[(Fingerprint, Pbn)],
        ssd: &mut TableSsd,
    ) -> Result<ScrubGroup, TableSsdError> {
        let mut results = Vec::with_capacity(entries.len());
        if let Some(line) = self.probe(bucket) {
            let mut inserted = false;
            for &(fp, pbn) in entries {
                match self.lines[line as usize].lookup(&fp) {
                    Some(existing) => results.push(ScrubResult::Existing(existing)),
                    None => match self.lines[line as usize].insert(fp, pbn) {
                        Ok(()) => {
                            inserted = true;
                            results.push(ScrubResult::Inserted);
                        }
                        Err(_) => results.push(ScrubResult::Full),
                    },
                }
            }
            if inserted {
                self.dirty[line as usize] = true;
            }
            return Ok(ScrubGroup {
                results,
                resident: true,
                wrote_back: false,
            });
        }
        let mut content = ssd.fetch_bucket(bucket)?;
        let mut inserted = false;
        for &(fp, pbn) in entries {
            match content.lookup(&fp) {
                Some(existing) => results.push(ScrubResult::Existing(existing)),
                None => match content.insert(fp, pbn) {
                    Ok(()) => {
                        inserted = true;
                        results.push(ScrubResult::Inserted);
                    }
                    Err(_) => results.push(ScrubResult::Full),
                },
            }
        }
        if inserted {
            ssd.flush_bucket(bucket, content)?;
        }
        Ok(ScrubGroup {
            results,
            resident: false,
            wrote_back: inserted,
        })
    }

    /// The wall-clock per-access latency histogram (for merged exports).
    pub fn access_histogram(&self) -> &Histogram {
        &self.access_ns
    }

    /// Exports the cache's counters and lookup-latency histogram under the
    /// `cache.*` prefix (see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, out: &mut MetricsSnapshot) {
        out.set_counter("cache.accesses.count", self.stats.accesses);
        out.set_counter("cache.hits.count", self.stats.hits);
        out.set_counter("cache.misses.count", self.stats.misses);
        out.set_counter("cache.evictions.count", self.stats.evictions);
        out.set_counter("cache.dirty_flushes.count", self.stats.dirty_flushes);
        out.set_gauge("cache.hit.ratio", self.stats.hit_rate());
        out.set_wall_clock_histogram("cache.lookup.ns", &self.access_ns);
    }

    /// Read-only view of a cached bucket.
    ///
    /// # Panics
    ///
    /// Panics if `line` does not currently hold a bucket.
    pub fn bucket(&self, line: u32) -> &Bucket {
        assert!(
            self.line_bucket[line as usize].is_some(),
            "line {line} is empty"
        );
        &self.lines[line as usize]
    }

    /// Mutable view of a cached bucket; marks the line dirty.
    ///
    /// # Panics
    ///
    /// Panics if `line` does not currently hold a bucket.
    pub fn bucket_mut(&mut self, line: u32) -> &mut Bucket {
        assert!(
            self.line_bucket[line as usize].is_some(),
            "line {line} is empty"
        );
        self.dirty[line as usize] = true;
        &mut self.lines[line as usize]
    }

    /// Writes every dirty line back to the table SSD (shutdown / barrier).
    ///
    /// # Errors
    ///
    /// Stops at the first bucket whose flush fails past the device's
    /// retry budget; that line and any not yet reached stay dirty, so a
    /// later `flush_all` retries exactly the unpersisted remainder.
    pub fn flush_all(&mut self, ssd: &mut TableSsd) -> Result<(), TableSsdError> {
        for line in 0..self.lines.len() {
            if self.dirty[line] {
                let bucket_idx = self.line_bucket[line].expect("dirty line holds a bucket");
                ssd.flush_bucket(bucket_idx, self.lines[line].clone())?;
                self.dirty[line] = false;
                self.stats.dirty_flushes += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidr_chunk::Pbn;
    use fidr_hash::Fingerprint;
    use fidr_ssd::QueueLocation;

    fn ssd(buckets: u64) -> TableSsd {
        TableSsd::new(buckets, QueueLocation::HostMemory)
    }

    #[test]
    fn hit_after_miss() {
        let mut s = ssd(256);
        let mut c = TableCache::new(4, BPlusTree::new());
        assert!(!c.access(10, &mut s).unwrap().hit);
        assert!(c.access(10, &mut s).unwrap().hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_batch_and_writeback() {
        let mut s = ssd(256);
        let mut c = TableCache::new(4, BPlusTree::new());
        // Dirty a bucket, then evict it by filling the cache.
        let a = c.access(1, &mut s).unwrap();
        let fp = Fingerprint::of(b"x");
        c.bucket_mut(a.line).insert(fp, Pbn(9)).unwrap();
        for b in 2..10u64 {
            c.access(b, &mut s).unwrap();
        }
        assert!(c.stats().evictions >= 1);
        assert!(c.stats().dirty_flushes >= 1);
        // Re-access bucket 1: the flushed content must come back.
        let again = c.access(1, &mut s).unwrap();
        assert!(!again.hit);
        assert_eq!(c.bucket(again.line).lookup(&fp), Some(Pbn(9)));
    }

    #[test]
    fn flush_all_persists_dirty_lines() {
        let mut s = ssd(64);
        let mut c = TableCache::new(4, BPlusTree::new());
        let acc = c.access(3, &mut s).unwrap();
        let fp = Fingerprint::of(b"y");
        c.bucket_mut(acc.line).insert(fp, Pbn(1)).unwrap();
        c.flush_all(&mut s).unwrap();
        assert_eq!(s.store().bucket(3).lookup(&fp), Some(Pbn(1)));
    }

    #[test]
    fn works_with_hw_tree_index() {
        let mut s = ssd(256);
        let mut c = TableCache::new(8, crate::hwtree::HwTree::new(Default::default()));
        for b in 0..32u64 {
            c.access(b % 6, &mut s).unwrap();
        }
        assert!(c.stats().hit_rate() > 0.0);
        assert!(c.index().stats().searches >= 32);
    }

    #[test]
    fn hit_rate_tracks_reuse() {
        let mut s = ssd(1024);
        let mut c = TableCache::new(64, BPlusTree::new());
        // Working set of 32 buckets fits: after warmup everything hits.
        for round in 0..10 {
            for b in 0..32u64 {
                let acc = c.access(b, &mut s).unwrap();
                if round > 0 {
                    assert!(acc.hit, "round {round} bucket {b}");
                }
            }
        }
        assert!(c.stats().hit_rate() > 0.85);
    }

    #[test]
    fn failed_eviction_writeback_keeps_dirty_line_cached() {
        use fidr_faults::{FaultInjector, FaultPlan, RetryPolicy};
        let mut s = ssd(256);
        let mut c = TableCache::new(4, BPlusTree::new());
        let a = c.access(1, &mut s).unwrap();
        let fp = Fingerprint::of(b"x");
        c.bucket_mut(a.line).insert(fp, Pbn(9)).unwrap();
        // Fill the cache, then make every bucket flush fail.
        for b in 2..5u64 {
            c.access(b, &mut s).unwrap();
        }
        let plan = FaultPlan {
            table_write_error: 1.0,
            ..FaultPlan::default()
        };
        s.set_fault_injector(FaultInjector::new(plan), RetryPolicy::default());
        // The next miss must evict the dirty line for bucket 1 — the
        // write-back fails, so the access errors...
        assert!(c.access(9, &mut s).is_err());
        // ...but the only up-to-date copy of bucket 1 is still cached,
        // dirty, and readable; once the device heals it flushes cleanly.
        s.set_fault_injector(FaultInjector::disabled(), RetryPolicy::default());
        let again = c.access(1, &mut s).unwrap();
        assert!(again.hit, "victim of the failed write-back is re-indexed");
        assert_eq!(c.bucket(again.line).lookup(&fp), Some(Pbn(9)));
        c.flush_all(&mut s).unwrap();
        assert_eq!(s.store().bucket(1).lookup(&fp), Some(Pbn(9)));
    }

    #[test]
    fn failed_miss_fetch_installs_nothing() {
        use fidr_faults::{FaultInjector, FaultPlan, RetryPolicy};
        let mut s = ssd(64);
        let mut c = TableCache::new(4, BPlusTree::new());
        let plan = FaultPlan {
            table_read_error: 1.0,
            ..FaultPlan::default()
        };
        s.set_fault_injector(FaultInjector::new(plan), RetryPolicy::default());
        assert!(c.access(5, &mut s).is_err());
        s.set_fault_injector(FaultInjector::disabled(), RetryPolicy::default());
        let acc = c.access(5, &mut s).unwrap();
        assert!(!acc.hit, "nothing was installed by the failed fetch");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn reading_empty_line_panics() {
        let c: TableCache<BPlusTree> = TableCache::new(2, BPlusTree::new());
        c.bucket(0);
    }
}
