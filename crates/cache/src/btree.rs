//! A from-scratch arena-allocated B+ tree mapping `u64` → `u32`.
//!
//! The CIDR-style baseline indexes its host-DRAM table cache with "an
//! open-source high performing B+ tree … based on Intel PALM" (paper §7.1).
//! This is that substrate: bucket index → cache-line mapping with insert,
//! point lookup, and delete (with borrow/merge rebalancing). Every node
//! touched is counted so the CPU-cost model can charge tree-indexing cycles
//! proportionally to real work.

const ORDER: usize = 16; // max keys per node; min is ORDER/2 for non-roots

/// Operation counters for cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexOps {
    /// Point lookups executed.
    pub searches: u64,
    /// Key inserts executed.
    pub inserts: u64,
    /// Key deletes executed.
    pub deletes: u64,
    /// Tree nodes visited across all operations.
    pub nodes_visited: u64,
}

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// Separator keys; `children.len() == keys.len() + 1`.
        keys: Vec<u64>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<u64>,
        values: Vec<u32>,
    },
}

impl Node {
    fn key_count(&self) -> usize {
        match self {
            Node::Internal { keys, .. } => keys.len(),
            Node::Leaf { keys, .. } => keys.len(),
        }
    }
}

/// Arena-allocated B+ tree with `u64` keys and `u32` values.
///
/// # Examples
///
/// ```
/// use fidr_cache::BPlusTree;
///
/// let mut tree = BPlusTree::new();
/// tree.insert(42, 7);
/// assert_eq!(tree.search(42), Some(7));
/// assert_eq!(tree.remove(42), Some(7));
/// assert_eq!(tree.search(42), None);
/// ```
#[derive(Debug, Clone)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    len: usize,
    ops: IndexOps,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

enum InsertResult {
    Done,
    /// Child split: promote `key` with a new right sibling.
    Split(u64, usize),
    Replaced(u32),
}

impl BPlusTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            }],
            free: Vec::new(),
            root: 0,
            len: 0,
            ops: IndexOps::default(),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        while let Node::Internal { children, .. } = &self.nodes[id] {
            id = children[0];
            h += 1;
        }
        h
    }

    /// Live node count (tree-size metric for the cost model).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Cumulative operation counters.
    pub fn ops(&self) -> IndexOps {
        self.ops
    }

    /// Resets the operation counters (e.g. between measurement phases).
    pub fn reset_ops(&mut self) {
        self.ops = IndexOps::default();
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            id
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn release(&mut self, id: usize) {
        self.free.push(id);
    }

    /// Point lookup.
    pub fn search(&mut self, key: u64) -> Option<u32> {
        self.ops.searches += 1;
        let mut id = self.root;
        loop {
            self.ops.nodes_visited += 1;
            match &self.nodes[id] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    id = children[idx];
                }
                Node::Leaf { keys, values } => {
                    return keys.binary_search(&key).ok().map(|i| values[i]);
                }
            }
        }
    }

    /// Inserts `key` → `value`; returns the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: u64, value: u32) -> Option<u32> {
        self.ops.inserts += 1;
        match self.insert_rec(self.root, key, value) {
            InsertResult::Done => {
                self.len += 1;
                None
            }
            InsertResult::Replaced(old) => Some(old),
            InsertResult::Split(sep, right) => {
                // Grow a new root.
                let old_root = self.root;
                let new_root = self.alloc(Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                });
                self.root = new_root;
                self.len += 1;
                None
            }
        }
    }

    fn insert_rec(&mut self, id: usize, key: u64, value: u32) -> InsertResult {
        self.ops.nodes_visited += 1;
        match &mut self.nodes[id] {
            Node::Leaf { keys, values } => match keys.binary_search(&key) {
                Ok(i) => {
                    let old = values[i];
                    values[i] = value;
                    InsertResult::Replaced(old)
                }
                Err(i) => {
                    keys.insert(i, key);
                    values.insert(i, value);
                    if keys.len() > ORDER {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_vals = values.split_off(mid);
                        let sep = right_keys[0];
                        let right = self.alloc(Node::Leaf {
                            keys: right_keys,
                            values: right_vals,
                        });
                        InsertResult::Split(sep, right)
                    } else {
                        InsertResult::Done
                    }
                }
            },
            Node::Internal { keys, .. } => {
                let idx = keys.partition_point(|&k| k <= key);
                let child = match &self.nodes[id] {
                    Node::Internal { children, .. } => children[idx],
                    Node::Leaf { .. } => unreachable!(),
                };
                match self.insert_rec(child, key, value) {
                    InsertResult::Split(sep, right) => {
                        let (keys, children) = match &mut self.nodes[id] {
                            Node::Internal { keys, children } => (keys, children),
                            Node::Leaf { .. } => unreachable!(),
                        };
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > ORDER {
                            let mid = keys.len() / 2;
                            // Promote keys[mid]; right gets keys[mid+1..].
                            let right_keys = keys.split_off(mid + 1);
                            let promoted = keys.pop().expect("mid key exists");
                            let right_children = children.split_off(mid + 1);
                            let right = self.alloc(Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            });
                            InsertResult::Split(promoted, right)
                        } else {
                            InsertResult::Done
                        }
                    }
                    other => other,
                }
            }
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        self.ops.deletes += 1;
        let removed = self.remove_rec(self.root, key);
        if removed.is_some() {
            self.len -= 1;
            // Shrink the root if it lost all separators.
            if let Node::Internal { keys, children } = &self.nodes[self.root] {
                if keys.is_empty() {
                    let only = children[0];
                    let old_root = self.root;
                    self.root = only;
                    self.release(old_root);
                }
            }
        }
        removed
    }

    fn remove_rec(&mut self, id: usize, key: u64) -> Option<u32> {
        self.ops.nodes_visited += 1;
        match &mut self.nodes[id] {
            Node::Leaf { keys, values } => match keys.binary_search(&key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(values.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { keys, .. } => {
                let idx = keys.partition_point(|&k| k <= key);
                let child = match &self.nodes[id] {
                    Node::Internal { children, .. } => children[idx],
                    Node::Leaf { .. } => unreachable!(),
                };
                let removed = self.remove_rec(child, key)?;
                self.fix_underflow(id, idx);
                Some(removed)
            }
        }
    }

    /// Rebalances `children[idx]` of internal node `id` if it underflowed.
    fn fix_underflow(&mut self, id: usize, idx: usize) {
        let min = ORDER / 2;
        let (child, child_len) = match &self.nodes[id] {
            Node::Internal { children, .. } => {
                let c = children[idx];
                (c, self.nodes[c].key_count())
            }
            Node::Leaf { .. } => unreachable!(),
        };
        if child_len >= min {
            return;
        }
        let sibling_count = match &self.nodes[id] {
            Node::Internal { children, .. } => children.len(),
            Node::Leaf { .. } => unreachable!(),
        };

        // Prefer borrowing from the left sibling, then the right; merge as
        // the last resort.
        if idx > 0 {
            let left = self.child_at(id, idx - 1);
            if self.nodes[left].key_count() > min {
                self.borrow_from_left(id, idx, left, child);
                return;
            }
        }
        if idx + 1 < sibling_count {
            let right = self.child_at(id, idx + 1);
            if self.nodes[right].key_count() > min {
                self.borrow_from_right(id, idx, child, right);
                return;
            }
        }
        if idx > 0 {
            let left = self.child_at(id, idx - 1);
            self.merge(id, idx - 1, left, child);
        } else if idx + 1 < sibling_count {
            let right = self.child_at(id, idx + 1);
            self.merge(id, idx, child, right);
        }
    }

    fn child_at(&self, id: usize, idx: usize) -> usize {
        match &self.nodes[id] {
            Node::Internal { children, .. } => children[idx],
            Node::Leaf { .. } => unreachable!(),
        }
    }

    fn borrow_from_left(&mut self, parent: usize, idx: usize, left: usize, child: usize) {
        self.ops.nodes_visited += 2;
        let old_sep = self.parent_key(parent, idx - 1);
        let (l, c) = index_two(&mut self.nodes, left, child);
        match (l, c) {
            (
                Node::Leaf {
                    keys: lk,
                    values: lv,
                },
                Node::Leaf {
                    keys: ck,
                    values: cv,
                },
            ) => {
                let k = lk.pop().expect("left has spare key");
                let v = lv.pop().expect("left has spare value");
                ck.insert(0, k);
                cv.insert(0, v);
                let sep = ck[0];
                self.set_parent_key(parent, idx - 1, sep);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: ck,
                    children: cc,
                },
            ) => {
                let moved_child = lc.pop().expect("left has spare child");
                let moved_key = lk.pop().expect("left has spare key");
                ck.insert(0, old_sep);
                cc.insert(0, moved_child);
                self.set_parent_key(parent, idx - 1, moved_key);
            }
            _ => unreachable!("siblings at the same level share kind"),
        }
    }

    fn borrow_from_right(&mut self, parent: usize, idx: usize, child: usize, right: usize) {
        self.ops.nodes_visited += 2;
        let old_sep = self.parent_key(parent, idx);
        let (c, r) = index_two(&mut self.nodes, child, right);
        match (c, r) {
            (
                Node::Leaf {
                    keys: ck,
                    values: cv,
                },
                Node::Leaf {
                    keys: rk,
                    values: rv,
                },
            ) => {
                ck.push(rk.remove(0));
                cv.push(rv.remove(0));
                let sep = rk[0];
                self.set_parent_key(parent, idx, sep);
            }
            (
                Node::Internal {
                    keys: ck,
                    children: cc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                ck.push(old_sep);
                cc.push(rc.remove(0));
                let new_sep = rk.remove(0);
                self.set_parent_key(parent, idx, new_sep);
            }
            _ => unreachable!("siblings at the same level share kind"),
        }
    }

    /// Merges `children[left_idx + 1]` into `children[left_idx]`.
    fn merge(&mut self, parent: usize, left_idx: usize, left: usize, right: usize) {
        self.ops.nodes_visited += 2;
        let sep = self.parent_key(parent, left_idx);
        let right_node = std::mem::replace(
            &mut self.nodes[right],
            Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            },
        );
        match (&mut self.nodes[left], right_node) {
            (
                Node::Leaf {
                    keys: lk,
                    values: lv,
                },
                Node::Leaf {
                    keys: mut rk,
                    values: mut rv,
                },
            ) => {
                lk.append(&mut rk);
                lv.append(&mut rv);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: mut rk,
                    children: mut rc,
                },
            ) => {
                lk.push(sep);
                lk.append(&mut rk);
                lc.append(&mut rc);
            }
            _ => unreachable!("siblings at the same level share kind"),
        }
        match &mut self.nodes[parent] {
            Node::Internal { keys, children } => {
                keys.remove(left_idx);
                children.remove(left_idx + 1);
            }
            Node::Leaf { .. } => unreachable!(),
        }
        self.release(right);
    }

    fn parent_key(&self, parent: usize, idx: usize) -> u64 {
        match &self.nodes[parent] {
            Node::Internal { keys, .. } => keys[idx],
            Node::Leaf { .. } => unreachable!(),
        }
    }

    fn set_parent_key(&mut self, parent: usize, idx: usize, key: u64) {
        match &mut self.nodes[parent] {
            Node::Internal { keys, .. } => keys[idx] = key,
            Node::Leaf { .. } => unreachable!(),
        }
    }

    /// Checks structural invariants; used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.check_node(self.root, true, None, None);
    }

    fn check_node(&self, id: usize, is_root: bool, lo: Option<u64>, hi: Option<u64>) -> usize {
        let check_bounds = |keys: &[u64]| {
            for w in keys.windows(2) {
                assert!(w[0] < w[1], "keys not strictly sorted");
            }
            if let Some(lo) = lo {
                assert!(keys.iter().all(|&k| k >= lo), "key below subtree bound");
            }
            if let Some(hi) = hi {
                assert!(keys.iter().all(|&k| k < hi), "key above subtree bound");
            }
        };
        match &self.nodes[id] {
            Node::Leaf { keys, values } => {
                assert_eq!(keys.len(), values.len());
                if !is_root {
                    assert!(keys.len() >= ORDER / 2, "leaf underflow: {}", keys.len());
                }
                assert!(keys.len() <= ORDER + 1);
                check_bounds(keys);
                1
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1);
                if !is_root {
                    assert!(keys.len() >= ORDER / 2, "internal underflow");
                } else {
                    assert!(!keys.is_empty(), "root internal without keys");
                }
                check_bounds(keys);
                let mut depth = None;
                for (i, &c) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    let d = self.check_node(c, false, clo, chi);
                    if let Some(prev) = depth {
                        assert_eq!(prev, d, "unbalanced leaves");
                    }
                    depth = Some(d);
                }
                depth.expect("internal node has children") + 1
            }
        }
    }
}

/// Borrows two distinct arena slots mutably.
fn index_two(nodes: &mut [Node], a: usize, b: usize) -> (&mut Node, &mut Node) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = nodes.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = nodes.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_search_small() {
        let mut t = BPlusTree::new();
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.insert(k, (k * 10) as u32), None);
        }
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.search(k), Some((k * 10) as u32));
        }
        assert_eq!(t.search(2), None);
        t.check_invariants();
    }

    #[test]
    fn insert_replaces() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 20), Some(10));
        assert_eq!(t.len(), 1);
        assert_eq!(t.search(1), Some(20));
    }

    #[test]
    fn grows_and_splits() {
        let mut t = BPlusTree::new();
        for k in 0..10_000u64 {
            t.insert(k.wrapping_mul(0x9e3779b9) % 100_000, k as u32);
        }
        t.check_invariants();
        assert!(t.height() >= 3, "height {}", t.height());
    }

    #[test]
    fn delete_with_rebalance() {
        let mut t = BPlusTree::new();
        let keys: Vec<u64> = (0..2000).map(|k| k * 7 % 5000).collect();
        for &k in &keys {
            t.insert(k, k as u32);
        }
        t.check_invariants();
        let mut removed = std::collections::HashSet::new();
        for &k in keys.iter().step_by(2) {
            if removed.insert(k) {
                assert_eq!(t.remove(k), Some(k as u32), "remove {k}");
            }
            t.check_invariants();
        }
        for &k in &keys {
            if removed.contains(&k) {
                assert_eq!(t.search(k), None);
            } else {
                assert_eq!(t.search(k), Some(k as u32));
            }
        }
    }

    #[test]
    fn delete_everything_shrinks_to_empty() {
        let mut t = BPlusTree::new();
        for k in 0..1000u64 {
            t.insert(k, k as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(t.remove(k), Some(k as u32));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants();
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = BPlusTree::new();
        t.insert(1, 1);
        assert_eq!(t.remove(2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ops_counters_track_work() {
        let mut t = BPlusTree::new();
        for k in 0..100u64 {
            t.insert(k, k as u32);
        }
        t.reset_ops();
        t.search(50);
        t.remove(50);
        let ops = t.ops();
        assert_eq!(ops.searches, 1);
        assert_eq!(ops.deletes, 1);
        assert!(ops.nodes_visited >= 2);
    }
}
