//! Per-stream temperature classification for tiered cache admission.
//!
//! HPDedup's observation (see `PAPERS.md`): in shared dedup infrastructure
//! the fingerprint cache is a contested resource, and streams differ wildly
//! in temporal locality. A stream whose duplicates arrive close together
//! ("hot") earns its DRAM residency back quickly; a stream whose duplicates
//! reference uniformly old content ("cold") evicts other streams' useful
//! entries without ever hitting its own. The [`TieredPolicy`] estimates
//! each stream's locality with a bounded reuse sketch over its most recent
//! fingerprints and classifies it [`Temperature::Hot`] or
//! [`Temperature::Cold`]; the system admits only hot-stream fingerprints
//! into the DRAM tier and routes cold-stream entries to the slow tier (the
//! table SSD behind [`TableCache::scrub_group`]), CARAM-style.
//!
//! Everything here is plain serial bookkeeping with no clocks and no
//! randomness, so classification decisions are byte-reproducible for a
//! given observation sequence — a requirement of the determinism contract
//! (`docs/OBSERVABILITY.md`).
//!
//! [`TableCache::scrub_group`]: crate::TableCache::scrub_group

use std::collections::{HashMap, VecDeque};

/// Admission tier assigned to a stream at one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Temperature {
    /// High temporal locality: admit into the DRAM tier inline.
    Hot,
    /// Low temporal locality: bypass DRAM, defer dedup to the scrubber.
    Cold,
}

/// Tunables for [`TieredPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieredPolicyConfig {
    /// Reuse-sketch capacity per stream, in recent fingerprint keys. A
    /// duplicate counts as "local" only if its previous occurrence is
    /// still inside this window.
    pub window: usize,
    /// Minimum locality ratio (windowed reuse hits / observations) for a
    /// stream to stay hot. `0.0` keeps every stream hot — byte-identical
    /// to the flat cache.
    pub hot_threshold: f64,
    /// Observations before a stream's classification is trusted; until
    /// then it is optimistically hot (a brand-new stream has produced no
    /// reuse evidence either way).
    pub min_observations: u64,
    /// Observations between decay steps: at each epoch boundary a
    /// stream's reuse counters halve, so classification tracks current
    /// behaviour instead of lifetime averages.
    pub epoch: u64,
}

impl Default for TieredPolicyConfig {
    /// Defaults tuned against the mixed-locality generator's measured
    /// steady state (hot streams ≈ 0.8 windowed reuse, cold streams
    /// ≈ 0.1, Write-L ≈ 0.2): a 0.3 threshold splits hot from cold with
    /// margin on both sides while sending low-locality single streams
    /// down the deferred path.
    fn default() -> Self {
        TieredPolicyConfig {
            window: 512,
            hot_threshold: 0.3,
            min_observations: 64,
            epoch: 2_048,
        }
    }
}

/// Bounded sliding-window membership sketch over fingerprint keys.
///
/// Remembers the last `window` keys; `observe` reports whether the new key
/// was already present (a short-reuse-distance duplicate) and slides the
/// window. Duplicate keys inside the window are reference-counted so a
/// key stays "recent" until its last occurrence ages out.
#[derive(Debug, Default)]
struct ReuseSketch {
    ring: VecDeque<u64>,
    counts: HashMap<u64, u32>,
}

impl ReuseSketch {
    fn observe(&mut self, key: u64, window: usize) -> bool {
        let recent = self.counts.contains_key(&key);
        self.ring.push_back(key);
        *self.counts.entry(key).or_insert(0) += 1;
        while self.ring.len() > window {
            let old = self.ring.pop_front().expect("ring not empty");
            if let Some(n) = self.counts.get_mut(&old) {
                *n -= 1;
                if *n == 0 {
                    self.counts.remove(&old);
                }
            }
        }
        recent
    }
}

/// Locality estimate for one stream.
#[derive(Debug, Default)]
struct StreamState {
    sketch: ReuseSketch,
    /// Lifetime observations (drives the optimism cutoff).
    observations: u64,
    /// Decayed observation count for the locality ratio.
    window_obs: u64,
    /// Decayed windowed-reuse hits.
    window_hits: u64,
}

impl StreamState {
    fn locality(&self) -> f64 {
        if self.window_obs == 0 {
            0.0
        } else {
            self.window_hits as f64 / self.window_obs as f64
        }
    }
}

/// Aggregate counters of a [`TieredPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierPolicyStats {
    /// Fingerprint observations fed to the policy.
    pub observations: u64,
    /// Observations classified hot.
    pub hot_observations: u64,
    /// Observations classified cold.
    pub cold_observations: u64,
}

/// Per-stream temperature classifier (see the module docs).
///
/// # Examples
///
/// ```
/// use fidr_cache::{Temperature, TieredPolicy, TieredPolicyConfig};
///
/// let mut policy = TieredPolicy::new(TieredPolicyConfig {
///     min_observations: 4,
///     hot_threshold: 0.5,
///     ..TieredPolicyConfig::default()
/// });
/// // A stream that always repeats the same key stays hot...
/// for _ in 0..32 {
///     assert_eq!(policy.observe(1, 0xfeed), Temperature::Hot);
/// }
/// // ...while a stream of all-distinct keys goes cold once trusted.
/// let mut last = Temperature::Hot;
/// for key in 0..32u64 {
///     last = policy.observe(2, key);
/// }
/// assert_eq!(last, Temperature::Cold);
/// ```
#[derive(Debug)]
pub struct TieredPolicy {
    cfg: TieredPolicyConfig,
    streams: HashMap<u64, StreamState>,
    stats: TierPolicyStats,
}

impl TieredPolicy {
    /// Creates a policy with the given tunables.
    pub fn new(cfg: TieredPolicyConfig) -> Self {
        TieredPolicy {
            cfg,
            streams: HashMap::new(),
            stats: TierPolicyStats::default(),
        }
    }

    /// The policy's tunables.
    pub fn config(&self) -> &TieredPolicyConfig {
        &self.cfg
    }

    /// Feeds one `(stream, fingerprint key)` observation and returns the
    /// stream's temperature for this request.
    ///
    /// The sketch update happens first, so the decision reflects the
    /// stream's behaviour *including* this request; with
    /// `hot_threshold == 0.0` the answer is always [`Temperature::Hot`].
    pub fn observe(&mut self, stream: u64, key: u64) -> Temperature {
        let state = self.streams.entry(stream).or_default();
        let hit = state.sketch.observe(key, self.cfg.window);
        state.observations += 1;
        state.window_obs += 1;
        state.window_hits += u64::from(hit);
        if state.window_obs >= self.cfg.epoch.max(1) {
            state.window_obs /= 2;
            state.window_hits /= 2;
        }
        let hot = state.observations < self.cfg.min_observations
            || state.locality() >= self.cfg.hot_threshold;
        self.stats.observations += 1;
        if hot {
            self.stats.hot_observations += 1;
            Temperature::Hot
        } else {
            self.stats.cold_observations += 1;
            Temperature::Cold
        }
    }

    /// The stream's current classification without recording an
    /// observation. Unknown streams are optimistically hot.
    pub fn temperature(&self, stream: u64) -> Temperature {
        match self.streams.get(&stream) {
            None => Temperature::Hot,
            Some(state) => {
                if state.observations < self.cfg.min_observations
                    || state.locality() >= self.cfg.hot_threshold
                {
                    Temperature::Hot
                } else {
                    Temperature::Cold
                }
            }
        }
    }

    /// Streams currently classified hot.
    pub fn hot_streams(&self) -> usize {
        self.streams
            .keys()
            .filter(|&&s| self.temperature(s) == Temperature::Hot)
            .count()
    }

    /// Streams currently classified cold.
    pub fn cold_streams(&self) -> usize {
        self.streams.len() - self.hot_streams()
    }

    /// Aggregate observation counters.
    pub fn stats(&self) -> TierPolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TieredPolicyConfig {
        TieredPolicyConfig {
            window: 16,
            hot_threshold: 0.3,
            min_observations: 8,
            epoch: 64,
        }
    }

    #[test]
    fn new_streams_start_hot() {
        let mut p = TieredPolicy::new(cfg());
        for key in 0..7u64 {
            assert_eq!(p.observe(9, key), Temperature::Hot, "key {key}");
        }
        assert_eq!(p.temperature(42), Temperature::Hot, "unknown stream");
    }

    #[test]
    fn scan_stream_goes_cold_and_reusing_stream_stays_hot() {
        let mut p = TieredPolicy::new(cfg());
        for i in 0..200u64 {
            p.observe(1, i % 4); // tight reuse loop
            p.observe(2, 1_000 + i); // pure scan, never repeats
        }
        assert_eq!(p.temperature(1), Temperature::Hot);
        assert_eq!(p.temperature(2), Temperature::Cold);
        assert_eq!(p.hot_streams(), 1);
        assert_eq!(p.cold_streams(), 1);
        let s = p.stats();
        assert_eq!(s.observations, 400);
        assert_eq!(s.hot_observations + s.cold_observations, 400);
    }

    #[test]
    fn reuse_beyond_the_window_does_not_count() {
        let mut p = TieredPolicy::new(cfg());
        // Period-32 reuse against a 16-deep sketch: every revisit has aged
        // out, so the stream is indistinguishable from a scan.
        for i in 0..400u64 {
            p.observe(3, i % 32);
        }
        assert_eq!(p.temperature(3), Temperature::Cold);
    }

    #[test]
    fn zero_threshold_keeps_everything_hot() {
        let mut p = TieredPolicy::new(TieredPolicyConfig {
            hot_threshold: 0.0,
            min_observations: 0,
            ..cfg()
        });
        for i in 0..500u64 {
            assert_eq!(p.observe(i % 5, i), Temperature::Hot);
        }
        assert_eq!(p.cold_streams(), 0);
        assert_eq!(p.stats().cold_observations, 0);
    }

    #[test]
    fn decay_lets_a_stream_change_phase() {
        let mut p = TieredPolicy::new(cfg());
        for i in 0..200u64 {
            p.observe(7, 5_000 + i); // cold phase: all distinct
        }
        assert_eq!(p.temperature(7), Temperature::Cold);
        for i in 0..400u64 {
            p.observe(7, i % 4); // hot phase: tight loop
        }
        assert_eq!(p.temperature(7), Temperature::Hot, "decay forgot the scan");
    }

    #[test]
    fn classification_is_deterministic() {
        let run = || {
            let mut p = TieredPolicy::new(cfg());
            (0..300u64)
                .map(|i| p.observe(i % 3, i * 7 % 40) == Temperature::Hot)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
