//! A single-pass, top-down B-tree with per-level node arenas — the
//! data-structure shape of the FPGA pipelined dynamic search tree [48]
//! that the Cache HW-Engine builds on (paper §6.3).
//!
//! Hardware pipelines cannot walk back up the tree: a request visits each
//! level exactly once. That forces the classic *preemptive* algorithms —
//! split any full node on the way down (so an insert never propagates
//! upward) and refill any minimal node on the way down (so a delete never
//! cascades) — implemented here over 4-ary internal nodes with FIDR's
//! 16-entry leaves (§6.3's modification: all internal levels fit on-chip,
//! only the leaf stage needs board DRAM).
//!
//! Nodes live in one arena per level, mirroring the per-stage memories of
//! the hardware; [`PipelinedTree::level_node_counts`] reports the
//! occupancy that sizes Table 5's on-chip memories.

/// Max keys in an internal (4-ary) node; full nodes split preemptively.
const INNER_MAX: usize = 3;
/// Max entries in a leaf (FIDR's 16-key leaves).
const LEAF_MAX: usize = 16;

#[derive(Debug, Clone, Default)]
struct Inner {
    keys: Vec<u64>,
    /// Children indices into the next level down (or the leaf arena).
    children: Vec<u32>,
}

#[derive(Debug, Clone, Default)]
struct Leaf {
    keys: Vec<u64>,
    values: Vec<u32>,
}

/// Arena with an intrusive free list.
#[derive(Debug, Clone, Default)]
struct Arena<T> {
    slots: Vec<T>,
    free: Vec<u32>,
}

impl<T: Default> Arena<T> {
    fn alloc(&mut self, value: T) -> u32 {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = value;
            i
        } else {
            self.slots.push(value);
            (self.slots.len() - 1) as u32
        }
    }

    fn release(&mut self, i: u32) {
        self.slots[i as usize] = T::default();
        self.free.push(i);
    }

    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// The pipelined top-down tree mapping `u64` → `u32`.
///
/// # Examples
///
/// ```
/// use fidr_cache::PipelinedTree;
///
/// let mut tree = PipelinedTree::new();
/// tree.insert(10, 1);
/// assert_eq!(tree.search(10), Some(1));
/// assert_eq!(tree.remove(10), Some(1));
/// assert!(tree.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedTree {
    /// `inner[h]` holds internal nodes at height `h + 1` above the
    /// leaves; children of `inner[0]` nodes are leaf indices.
    inner: Vec<Arena<Inner>>,
    leaves: Arena<Leaf>,
    /// Root: a leaf index when `height == 0`, else an index into
    /// `inner[height - 1]`.
    root: u32,
    /// Internal levels above the leaves.
    height: usize,
    len: usize,
}

impl Default for PipelinedTree {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelinedTree {
    /// Creates an empty tree (a single empty leaf).
    pub fn new() -> Self {
        let mut leaves = Arena::default();
        let root = leaves.alloc(Leaf::default());
        PipelinedTree {
            inner: Vec::new(),
            leaves,
            root,
            height: 0,
            len: 0,
        }
    }

    /// Stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pipeline stages (internal levels + the leaf stage).
    pub fn stages(&self) -> usize {
        self.height + 1
    }

    /// Live node count per level, root level first, leaves last — the
    /// per-stage memory occupancy of the hardware pipeline.
    pub fn level_node_counts(&self) -> Vec<usize> {
        let mut counts: Vec<usize> = self.inner.iter().rev().map(Arena::live).collect();
        counts.push(self.leaves.live());
        counts
    }

    fn child_index(keys: &[u64], key: u64) -> usize {
        keys.partition_point(|&k| k <= key)
    }

    /// Point lookup: one visit per level, top to bottom.
    pub fn search(&self, key: u64) -> Option<u32> {
        let mut idx = self.root;
        for h in (0..self.height).rev() {
            let node = &self.inner[h].slots[idx as usize];
            idx = node.children[Self::child_index(&node.keys, key)];
        }
        let leaf = &self.leaves.slots[idx as usize];
        leaf.keys.binary_search(&key).ok().map(|i| leaf.values[i])
    }

    /// Inserts `key` → `value` in a single downward pass, splitting any
    /// full node it passes; returns the previous value if present.
    pub fn insert(&mut self, key: u64, value: u32) -> Option<u32> {
        // Grow at the root first so the descent never needs to go back up.
        if self.root_is_full() {
            self.split_root();
        }

        let mut height = self.height;
        let mut idx = self.root;
        while height > 0 {
            let h = height - 1;
            let child_pos = {
                let node = &self.inner[h].slots[idx as usize];
                Self::child_index(&node.keys, key)
            };
            let child = self.inner[h].slots[idx as usize].children[child_pos];
            if self.node_is_full(h, child) {
                self.split_child(h, idx, child_pos);
                // The split may have shifted the key's child.
                let node = &self.inner[h].slots[idx as usize];
                let pos = Self::child_index(&node.keys, key);
                idx = node.children[pos];
            } else {
                idx = child;
            }
            height -= 1;
        }

        let leaf = &mut self.leaves.slots[idx as usize];
        match leaf.keys.binary_search(&key) {
            Ok(i) => Some(std::mem::replace(&mut leaf.values[i], value)),
            Err(i) => {
                leaf.keys.insert(i, key);
                leaf.values.insert(i, value);
                self.len += 1;
                None
            }
        }
    }

    fn root_is_full(&self) -> bool {
        if self.height == 0 {
            self.leaves.slots[self.root as usize].keys.len() >= LEAF_MAX
        } else {
            self.inner[self.height - 1].slots[self.root as usize]
                .keys
                .len()
                >= INNER_MAX
        }
    }

    /// Whether the child node at internal level `h`'s *lower* level is full.
    fn node_is_full(&self, h: usize, child: u32) -> bool {
        if h == 0 {
            self.leaves.slots[child as usize].keys.len() >= LEAF_MAX
        } else {
            self.inner[h - 1].slots[child as usize].keys.len() >= INNER_MAX
        }
    }

    /// Splits the full root, adding one level on top.
    fn split_root(&mut self) {
        if self.height == self.inner.len() {
            self.inner.push(Arena::default());
        }
        let old_root = self.root;
        let (sep, right) = if self.height == 0 {
            self.split_leaf(old_root)
        } else {
            self.split_inner(self.height - 1, old_root)
        };
        let new_root = self.inner[self.height].alloc(Inner {
            keys: vec![sep],
            children: vec![old_root, right],
        });
        self.root = new_root;
        self.height += 1;
    }

    /// Splits full child `children[child_pos]` of `parent` (at internal
    /// level `h`); the parent is guaranteed non-full.
    fn split_child(&mut self, h: usize, parent: u32, child_pos: usize) {
        let child = self.inner[h].slots[parent as usize].children[child_pos];
        let (sep, right) = if h == 0 {
            self.split_leaf(child)
        } else {
            self.split_inner(h - 1, child)
        };
        let parent = &mut self.inner[h].slots[parent as usize];
        parent.keys.insert(child_pos, sep);
        parent.children.insert(child_pos + 1, right);
    }

    /// Splits a full leaf 8/8; the separator is the right half's first
    /// key (B+ convention: keys stay in the leaves).
    fn split_leaf(&mut self, leaf: u32) -> (u64, u32) {
        let mid = LEAF_MAX / 2;
        let node = &mut self.leaves.slots[leaf as usize];
        let right_keys = node.keys.split_off(mid);
        let right_values = node.values.split_off(mid);
        let sep = right_keys[0];
        let right = self.leaves.alloc(Leaf {
            keys: right_keys,
            values: right_values,
        });
        (sep, right)
    }

    /// Splits a full internal node at level `h`, promoting its middle key.
    fn split_inner(&mut self, h: usize, node_idx: u32) -> (u64, u32) {
        let node = &mut self.inner[h].slots[node_idx as usize];
        debug_assert_eq!(node.keys.len(), INNER_MAX);
        let right_keys = node.keys.split_off(2);
        let right_children = node.children.split_off(2);
        let sep = node.keys.pop().expect("middle key");
        let right = self.inner[h].alloc(Inner {
            keys: right_keys,
            children: right_children,
        });
        (sep, right)
    }

    /// Removes `key` in a single downward pass, refilling any minimal
    /// internal node it passes; returns the value if the key existed.
    /// Leaves use relaxed deletion: an emptied leaf is unlinked, partially
    /// empty leaves are left as-is (the hardware's choice — leaf
    /// compaction would need a second pass).
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        'descent: loop {
            let mut height = self.height;
            let mut idx = self.root;
            let mut parent: Option<(usize, u32, usize)> = None; // (level, node, child_pos)

            while height > 0 {
                let h = height - 1;
                // Pre-fix: never descend into a minimal internal child.
                if h > 0 {
                    let child_pos = {
                        let node = &self.inner[h].slots[idx as usize];
                        Self::child_index(&node.keys, key)
                    };
                    let child = self.inner[h].slots[idx as usize].children[child_pos];
                    if self.inner[h - 1].slots[child as usize].keys.len() <= 1 {
                        let old_height = self.height;
                        self.refill_child(h, idx, child_pos);
                        if self.height < old_height {
                            // The root merged away beneath us; the old
                            // root slot is released, so restart from the
                            // new root (at most once per remove).
                            continue 'descent;
                        }
                    }
                }
                let node = &self.inner[h].slots[idx as usize];
                let child_pos = Self::child_index(&node.keys, key);
                let child = node.children[child_pos];
                parent = Some((h, idx, child_pos));
                idx = child;
                height -= 1;
            }

            let leaf = &mut self.leaves.slots[idx as usize];
            let i = match leaf.keys.binary_search(&key) {
                Ok(i) => i,
                Err(_) => return None,
            };
            leaf.keys.remove(i);
            let value = leaf.values.remove(i);
            self.len -= 1;

            if leaf.keys.is_empty() {
                if let Some((h, pnode, child_pos)) = parent {
                    self.unlink_child(h, pnode, child_pos);
                    self.leaves.release(idx);
                }
                // A root leaf just stays empty.
            }
            return Some(value);
        }
    }

    /// Gives the minimal child at `children[child_pos]` a second key by
    /// borrowing from a sibling or merging; the parent is guaranteed to
    /// have ≥ 2 keys (pre-fixed) or to be the root.
    fn refill_child(&mut self, h: usize, parent: u32, child_pos: usize) {
        let nchildren = self.inner[h].slots[parent as usize].children.len();
        let lower = h - 1;

        // Try borrowing from the left sibling.
        if child_pos > 0 {
            let left = self.inner[h].slots[parent as usize].children[child_pos - 1];
            if self.inner[lower].slots[left as usize].keys.len() > 1 {
                let (moved_key, moved_child) = {
                    let l = &mut self.inner[lower].slots[left as usize];
                    (
                        l.keys.pop().expect("spare"),
                        l.children.pop().expect("spare"),
                    )
                };
                let sep = std::mem::replace(
                    &mut self.inner[h].slots[parent as usize].keys[child_pos - 1],
                    moved_key,
                );
                let child = self.inner[h].slots[parent as usize].children[child_pos];
                let c = &mut self.inner[lower].slots[child as usize];
                c.keys.insert(0, sep);
                c.children.insert(0, moved_child);
                return;
            }
        }
        // Try borrowing from the right sibling.
        if child_pos + 1 < nchildren {
            let right = self.inner[h].slots[parent as usize].children[child_pos + 1];
            if self.inner[lower].slots[right as usize].keys.len() > 1 {
                let (moved_key, moved_child) = {
                    let r = &mut self.inner[lower].slots[right as usize];
                    (r.keys.remove(0), r.children.remove(0))
                };
                let sep = std::mem::replace(
                    &mut self.inner[h].slots[parent as usize].keys[child_pos],
                    moved_key,
                );
                let child = self.inner[h].slots[parent as usize].children[child_pos];
                let c = &mut self.inner[lower].slots[child as usize];
                c.keys.push(sep);
                c.children.push(moved_child);
                return;
            }
        }
        // Merge with a sibling (both at minimum: 1 key each + separator
        // = 3 keys, exactly INNER_MAX).
        let (left_pos, right_pos) = if child_pos > 0 {
            (child_pos - 1, child_pos)
        } else {
            (child_pos, child_pos + 1)
        };
        let left = self.inner[h].slots[parent as usize].children[left_pos];
        let right = self.inner[h].slots[parent as usize].children[right_pos];
        let sep = self.inner[h].slots[parent as usize].keys[left_pos];

        let right_node = std::mem::take(&mut self.inner[lower].slots[right as usize]);
        {
            let l = &mut self.inner[lower].slots[left as usize];
            l.keys.push(sep);
            l.keys.extend(right_node.keys);
            l.children.extend(right_node.children);
        }
        self.inner[lower].release(right);
        let p = &mut self.inner[h].slots[parent as usize];
        p.keys.remove(left_pos);
        p.children.remove(right_pos);

        // Root collapse: if the root lost its last key, the merged child
        // becomes the root and the pipeline loses a stage.
        if h == self.height - 1 && p.keys.is_empty() {
            let new_root = p.children[0];
            self.inner[h].release(self.root);
            self.root = new_root;
            self.height -= 1;
        }
    }

    /// Removes `children[child_pos]` (an emptied leaf) from its parent.
    fn unlink_child(&mut self, h: usize, parent: u32, child_pos: usize) {
        let p = &mut self.inner[h].slots[parent as usize];
        p.children.remove(child_pos);
        let key_pos = child_pos.saturating_sub(1);
        p.keys.remove(key_pos);

        if h == self.height - 1 && p.keys.is_empty() {
            let new_root = p.children[0];
            self.inner[h].release(self.root);
            self.root = new_root;
            self.height -= 1;
        }
    }

    /// Checks structural invariants (used by tests).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut total = 0usize;
        self.check_node(self.height, self.root, None, None, &mut total);
        assert_eq!(total, self.len, "entry count drifted");
    }

    fn check_node(
        &self,
        height: usize,
        idx: u32,
        lo: Option<u64>,
        hi: Option<u64>,
        total: &mut usize,
    ) {
        let in_bounds = |keys: &[u64]| {
            for w in keys.windows(2) {
                assert!(w[0] < w[1], "keys not strictly sorted");
            }
            if let Some(lo) = lo {
                assert!(keys.iter().all(|&k| k >= lo), "key below bound");
            }
            if let Some(hi) = hi {
                assert!(keys.iter().all(|&k| k < hi), "key above bound");
            }
        };
        if height == 0 {
            let leaf = &self.leaves.slots[idx as usize];
            assert!(leaf.keys.len() <= LEAF_MAX);
            assert_eq!(leaf.keys.len(), leaf.values.len());
            in_bounds(&leaf.keys);
            *total += leaf.keys.len();
        } else {
            let node = &self.inner[height - 1].slots[idx as usize];
            assert!(!node.keys.is_empty(), "internal node without keys");
            assert!(node.keys.len() <= INNER_MAX);
            assert_eq!(node.children.len(), node.keys.len() + 1);
            in_bounds(&node.keys);
            for (i, &c) in node.children.iter().enumerate() {
                let clo = if i == 0 { lo } else { Some(node.keys[i - 1]) };
                let chi = if i == node.keys.len() {
                    hi
                } else {
                    Some(node.keys[i])
                };
                self.check_node(height - 1, c, clo, chi, total);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_search_small() {
        let mut t = PipelinedTree::new();
        for k in [9u64, 1, 5, 3, 7] {
            assert_eq!(t.insert(k, (k * 2) as u32), None);
        }
        for k in [9u64, 1, 5, 3, 7] {
            assert_eq!(t.search(k), Some((k * 2) as u32));
        }
        assert_eq!(t.search(4), None);
        t.check_invariants();
    }

    #[test]
    fn grows_through_many_levels() {
        let mut t = PipelinedTree::new();
        for k in 0..20_000u64 {
            t.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k as u32);
        }
        t.check_invariants();
        assert!(t.stages() >= 4, "stages {}", t.stages());
        let counts = t.level_node_counts();
        assert_eq!(counts.len(), t.stages());
        // Each level fans out: deeper levels have more nodes.
        for w in counts.windows(2) {
            assert!(w[0] < w[1], "fan-out violated: {counts:?}");
        }
    }

    #[test]
    fn replace_keeps_len() {
        let mut t = PipelinedTree::new();
        t.insert(5, 1);
        assert_eq!(t.insert(5, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.search(5), Some(2));
    }

    #[test]
    fn delete_everything() {
        let mut t = PipelinedTree::new();
        let keys: Vec<u64> = (0..5_000).map(|k| k * 97 % 65_536).collect();
        let mut inserted = std::collections::HashSet::new();
        for &k in &keys {
            t.insert(k, k as u32);
            inserted.insert(k);
        }
        t.check_invariants();
        for &k in &keys {
            if inserted.remove(&k) {
                assert_eq!(t.remove(k), Some(k as u32), "remove {k}");
            } else {
                assert_eq!(t.remove(k), None);
            }
        }
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn interleaved_insert_delete_keeps_invariants() {
        let mut t = PipelinedTree::new();
        for round in 0..40u64 {
            for k in 0..200u64 {
                t.insert(k.wrapping_mul(31) + round * 7, k as u32);
            }
            for k in (0..200u64).step_by(3) {
                t.remove(k.wrapping_mul(31) + round * 7);
            }
            t.check_invariants();
        }
        assert!(!t.is_empty());
    }

    #[test]
    fn remove_from_empty_and_missing() {
        let mut t = PipelinedTree::new();
        assert_eq!(t.remove(1), None);
        t.insert(1, 1);
        assert_eq!(t.remove(2), None);
        assert_eq!(t.len(), 1);
    }
}
