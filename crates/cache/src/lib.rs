//! # fidr-cache
//!
//! Hash-PBN table caching for the FIDR reproduction — the subsystem behind
//! Observation #4 and ideas (c) of the paper: caching metadata tables needs
//! host-DRAM *capacity* for content but hardware help for *indexing*.
//!
//! * [`BPlusTree`] — from-scratch software index (the CIDR baseline's
//!   PALM-style tree, §7.1);
//! * [`HwTree`] — the FIDR Cache HW-Engine's pipelined FPGA tree with
//!   speculative concurrent updates and crash/replay (§5.5.1, Figure 13);
//! * [`LruList`] / [`FreeList`] — replacement machinery split between host
//!   and engine (§5.5, §6.3);
//! * [`TableCache`] — cache lines + dirty tracking over a pluggable
//!   [`CacheIndex`];
//! * [`ShardedTableCache`] — N independent hash-prefix-addressed shards,
//!   each with its own index engine, for the multi-worker pipeline;
//! * [`TieredPolicy`] — per-stream temperature classification (HPDedup)
//!   driving the DRAM-vs-slow-tier admission split, with the slow tier
//!   served by [`TableCache::scrub_group`].
//!
//! # Examples
//!
//! ```
//! use fidr_cache::{HwTree, HwTreeConfig, TableCache};
//! use fidr_ssd::{QueueLocation, TableSsd};
//!
//! let mut ssd = TableSsd::new(4096, QueueLocation::CacheEngine);
//! let mut cache = TableCache::new(128, HwTree::new(HwTreeConfig::default()));
//! let access = cache.access(99, &mut ssd)?;
//! assert!(!access.hit);
//! # Ok::<(), fidr_ssd::TableSsdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod hwtree;
mod lru;
mod pipelined;
mod priority_lru;
mod sharded;
mod table_cache;
mod tiered;

pub use btree::{BPlusTree, IndexOps};
pub use hwtree::{HwTree, HwTreeConfig, HwTreeStats};
pub use lru::{FreeList, LruList};
pub use pipelined::PipelinedTree;
pub use priority_lru::{Priority, PriorityLruCache, TenantStats};
pub use sharded::ShardedTableCache;
pub use table_cache::{Access, CacheIndex, CacheStats, ScrubGroup, ScrubResult, TableCache};
pub use tiered::{Temperature, TierPolicyStats, TieredPolicy, TieredPolicyConfig};
