//! Read-modify-write analysis for large chunking (paper §3.1, Figure 3).
//!
//! With large (e.g. 32-KB) chunks, a stream of 4-KB client writes rarely
//! covers a whole chunk, so the deduplication module must *fetch the missing
//! 4-KB blocks from the SSDs, form the large chunk, deduplicate it, and — if
//! unique — write the whole chunk back*. On the paper's mail and webVM
//! traces this inflates IO by up to 17.5× and additionally degrades
//! duplicate detection (a large chunk is a duplicate only if *all* its
//! constituent blocks match). This module reproduces that simulation.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use fidr_hash::fnv1a_u64;

/// One trace record: a 4-KB block write with an abstract content identity.
///
/// Two writes with equal `content_id` carry identical bytes; the RMW
/// analysis only needs identity, not payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockWrite {
    /// 4-KB logical block address.
    pub lba: u64,
    /// Abstract content identity of the 4-KB payload.
    pub content_id: u64,
}

/// Outcome of replaying a trace under a given chunking granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkingReport {
    /// Chunking granularity in 4-KB blocks (1 = fine-grain, 8 = 32 KB).
    pub chunk_blocks: usize,
    /// 4-KB blocks read back from SSD to complete partial chunks.
    pub rmw_read_blocks: u64,
    /// 4-KB blocks written to SSD (whole chunks for unique data).
    pub write_blocks: u64,
    /// Chunks detected as duplicates (no write needed).
    pub dedup_hits: u64,
    /// Chunks that had to be written.
    pub unique_chunks: u64,
}

impl ChunkingReport {
    /// Total 4-KB-block IO traffic (reads + writes) to the data SSDs.
    pub fn total_io_blocks(&self) -> u64 {
        self.rmw_read_blocks + self.write_blocks
    }

    /// Fraction of chunk dedup lookups that hit.
    pub fn dedup_ratio(&self) -> f64 {
        let total = self.dedup_hits + self.unique_chunks;
        if total == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / total as f64
        }
    }
}

/// Content identity of a never-written (cold) block: unique per LBA.
fn cold_content(lba: u64) -> u64 {
    // Tag bit 63 so cold content can never collide with trace content ids
    // (which the workload generator keeps in the low 62 bits).
    fnv1a_u64(lba) | (1 << 63)
}

/// Replays `trace` through a deduplicating store with `chunk_blocks`-block
/// chunking and a `buffer_blocks`-block request buffer (the paper uses a
/// 4-MB buffer = 1024 blocks).
///
/// Returns the IO accounting of Figure 3. `chunk_blocks == 1` models the
/// paper's fine-grain 4-KB chunking (no read-modify-write);
/// `chunk_blocks == 8` models CIDR's 32-KB chunking.
///
/// # Panics
///
/// Panics if `chunk_blocks` or `buffer_blocks` is zero.
pub fn replay_chunking(
    trace: &[BlockWrite],
    chunk_blocks: usize,
    buffer_blocks: usize,
) -> ChunkingReport {
    assert!(chunk_blocks > 0, "chunk_blocks must be non-zero");
    assert!(buffer_blocks > 0, "buffer_blocks must be non-zero");

    let mut report = ChunkingReport {
        chunk_blocks,
        ..ChunkingReport::default()
    };

    // Store state: last written content per block, and the dedup index of
    // chunk signatures already stored.
    let mut block_content: HashMap<u64, u64> = HashMap::new();
    let mut dedup_index: HashSet<u64> = HashSet::new();

    for batch in trace.chunks(buffer_blocks) {
        // Coalesce writes in the buffer: last write to an LBA wins, and the
        // buffer supplies blocks without SSD reads.
        let mut buffered: HashMap<u64, u64> = HashMap::with_capacity(batch.len());
        let mut touched_chunks: Vec<u64> = Vec::new();
        for w in batch {
            if let Entry::Vacant(_) = buffered.entry(w.lba) {
                // new LBA in buffer
            }
            buffered.insert(w.lba, w.content_id);
            let cidx = w.lba / chunk_blocks as u64;
            if !touched_chunks.contains(&cidx) {
                touched_chunks.push(cidx);
            }
        }

        for cidx in touched_chunks {
            let base = cidx * chunk_blocks as u64;
            // Assemble the chunk content: buffered blocks are free; other
            // blocks are fetched from the SSD (read-modify-write traffic).
            let mut sig: u64 = 0xcbf2_9ce4_8422_2325;
            for off in 0..chunk_blocks as u64 {
                let lba = base + off;
                let content = if let Some(&c) = buffered.get(&lba) {
                    c
                } else {
                    if chunk_blocks > 1 {
                        report.rmw_read_blocks += 1;
                    }
                    *block_content.get(&lba).unwrap_or(&cold_content(lba))
                };
                sig ^= fnv1a_u64(content.wrapping_add(off));
                sig = sig.wrapping_mul(0x100_0000_01b3);
            }

            if dedup_index.contains(&sig) {
                report.dedup_hits += 1;
            } else {
                dedup_index.insert(sig);
                report.unique_chunks += 1;
                report.write_blocks += chunk_blocks as u64;
            }

            // Commit buffered blocks of this chunk to the store state.
            for off in 0..chunk_blocks as u64 {
                let lba = base + off;
                if let Some(&c) = buffered.get(&lba) {
                    block_content.insert(lba, c);
                }
            }
        }
    }

    report
}

/// Convenience: IO amplification of `large` chunking relative to
/// fine-grain 4-KB chunking on the same trace.
pub fn io_amplification(trace: &[BlockWrite], large_chunk_blocks: usize) -> f64 {
    let fine = replay_chunking(trace, 1, 1024);
    let large = replay_chunking(trace, large_chunk_blocks, 1024);
    large.total_io_blocks() as f64 / fine.total_io_blocks().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_trace(n: u64) -> Vec<BlockWrite> {
        (0..n)
            .map(|i| BlockWrite {
                lba: i,
                content_id: i + 1,
            })
            .collect()
    }

    #[test]
    fn fine_grain_has_no_rmw_reads() {
        let r = replay_chunking(&seq_trace(4096), 1, 1024);
        assert_eq!(r.rmw_read_blocks, 0);
        assert_eq!(r.write_blocks, 4096);
        assert_eq!(r.unique_chunks, 4096);
    }

    #[test]
    fn sequential_full_chunks_have_no_rmw() {
        // Fully covered 8-block chunks inside one buffer: no missing blocks.
        let r = replay_chunking(&seq_trace(1024), 8, 1024);
        assert_eq!(r.rmw_read_blocks, 0);
        assert_eq!(r.write_blocks, 1024);
    }

    #[test]
    fn sparse_writes_trigger_rmw() {
        // One 4-KB write per 32-KB chunk: 7 blocks fetched per chunk.
        let trace: Vec<BlockWrite> = (0..100)
            .map(|i| BlockWrite {
                lba: i * 8,
                content_id: i + 1,
            })
            .collect();
        let r = replay_chunking(&trace, 8, 1024);
        assert_eq!(r.rmw_read_blocks, 700);
        assert_eq!(r.write_blocks, 800);
        // Amplification vs fine-grain (100 block writes): 15x.
        assert!((io_amplification(&trace, 8) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_blocks_dedup_at_fine_grain() {
        let mut trace = seq_trace(512);
        // Re-write the same content at the same LBAs (e.g. a re-sync).
        trace.extend(seq_trace(512));
        let r = replay_chunking(&trace, 1, 256);
        assert_eq!(r.dedup_hits, 512);
        assert_eq!(r.unique_chunks, 512);
    }

    #[test]
    fn large_chunking_degrades_dedup() {
        // Duplicate content, but shifted misalignment within chunks breaks
        // large-chunk signatures while fine-grain still matches content.
        let a: Vec<BlockWrite> = (0..256)
            .map(|i| BlockWrite {
                lba: i,
                content_id: 1000 + i,
            })
            .collect();
        // Same contents written at lba+4 (misaligned by half a large chunk).
        let b: Vec<BlockWrite> = (0..256)
            .map(|i| BlockWrite {
                lba: i + 4,
                content_id: 1000 + i,
            })
            .collect();
        let mut trace = a;
        trace.extend(b);

        let fine = replay_chunking(&trace, 1, 1024);
        let large = replay_chunking(&trace, 8, 1024);
        // Fine-grain: content-addressed, position-independent within our
        // model? No — signature includes offset only within chunk, and for
        // chunk_blocks=1 offset is always 0, so duplicates by content dedup.
        assert!(fine.dedup_hits > 0);
        assert_eq!(large.dedup_hits, 0, "misaligned dup must not dedup at 32K");
    }

    #[test]
    fn buffer_coalesces_rewrites() {
        // Two writes to the same LBA in one buffer: one chunk op.
        let trace = vec![
            BlockWrite {
                lba: 0,
                content_id: 1,
            },
            BlockWrite {
                lba: 0,
                content_id: 2,
            },
        ];
        let r = replay_chunking(&trace, 1, 1024);
        assert_eq!(r.unique_chunks + r.dedup_hits, 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_chunk_blocks_panics() {
        replay_chunking(&[], 0, 1);
    }
}
