//! Fixed-size chunking of client write requests.
//!
//! "Due to high computational overheads of variable sized chunking, we use
//! fixed sized small (4-KB) chunking in this paper" (§2.1.1). The chunker
//! splits an aligned client write into [`Chunk`]s, each carrying its LBA and
//! payload; unaligned or ragged requests are reported as errors so callers
//! can route them through a read-modify-write path.

use crate::types::{Lba, CHUNK_SIZE};
use bytes::Bytes;
use std::fmt;

/// One fixed-size chunk of a client write request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// The logical address this chunk is written to.
    pub lba: Lba,
    /// The chunk payload (`chunk_size` bytes).
    pub data: Bytes,
}

/// Error returned for requests the fixed chunker cannot split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkingError {
    /// Request length is not a multiple of the chunk size.
    RaggedLength {
        /// Bytes in the request.
        len: usize,
        /// Configured chunk size.
        chunk_size: usize,
    },
    /// Request is empty.
    Empty,
}

impl fmt::Display for ChunkingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkingError::RaggedLength { len, chunk_size } => write!(
                f,
                "request of {len} bytes is not a multiple of the {chunk_size}-byte chunk size"
            ),
            ChunkingError::Empty => write!(f, "empty write request"),
        }
    }
}

impl std::error::Error for ChunkingError {}

/// Splits chunk-aligned client writes into fixed-size chunks.
///
/// # Examples
///
/// ```
/// use fidr_chunk::{FixedChunker, Lba};
///
/// let chunker = FixedChunker::new(4096);
/// let data = bytes::Bytes::from(vec![0u8; 8192]);
/// let chunks = chunker.split(Lba(10), data)?;
/// assert_eq!(chunks.len(), 2);
/// assert_eq!(chunks[1].lba, Lba(11));
/// # Ok::<(), fidr_chunk::ChunkingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedChunker {
    chunk_size: usize,
}

impl Default for FixedChunker {
    fn default() -> Self {
        FixedChunker::new(CHUNK_SIZE)
    }
}

impl FixedChunker {
    /// Creates a chunker with the given chunk size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        FixedChunker { chunk_size }
    }

    /// The configured chunk size in bytes.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Splits `data` starting at logical block `start` into chunks.
    ///
    /// `start` is expressed in *this chunker's* block units. Splitting is
    /// zero-copy: each chunk is a [`Bytes`] slice of the request buffer.
    ///
    /// # Errors
    ///
    /// [`ChunkingError::Empty`] for empty requests and
    /// [`ChunkingError::RaggedLength`] when the request is not a whole
    /// number of chunks.
    pub fn split(&self, start: Lba, data: Bytes) -> Result<Vec<Chunk>, ChunkingError> {
        if data.is_empty() {
            return Err(ChunkingError::Empty);
        }
        if !data.len().is_multiple_of(self.chunk_size) {
            return Err(ChunkingError::RaggedLength {
                len: data.len(),
                chunk_size: self.chunk_size,
            });
        }
        let n = data.len() / self.chunk_size;
        let mut chunks = Vec::with_capacity(n);
        for i in 0..n {
            let slice = data.slice(i * self.chunk_size..(i + 1) * self.chunk_size);
            chunks.push(Chunk {
                lba: Lba(start.0 + i as u64),
                data: slice,
            });
        }
        Ok(chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_aligned_request() {
        let c = FixedChunker::new(4096);
        let data = Bytes::from(vec![1u8; 4096 * 3]);
        let chunks = c.split(Lba(100), data).unwrap();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].lba, Lba(100));
        assert_eq!(chunks[2].lba, Lba(102));
        assert!(chunks.iter().all(|ch| ch.data.len() == 4096));
    }

    #[test]
    fn rejects_ragged() {
        let c = FixedChunker::default();
        let err = c.split(Lba(0), Bytes::from(vec![0u8; 5000])).unwrap_err();
        assert!(matches!(err, ChunkingError::RaggedLength { len: 5000, .. }));
    }

    #[test]
    fn rejects_empty() {
        let c = FixedChunker::default();
        assert_eq!(
            c.split(Lba(0), Bytes::new()).unwrap_err(),
            ChunkingError::Empty
        );
    }

    #[test]
    fn zero_copy_slices_share_content() {
        let c = FixedChunker::new(4);
        let data = Bytes::from_static(b"aaaabbbb");
        let chunks = c.split(Lba(0), data).unwrap();
        assert_eq!(&chunks[0].data[..], b"aaaa");
        assert_eq!(&chunks[1].data[..], b"bbbb");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_chunk_size_panics() {
        FixedChunker::new(0);
    }
}
