//! # fidr-chunk
//!
//! Chunking layer of the FIDR data-reduction system: the address-space
//! newtypes ([`Lba`], [`Pbn`], [`Pba`]), the fine-grain [`FixedChunker`]
//! (the paper's 4-KB chunking, §2.1.1/§3.1), the [`replay_chunking`]
//! read-modify-write analysis behind Figure 3, and a content-defined
//! [`GearChunker`] extension for measuring the variable-size alternative.
//!
//! # Examples
//!
//! ```
//! use fidr_chunk::{FixedChunker, Lba};
//!
//! let chunker = FixedChunker::default(); // 4 KB
//! let request = bytes::Bytes::from(vec![3u8; 4096 * 4]);
//! let chunks = chunker.split(Lba(0), request)?;
//! assert_eq!(chunks.len(), 4);
//! # Ok::<(), fidr_chunk::ChunkingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdc;
mod chunker;
mod rmw;
mod types;

pub use cdc::{CutPoint, GearChunker};
pub use chunker::{Chunk, ChunkingError, FixedChunker};
pub use rmw::{io_amplification, replay_chunking, BlockWrite, ChunkingReport};
pub use types::{Lba, Pba, Pbn, CHUNK_SIZE};
