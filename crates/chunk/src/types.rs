//! Address and size newtypes shared across the storage pipeline.
//!
//! The paper's metadata model (§2.1.3–§2.1.4) distinguishes three address
//! spaces: the client's logical block address (LBA), the chunk physical
//! block number (PBN, an index into the unique-chunk space), and the
//! physical block address (PBA = container + offset) on the data SSDs.
//! Newtypes keep them from being mixed up at compile time.

use std::fmt;

/// The fine-grain chunk size the paper settles on (§3.1): 4 KB.
pub const CHUNK_SIZE: usize = 4096;

/// A client logical block address, in units of [`CHUNK_SIZE`] blocks.
///
/// # Examples
///
/// ```
/// use fidr_chunk::Lba;
///
/// let lba = Lba(7);
/// assert_eq!(lba.byte_offset(), 7 * 4096);
/// assert_eq!(lba.next(), Lba(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Lba(pub u64);

impl Lba {
    /// Byte offset of this block in the client address space.
    pub fn byte_offset(&self) -> u64 {
        self.0 * CHUNK_SIZE as u64
    }

    /// The following block address.
    pub fn next(&self) -> Lba {
        Lba(self.0 + 1)
    }
}

impl fmt::Display for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LBA#{}", self.0)
    }
}

/// A physical block number: the index of a unique chunk in the deduplicated
/// store. The Hash-PBN table maps fingerprints to PBNs (§2.1.3, "6 bytes for
/// PBN" — we use `u64` in memory and 6 bytes in the serialized entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pbn(pub u64);

impl Pbn {
    /// Largest value representable in the 6-byte on-SSD encoding.
    pub const MAX_ENCODABLE: u64 = (1 << 48) - 1;
}

impl fmt::Display for Pbn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PBN#{}", self.0)
    }
}

/// A physical block address on the data SSDs: which container holds the
/// compressed chunk, the byte offset inside it, and the compressed size
/// (§2.1.4's PBN→PBA mapping entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pba {
    /// Container sequence number on the data SSDs.
    pub container: u64,
    /// Byte offset of the compressed chunk inside the container.
    pub offset: u32,
    /// Compressed size in bytes.
    pub compressed_len: u32,
}

impl fmt::Display for Pba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PBA(c{}+{}:{}B)",
            self.container, self.offset, self.compressed_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lba_arithmetic() {
        assert_eq!(Lba(0).byte_offset(), 0);
        assert_eq!(Lba(2).next(), Lba(3));
        assert_eq!(Lba(1).byte_offset(), 4096);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Lba(5).to_string(), "LBA#5");
        assert_eq!(Pbn(9).to_string(), "PBN#9");
        let pba = Pba {
            container: 1,
            offset: 64,
            compressed_len: 2048,
        };
        assert_eq!(pba.to_string(), "PBA(c1+64:2048B)");
    }

    #[test]
    fn pbn_encodable_bound() {
        assert_eq!(Pbn::MAX_ENCODABLE, 0xffff_ffff_ffff);
    }
}
