//! Content-defined chunking (gear hash), provided as an extension.
//!
//! The paper notes commercial systems use either "fixed sized small
//! chunking" or "variable sized chunking" and picks fixed 4-KB for its low
//! computational cost (§2.1.1). This module implements the variable-size
//! alternative so the trade-off can be measured: a gear-based rolling hash
//! declares a chunk boundary whenever the rolling value's low `mask_bits`
//! bits are zero, with min/max clamps.

use fidr_hash::fnv1a_u64;

/// A variable-size chunk boundary produced by [`GearChunker::split`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutPoint {
    /// Byte offset where the chunk starts.
    pub start: usize,
    /// Chunk length in bytes.
    pub len: usize,
}

/// Gear-hash content-defined chunker.
///
/// # Examples
///
/// ```
/// use fidr_chunk::GearChunker;
///
/// let chunker = GearChunker::new(2048, 4096, 8192);
/// let data = vec![0xabu8; 100_000];
/// let cuts = chunker.split(&data);
/// let total: usize = cuts.iter().map(|c| c.len).sum();
/// assert_eq!(total, data.len());
/// ```
#[derive(Debug, Clone)]
pub struct GearChunker {
    min_size: usize,
    target_size: usize,
    max_size: usize,
    mask: u64,
    gear: Box<[u64; 256]>,
}

impl GearChunker {
    /// Creates a chunker with the given minimum, target (average) and
    /// maximum chunk sizes in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_size <= target_size <= max_size` and
    /// `target_size` is a power of two.
    pub fn new(min_size: usize, target_size: usize, max_size: usize) -> Self {
        assert!(min_size > 0, "min_size must be non-zero");
        assert!(
            min_size <= target_size && target_size <= max_size,
            "need min <= target <= max"
        );
        assert!(
            target_size.is_power_of_two(),
            "target_size must be a power of two"
        );
        let mut gear = Box::new([0u64; 256]);
        for (i, g) in gear.iter_mut().enumerate() {
            *g = fnv1a_u64(0x9e37_79b9 ^ i as u64);
        }
        GearChunker {
            min_size,
            target_size,
            max_size,
            mask: (target_size as u64 - 1) << 16,
            gear,
        }
    }

    /// The configured average chunk size.
    pub fn target_size(&self) -> usize {
        self.target_size
    }

    /// Splits `data` into content-defined chunks covering every byte.
    pub fn split(&self, data: &[u8]) -> Vec<CutPoint> {
        let mut cuts = Vec::new();
        let mut start = 0usize;
        while start < data.len() {
            let len = self.next_cut(&data[start..]);
            cuts.push(CutPoint { start, len });
            start += len;
        }
        cuts
    }

    /// Length of the next chunk starting at `data[0]`.
    fn next_cut(&self, data: &[u8]) -> usize {
        let n = data.len();
        if n <= self.min_size {
            return n;
        }
        let limit = n.min(self.max_size);
        let mut h: u64 = 0;
        for (i, &b) in data[..limit].iter().enumerate() {
            h = (h << 1).wrapping_add(self.gear[b as usize]);
            if i >= self.min_size && (h & self.mask) == 0 {
                return i + 1;
            }
        }
        limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidr_hash::Fingerprint;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn covers_all_bytes_in_order() {
        let c = GearChunker::new(512, 2048, 8192);
        let data = noise(100_000, 7);
        let cuts = c.split(&data);
        let mut expect = 0usize;
        for cut in &cuts {
            assert_eq!(cut.start, expect);
            assert!(cut.len > 0);
            expect += cut.len;
        }
        assert_eq!(expect, data.len());
    }

    #[test]
    fn respects_min_max() {
        let c = GearChunker::new(512, 2048, 8192);
        let data = noise(200_000, 11);
        let cuts = c.split(&data);
        for cut in &cuts[..cuts.len() - 1] {
            assert!(cut.len >= 512 && cut.len <= 8192, "len {}", cut.len);
        }
    }

    #[test]
    fn average_near_target() {
        let c = GearChunker::new(256, 2048, 16384);
        let data = noise(1_000_000, 13);
        let cuts = c.split(&data);
        let avg = data.len() as f64 / cuts.len() as f64;
        assert!(
            avg > 1024.0 && avg < 4096.0,
            "average chunk {avg} not near 2048"
        );
    }

    #[test]
    fn insertion_shifts_limited_chunks() {
        // The CDC selling point: a byte inserted early only reshapes nearby
        // chunks; most chunk fingerprints survive.
        let c = GearChunker::new(256, 1024, 4096);
        let base = noise(200_000, 17);
        let mut shifted = base.clone();
        shifted.insert(1000, 0x55);

        let fps = |d: &[u8]| -> Vec<Fingerprint> {
            c.split(d)
                .iter()
                .map(|cut| Fingerprint::of(&d[cut.start..cut.start + cut.len]))
                .collect()
        };
        let a = fps(&base);
        let b = fps(&shifted);
        let a_set: std::collections::HashSet<_> = a.iter().collect();
        let survived = b.iter().filter(|f| a_set.contains(f)).count();
        assert!(
            survived as f64 / b.len() as f64 > 0.8,
            "only {survived}/{} chunks survived",
            b.len()
        );
    }

    #[test]
    fn empty_input() {
        let c = GearChunker::new(512, 2048, 8192);
        assert!(c.split(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_target_panics() {
        GearChunker::new(100, 3000, 8000);
    }
}
