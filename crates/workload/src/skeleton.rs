//! Trace skeletons in the spirit of the FIU mail and webVM traces.
//!
//! The paper's Figure 3 replays "write requests of two real traces (mail
//! server and webVM)" through large-chunking deduplication. The public FIU
//! traces carry addresses and content *hashes*, not payloads (§7.1
//! footnote), so the paper — and this reproduction — rebuilds content
//! identity synthetically. These skeletons reproduce the access-pattern
//! character the figure depends on: the mail server issues scattered 4-KB
//! writes with heavy content duplication; the webVM trace mixes sequential
//! runs with random updates.

use fidr_chunk::BlockWrite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A mail-server-like write trace: single-block writes scattered over a
/// mailbox working set, with high content duplication (delivery of the
/// same message to many mailboxes).
pub fn mail_trace(ops: usize, seed: u64) -> Vec<BlockWrite> {
    let mut rng = StdRng::seed_from_u64(seed);
    let working_set: u64 = (ops as u64).max(1024);
    let mut trace = Vec::with_capacity(ops);
    let mut next_content = 1u64;
    let mut recent: Vec<u64> = Vec::new();
    while trace.len() < ops {
        // Mostly isolated 4-KB writes at random mailbox offsets; short
        // bursts (2–4 blocks) occasionally.
        let burst = if rng.gen_bool(0.15) {
            rng.gen_range(2..=4)
        } else {
            1
        };
        let base = rng.gen_range(0..working_set);
        for i in 0..burst {
            if trace.len() >= ops {
                break;
            }
            // ~40 % duplicate content (message bodies fan out to mailboxes).
            let content = if !recent.is_empty() && rng.gen_bool(0.4) {
                recent[rng.gen_range(0..recent.len())]
            } else {
                let c = next_content;
                next_content += 1;
                recent.push(c);
                if recent.len() > 2048 {
                    recent.remove(0);
                }
                c
            };
            trace.push(BlockWrite {
                lba: base + i,
                content_id: content,
            });
        }
    }
    trace
}

/// A webVM-like write trace: longer sequential runs (VM image regions)
/// interleaved with random small updates; moderate duplication.
pub fn webvm_trace(ops: usize, seed: u64) -> Vec<BlockWrite> {
    let mut rng = StdRng::seed_from_u64(seed);
    let working_set: u64 = (ops as u64 * 2).max(1024);
    let mut trace = Vec::with_capacity(ops);
    let mut next_content = 1u64;
    let mut recent: Vec<u64> = Vec::new();
    while trace.len() < ops {
        if rng.gen_bool(0.5) {
            // Sequential run of 8–32 blocks, aligned-ish.
            let len = rng.gen_range(8..=32);
            let base = rng.gen_range(0..working_set.saturating_sub(len)) & !7;
            for i in 0..len {
                if trace.len() >= ops {
                    break;
                }
                let content = if !recent.is_empty() && rng.gen_bool(0.4) {
                    recent[rng.gen_range(0..recent.len())]
                } else {
                    let c = next_content;
                    next_content += 1;
                    recent.push(c);
                    if recent.len() > 2048 {
                        recent.remove(0);
                    }
                    c
                };
                trace.push(BlockWrite {
                    lba: base + i,
                    content_id: content,
                });
            }
        } else {
            // Random single-block update.
            let c = next_content;
            next_content += 1;
            trace.push(BlockWrite {
                lba: rng.gen_range(0..working_set),
                content_id: c,
            });
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidr_chunk::{io_amplification, replay_chunking};

    #[test]
    fn traces_have_requested_length() {
        assert_eq!(mail_trace(5000, 1).len(), 5000);
        assert_eq!(webvm_trace(5000, 1).len(), 5000);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(mail_trace(500, 7), mail_trace(500, 7));
        assert_ne!(mail_trace(500, 7), mail_trace(500, 8));
    }

    #[test]
    fn mail_suffers_large_chunking_badly() {
        // Figure 3: the mail trace sees the big (up to ~17.5×) IO blow-up.
        let trace = mail_trace(20_000, 42);
        let amp = io_amplification(&trace, 8);
        assert!(amp > 6.0, "mail 32-KB amplification only {amp:.1}x");
    }

    #[test]
    fn webvm_amplification_is_lower_but_real() {
        let mail = io_amplification(&mail_trace(20_000, 42), 8);
        let web = io_amplification(&webvm_trace(20_000, 42), 8);
        assert!(web > 1.5, "webvm amplification {web:.1}x");
        assert!(
            web < mail,
            "webvm ({web:.1}x) should undercut mail ({mail:.1}x)"
        );
    }

    #[test]
    fn mail_dedups_well_at_fine_grain() {
        let trace = mail_trace(20_000, 42);
        let fine = replay_chunking(&trace, 1, 1024);
        assert!(
            fine.dedup_ratio() > 0.3,
            "fine-grain dedup {:.2}",
            fine.dedup_ratio()
        );
    }
}
