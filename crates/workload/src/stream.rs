//! Request stream generation from a [`WorkloadSpec`].
//!
//! Chunk payloads are synthesised lazily per request (so multi-GB
//! workloads never materialise) and deterministically per content id, so a
//! duplicate write reproduces byte-identical content — the property the
//! whole deduplication pipeline keys on.

use crate::spec::WorkloadSpec;
use bytes::Bytes;
use fidr_chunk::{Lba, CHUNK_SIZE};
use fidr_compress::ContentGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A 4-KB write of `data` at `lba`.
    Write {
        /// Target logical block.
        lba: Lba,
        /// Chunk payload ([`CHUNK_SIZE`] bytes).
        data: Bytes,
    },
    /// A 4-KB read at `lba`.
    Read {
        /// Logical block to read.
        lba: Lba,
    },
}

/// Streaming workload generator.
///
/// # Examples
///
/// ```
/// use fidr_workload::{Workload, WorkloadSpec, Request};
///
/// let mut wl = Workload::new(WorkloadSpec::write_h(100));
/// let reqs: Vec<Request> = wl.by_ref().collect();
/// assert_eq!(reqs.len(), 100);
/// assert!(reqs.iter().all(|r| matches!(r, Request::Write { .. })));
/// ```
#[derive(Debug)]
pub struct Workload {
    spec: WorkloadSpec,
    rng: StdRng,
    gen: ContentGenerator,
    /// Content ids issued so far; index order is issue order.
    contents: Vec<u64>,
    next_content: u64,
    /// LBAs that have been written (valid read targets).
    written: Vec<Lba>,
    emitted: usize,
}

impl Workload {
    /// Creates a generator for `spec`.
    pub fn new(spec: WorkloadSpec) -> Self {
        let rng = StdRng::seed_from_u64(spec.seed);
        let gen = ContentGenerator::new(spec.comp_ratio);
        // Seed the content space so the very first duplicates have targets.
        Workload {
            rng,
            gen,
            contents: Vec::new(),
            next_content: spec.content_base + 1,
            written: Vec::new(),
            emitted: 0,
            spec,
        }
    }

    /// The spec driving this stream.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Distinct chunk contents issued so far.
    pub fn unique_contents(&self) -> usize {
        self.contents.len()
    }

    fn pick_content(&mut self) -> u64 {
        let duplicate = !self.contents.is_empty() && self.rng.gen_bool(self.spec.dedup_ratio);
        if duplicate {
            let near = self.rng.gen_bool(self.spec.dup_near_fraction);
            let idx = if near {
                let lo = self.contents.len().saturating_sub(self.spec.dup_window);
                self.rng.gen_range(lo..self.contents.len())
            } else {
                // "Uniformly old" (the spec's words): exclude the recent
                // window entirely, so far duplicates carry a genuinely
                // large reuse distance. While the content pool is still
                // younger than the window, fall back to the whole
                // history.
                let hi = self.contents.len().saturating_sub(self.spec.dup_window);
                if hi == 0 {
                    self.rng.gen_range(0..self.contents.len())
                } else {
                    self.rng.gen_range(0..hi)
                }
            };
            self.contents[idx]
        } else {
            let id = self.next_content;
            self.next_content += 1;
            self.contents.push(id);
            id
        }
    }

    fn next_write(&mut self) -> Request {
        let content = self.pick_content();
        let lba = Lba(self.rng.gen_range(0..self.spec.lba_space));
        self.written.push(lba);
        let data = Bytes::from(self.gen.chunk(content, CHUNK_SIZE));
        Request::Write { lba, data }
    }

    fn next_read(&mut self) -> Request {
        // "Reads are random valid addresses" (Table 3) — optionally
        // skewed toward a small hot set for the §8 hot-read extension.
        let lba = if self.written.is_empty() {
            Lba(0)
        } else if self.spec.read_skew > 0.0
            && self.written.len() >= self.spec.hot_set
            && self.rng.gen_bool(self.spec.read_skew)
        {
            self.written[self.rng.gen_range(0..self.spec.hot_set)]
        } else {
            self.written[self.rng.gen_range(0..self.written.len())]
        };
        Request::Read { lba }
    }
}

impl Iterator for Workload {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.emitted >= self.spec.ops {
            return None;
        }
        self.emitted += 1;
        // Never lead with a read: reads need a valid address.
        let read = !self.written.is_empty() && self.rng.gen_bool(self.spec.read_fraction);
        Some(if read {
            self.next_read()
        } else {
            self.next_write()
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.spec.ops - self.emitted;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidr_hash::Fingerprint;
    use std::collections::HashSet;

    fn measured_dedup(spec: WorkloadSpec) -> f64 {
        let wl = Workload::new(spec);
        let mut seen: HashSet<Fingerprint> = HashSet::new();
        let mut dups = 0usize;
        let mut writes = 0usize;
        for req in wl {
            if let Request::Write { data, .. } = req {
                writes += 1;
                if !seen.insert(Fingerprint::of(&data)) {
                    dups += 1;
                }
            }
        }
        dups as f64 / writes as f64
    }

    #[test]
    fn write_h_hits_target_dedup_ratio() {
        let d = measured_dedup(WorkloadSpec::write_h(4000));
        assert!((d - 0.88).abs() < 0.03, "measured dedup {d}");
    }

    #[test]
    fn write_l_hits_target_dedup_ratio() {
        let d = measured_dedup(WorkloadSpec::write_l(4000));
        assert!((d - 0.431).abs() < 0.03, "measured dedup {d}");
    }

    #[test]
    fn duplicate_content_is_byte_identical() {
        let wl = Workload::new(WorkloadSpec::write_h(2000));
        let mut by_fp: std::collections::HashMap<Fingerprint, Vec<u8>> =
            std::collections::HashMap::new();
        let mut dup_seen = false;
        for req in wl {
            if let Request::Write { data, .. } = req {
                let fp = Fingerprint::of(&data);
                if let Some(prev) = by_fp.get(&fp) {
                    assert_eq!(prev, &data.to_vec());
                    dup_seen = true;
                } else {
                    by_fp.insert(fp, data.to_vec());
                }
            }
        }
        assert!(dup_seen, "workload produced no duplicates");
    }

    #[test]
    fn read_mixed_is_half_reads() {
        let wl = Workload::new(WorkloadSpec::read_mixed(4000));
        let reads = wl.filter(|r| matches!(r, Request::Read { .. })).count();
        let frac = reads as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05, "read fraction {frac}");
    }

    #[test]
    fn reads_target_written_lbas() {
        let mut written = HashSet::new();
        for req in Workload::new(WorkloadSpec::read_mixed(2000)) {
            match req {
                Request::Write { lba, .. } => {
                    written.insert(lba);
                }
                Request::Read { lba } => {
                    assert!(written.contains(&lba), "read of unwritten {lba}");
                }
            }
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<Request> = Workload::new(WorkloadSpec::write_m(300)).collect();
        let b: Vec<Request> = Workload::new(WorkloadSpec::write_m(300)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn payload_compressibility_near_target() {
        let wl = Workload::new(WorkloadSpec::write_h(60));
        let mut total_ratio = 0.0;
        let mut n = 0;
        for req in wl {
            if let Request::Write { data, .. } = req {
                total_ratio += fidr_compress::compress(&data).len() as f64 / data.len() as f64;
                n += 1;
            }
        }
        let avg = total_ratio / n as f64;
        assert!((avg - 0.5).abs() < 0.1, "avg compressibility {avg}");
    }
}
