//! Open-loop, multi-tenant traffic schedules: the "millions of users"
//! serving shape.
//!
//! The closed-loop drivers elsewhere in this crate issue a request,
//! wait, and issue the next — so a slow server *slows the workload
//! down*, hiding overload. A serving fleet sees the opposite: arrivals
//! are open-loop (users do not coordinate), inter-arrival times are
//! approximately Poisson, and tenant popularity is heavily skewed
//! (Zipf) — a few hot tenants dominate while a long tail trickles.
//!
//! [`OpenLoopSchedule::generate`] materialises that shape as a
//! deterministic schedule: a seeded sequence of per-tenant write/read
//! operations with exponential inter-arrival delays. Determinism is the
//! point — the *same* spec re-generates the *same* schedule, so a
//! verification pass can re-derive exactly which (tenant, offset)
//! blocks a traffic run wrote and what content each must hold, without
//! any side channel from the run itself.
//!
//! Tenant `t`'s blocks live at `Lba((t << stream_shift) | offset)`,
//! matching the server's per-stream telemetry keying
//! (`stream id = lba >> stream_shift`) — so "per-stream" rollups *are*
//! per-tenant metrics. Offsets are append-only per tenant (write `n`
//! lands at offset `n`): no overwrites, so the final content of every
//! written block is a pure function of the spec.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Parameters of one open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopSpec {
    /// Distinct tenants (users) issuing traffic.
    pub tenants: u64,
    /// Total operations across all tenants.
    pub ops: u64,
    /// Target aggregate arrival rate in ops/sec; `0.0` generates an
    /// unpaced schedule (every delay 0) for tests and saturation runs.
    pub rate: f64,
    /// Zipf skew exponent for tenant popularity: `0.0` is uniform,
    /// `~1.0` is the classic heavy skew where the hottest tenants
    /// dominate.
    pub zipf_s: f64,
    /// Seed for the whole schedule (arrivals, tenant picks, read
    /// offsets).
    pub seed: u64,
}

impl Default for OpenLoopSpec {
    fn default() -> Self {
        OpenLoopSpec {
            tenants: 8,
            ops: 1024,
            rate: 0.0,
            zipf_s: 1.0,
            seed: 42,
        }
    }
}

/// What one scheduled operation does within its tenant's LBA region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenLoopKind {
    /// Append a block at the tenant's next offset.
    Write {
        /// Tenant-relative block offset (the tenant's write counter).
        offset: u64,
    },
    /// Read back — and verify — a previously written offset.
    Read {
        /// Tenant-relative block offset, always below the tenant's
        /// write counter at this point in the schedule.
        offset: u64,
    },
}

/// One scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopOp {
    /// Nanoseconds to wait after the *previous* arrival (open-loop: the
    /// delay does not depend on when the previous op completed).
    pub delay_ns: u64,
    /// The tenant issuing this op.
    pub tenant: u64,
    /// What the op does.
    pub kind: OpenLoopKind,
}

/// A uniform draw in `[0, 1)` built from 53 random bits (the vendored
/// `rand` samples integers only).
fn unit_f64(rng: &mut StdRng) -> f64 {
    const BITS: u64 = 1 << 53;
    rng.gen_range(0..BITS) as f64 / BITS as f64
}

/// The deterministic content tag of tenant `tenant`'s block at
/// `offset` under `seed`. Both the traffic driver and the verification
/// pass derive payloads from this, so a read can verify byte-exactly
/// with no record of the original write. The tag space is deliberately
/// small (`% 40`) and *shared across tenants*, so the server sees
/// plenty of cross-tenant duplicates to eliminate.
pub fn content_tag(seed: u64, tenant: u64, offset: u64) -> u64 {
    seed.wrapping_mul(31)
        .wrapping_add(tenant.wrapping_mul(7).wrapping_add(offset) % 40)
}

/// A fully materialised open-loop schedule.
#[derive(Debug, Clone)]
pub struct OpenLoopSchedule {
    spec: OpenLoopSpec,
    ops: Vec<OpenLoopOp>,
}

impl OpenLoopSchedule {
    /// Generates the schedule for `spec`. Same spec, same schedule —
    /// byte for byte.
    pub fn generate(spec: OpenLoopSpec) -> OpenLoopSchedule {
        let tenants = spec.tenants.max(1);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        // Zipf CDF over tenant ranks: tenant k gets weight 1/(k+1)^s.
        let mut cdf = Vec::with_capacity(tenants as usize);
        let mut total = 0.0f64;
        for k in 0..tenants {
            total += 1.0 / ((k + 1) as f64).powf(spec.zipf_s);
            cdf.push(total);
        }
        let mean_gap_ns = if spec.rate > 0.0 {
            1e9 / spec.rate
        } else {
            0.0
        };
        let mut written: BTreeMap<u64, u64> = BTreeMap::new();
        let mut per_tenant_ops: BTreeMap<u64, u64> = BTreeMap::new();
        let mut ops = Vec::with_capacity(spec.ops as usize);
        for _ in 0..spec.ops {
            // Poisson arrivals = exponential inter-arrival gaps.
            let delay_ns = if mean_gap_ns > 0.0 {
                let u = (1.0 - unit_f64(&mut rng)).max(f64::EPSILON);
                (-u.ln() * mean_gap_ns) as u64
            } else {
                0
            };
            // Zipf-skewed tenant pick: binary search the CDF.
            let u = unit_f64(&mut rng) * total;
            let tenant = (cdf.partition_point(|&c| c <= u) as u64).min(tenants - 1);
            let seq = per_tenant_ops.entry(tenant).or_insert(0);
            *seq += 1;
            let done = written.entry(tenant).or_insert(0);
            // Every third op of a tenant (once it wrote something)
            // reads back a previously written offset; the rest append.
            let kind = if seq.is_multiple_of(3) && *done > 0 {
                let offset = rng.gen_range(0..*done);
                OpenLoopKind::Read { offset }
            } else {
                let offset = *done;
                *done += 1;
                OpenLoopKind::Write { offset }
            };
            ops.push(OpenLoopOp {
                delay_ns,
                tenant,
                kind,
            });
        }
        OpenLoopSchedule { spec, ops }
    }

    /// The spec this schedule was generated from.
    pub fn spec(&self) -> &OpenLoopSpec {
        &self.spec
    }

    /// The operations, in arrival order.
    pub fn ops(&self) -> &[OpenLoopOp] {
        &self.ops
    }

    /// Blocks written per tenant: `tenant → write count` (tenant `t`
    /// wrote offsets `0..count`). The verification pass walks exactly
    /// this set.
    pub fn writes_per_tenant(&self) -> BTreeMap<u64, u64> {
        let mut out = BTreeMap::new();
        for op in &self.ops {
            if let OpenLoopKind::Write { offset } = op.kind {
                let e = out.entry(op.tenant).or_insert(0u64);
                *e = (*e).max(offset + 1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OpenLoopSpec {
        OpenLoopSpec {
            tenants: 16,
            ops: 3000,
            rate: 0.0,
            zipf_s: 1.0,
            seed: 7,
        }
    }

    #[test]
    fn same_spec_same_schedule() {
        let a = OpenLoopSchedule::generate(spec());
        let b = OpenLoopSchedule::generate(spec());
        assert_eq!(a.ops(), b.ops());
        assert_eq!(a.writes_per_tenant(), b.writes_per_tenant());
    }

    #[test]
    fn reads_only_touch_written_offsets() {
        let schedule = OpenLoopSchedule::generate(spec());
        let mut written: BTreeMap<u64, u64> = BTreeMap::new();
        for op in schedule.ops() {
            match op.kind {
                OpenLoopKind::Write { offset } => {
                    let done = written.entry(op.tenant).or_insert(0);
                    assert_eq!(offset, *done, "writes append in offset order");
                    *done += 1;
                }
                OpenLoopKind::Read { offset } => {
                    assert!(
                        offset < written.get(&op.tenant).copied().unwrap_or(0),
                        "read of a never-written offset"
                    );
                }
            }
        }
        assert_eq!(schedule.writes_per_tenant(), written);
    }

    #[test]
    fn zipf_skew_concentrates_traffic_on_low_ranks() {
        let schedule = OpenLoopSchedule::generate(OpenLoopSpec {
            zipf_s: 1.2,
            ..spec()
        });
        let mut per_tenant = vec![0u64; 16];
        for op in schedule.ops() {
            per_tenant[op.tenant as usize] += 1;
        }
        let hot: u64 = per_tenant[..4].iter().sum();
        let cold: u64 = per_tenant[12..].iter().sum();
        assert!(
            hot > cold * 3,
            "rank 0-3 tenants ({hot} ops) should dwarf rank 12-15 ({cold} ops)"
        );
        // ... but the tail still sees traffic.
        assert!(per_tenant.iter().all(|&c| c > 0), "{per_tenant:?}");
    }

    #[test]
    fn uniform_skew_spreads_traffic_evenly() {
        let schedule = OpenLoopSchedule::generate(OpenLoopSpec {
            zipf_s: 0.0,
            ..spec()
        });
        let mut per_tenant = vec![0u64; 16];
        for op in schedule.ops() {
            per_tenant[op.tenant as usize] += 1;
        }
        let max = *per_tenant.iter().max().unwrap();
        let min = *per_tenant.iter().min().unwrap();
        assert!(max < min * 3, "uniform split too uneven: {per_tenant:?}");
    }

    #[test]
    fn poisson_pacing_hits_the_target_rate_roughly() {
        let schedule = OpenLoopSchedule::generate(OpenLoopSpec {
            rate: 10_000.0,
            ops: 10_000,
            ..spec()
        });
        let total_ns: u64 = schedule.ops().iter().map(|o| o.delay_ns).sum();
        let secs = total_ns as f64 / 1e9;
        // 10k ops at 10k ops/s should span ~1 s of scheduled arrivals.
        assert!((0.8..1.2).contains(&secs), "scheduled span {secs} s");
        // Unpaced schedules carry no delays at all.
        let unpaced = OpenLoopSchedule::generate(spec());
        assert!(unpaced.ops().iter().all(|o| o.delay_ns == 0));
    }

    #[test]
    fn content_tags_are_deterministic_and_shared_across_tenants() {
        assert_eq!(content_tag(9, 3, 5), content_tag(9, 3, 5));
        // The tag space wraps (mod 40), so distinct (tenant, offset)
        // pairs collide — the cross-tenant duplicates dedup feeds on.
        let a = content_tag(9, 0, 0);
        let b = content_tag(9, 1, 33); // 7*1 + 33 = 40 ≡ 0 (mod 40)
        assert_eq!(a, b);
    }
}
