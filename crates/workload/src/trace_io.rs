//! Trace import/export in an FIU-IOTTA-style text format.
//!
//! The paper builds its workloads from the FIU mail/webVM traces, which
//! record per-4-KB-write the address and an MD5 of the content (§7.1
//! footnote). This module reads and writes a compatible whitespace
//! format so real traces can drive the replay machinery:
//!
//! ```text
//! # timestamp  op  lba  blocks  content
//! 0.000125 W 8102 1 9f86d081884c7d65
//! 0.000260 R 8102 1 0
//! ```
//!
//! `op` is `R` or `W`; `content` is a hex content identity (ignored for
//! reads). Lines starting with `#` and blank lines are skipped.

use fidr_chunk::BlockWrite;
use std::fmt;
use std::io::{BufRead, Write};

/// Operation kind in a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A block read.
    Read,
    /// A block write.
    Write,
}

/// One parsed trace line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Seconds since trace start.
    pub timestamp: f64,
    /// Read or write.
    pub op: TraceOp,
    /// First 4-KB logical block touched.
    pub lba: u64,
    /// Blocks touched (≥1).
    pub blocks: u32,
    /// Content identity (writes only; two equal ids mean equal bytes).
    pub content: u64,
}

/// Error from parsing a trace.
#[derive(Debug)]
pub enum TraceParseError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and complaint.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Io(e) => write!(f, "trace IO error: {e}"),
            TraceParseError::Malformed { line, detail } => {
                write!(f, "trace line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

impl From<std::io::Error> for TraceParseError {
    fn from(e: std::io::Error) -> Self {
        TraceParseError::Io(e)
    }
}

/// Parses a whole trace from `reader`.
///
/// # Errors
///
/// [`TraceParseError`] on IO failure or the first malformed line.
///
/// # Examples
///
/// ```
/// let text = "# demo\n0.1 W 7 1 abcd\n0.2 R 7 1 0\n";
/// let records = fidr_workload::parse_trace(text.as_bytes())?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].lba, 7);
/// # Ok::<(), fidr_workload::TraceParseError>(())
/// ```
pub fn parse_trace(reader: impl BufRead) -> Result<Vec<TraceRecord>, TraceParseError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let mut next = |name: &str| {
            fields.next().ok_or_else(|| TraceParseError::Malformed {
                line: line_no,
                detail: format!("missing field `{name}`"),
            })
        };
        let bad = |name: &str, value: &str| TraceParseError::Malformed {
            line: line_no,
            detail: format!("bad `{name}` value {value:?}"),
        };

        let ts_s = next("timestamp")?;
        let timestamp: f64 = ts_s.parse().map_err(|_| bad("timestamp", ts_s))?;
        let op_s = next("op")?;
        let op = match op_s {
            "R" | "r" => TraceOp::Read,
            "W" | "w" => TraceOp::Write,
            other => return Err(bad("op", other)),
        };
        let lba_s = next("lba")?;
        let lba: u64 = lba_s.parse().map_err(|_| bad("lba", lba_s))?;
        let blocks_s = next("blocks")?;
        let blocks: u32 = blocks_s.parse().map_err(|_| bad("blocks", blocks_s))?;
        if blocks == 0 {
            return Err(bad("blocks", blocks_s));
        }
        let content_s = next("content")?;
        let content = u64::from_str_radix(content_s, 16).map_err(|_| bad("content", content_s))?;
        out.push(TraceRecord {
            timestamp,
            op,
            lba,
            blocks,
            content,
        });
    }
    Ok(out)
}

/// Writes `records` in the same format.
///
/// # Errors
///
/// Propagates IO failures from `writer`.
pub fn write_trace(records: &[TraceRecord], mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "# timestamp op lba blocks content")?;
    for r in records {
        writeln!(
            writer,
            "{:.6} {} {} {} {:x}",
            r.timestamp,
            match r.op {
                TraceOp::Read => "R",
                TraceOp::Write => "W",
            },
            r.lba,
            r.blocks,
            r.content,
        )?;
    }
    Ok(())
}

/// Expands the write records into per-4-KB [`BlockWrite`]s for the
/// Figure 3 replay machinery. Multi-block writes derive a distinct
/// content id per constituent block.
pub fn to_block_writes(records: &[TraceRecord]) -> Vec<BlockWrite> {
    let mut out = Vec::new();
    for r in records {
        if r.op != TraceOp::Write {
            continue;
        }
        for i in 0..u64::from(r.blocks) {
            out.push(BlockWrite {
                lba: r.lba + i,
                content_id: r.content.wrapping_add(i).rotate_left(17) & !(1 << 63),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let records = vec![
            TraceRecord {
                timestamp: 0.5,
                op: TraceOp::Write,
                lba: 42,
                blocks: 2,
                content: 0xdead_beef,
            },
            TraceRecord {
                timestamp: 1.0,
                op: TraceOp::Read,
                lba: 42,
                blocks: 1,
                content: 0,
            },
        ];
        let mut buf = Vec::new();
        write_trace(&records, &mut buf).unwrap();
        let parsed = parse_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n0.0 W 1 1 ff\n   \n0.1 R 1 1 0\n";
        let parsed = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "x W 1 1 ff",    // bad timestamp
            "0.0 Q 1 1 ff",  // bad op
            "0.0 W zz 1 ff", // bad lba
            "0.0 W 1 0 ff",  // zero blocks
            "0.0 W 1 1 zz",  // bad content hex... z is not hex
            "0.0 W 1 1",     // missing field
        ] {
            assert!(
                parse_trace(bad.as_bytes()).is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn block_write_expansion() {
        let records = vec![
            TraceRecord {
                timestamp: 0.0,
                op: TraceOp::Write,
                lba: 10,
                blocks: 3,
                content: 7,
            },
            TraceRecord {
                timestamp: 0.1,
                op: TraceOp::Read,
                lba: 10,
                blocks: 1,
                content: 0,
            },
        ];
        let writes = to_block_writes(&records);
        assert_eq!(writes.len(), 3);
        assert_eq!(writes[0].lba, 10);
        assert_eq!(writes[2].lba, 12);
        // Same (content, offset) pairs reproduce the same block content.
        let again = to_block_writes(&records);
        assert_eq!(writes, again);
        // Distinct blocks of one request carry distinct content ids.
        assert_ne!(writes[0].content_id, writes[1].content_id);
    }
}
