//! Multi-stream mixed-locality workload generation.
//!
//! HPDedup's setting (see `PAPERS.md`): several clients share one dedup
//! appliance, and their streams differ in temporal locality. This module
//! interleaves independent [`Workload`] streams round-robin into one
//! request sequence, giving each stream a private LBA region (its stream
//! id becomes the high LBA bits) and a private content-id space (via
//! [`WorkloadSpec::content_base`]) — so duplicates only ever occur
//! *within* a stream, and a per-stream locality estimator keyed on
//! `lba >> stream_shift` sees exactly one stream per key.

use crate::spec::WorkloadSpec;
use crate::stream::{Request, Workload};
use fidr_chunk::Lba;

/// Round-robin interleaving of independent per-stream [`Workload`]s.
///
/// # Examples
///
/// ```
/// use fidr_workload::{MultiStreamWorkload, Request};
///
/// let reqs: Vec<Request> = MultiStreamWorkload::mixed_locality(100).collect();
/// assert_eq!(reqs.len(), 100);
/// ```
#[derive(Debug)]
pub struct MultiStreamWorkload {
    streams: Vec<Workload>,
    stream_shift: u32,
    /// Next stream to draw from (round-robin cursor).
    cursor: usize,
}

impl MultiStreamWorkload {
    /// Interleaves `specs` round-robin, placing stream `i`'s LBAs at
    /// `(i << stream_shift) | lba`.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, if any spec's `lba_space` exceeds
    /// `1 << stream_shift` (streams would alias each other's regions),
    /// or if two specs share a `content_base` (their "unique" payloads
    /// would silently dedup across streams).
    pub fn new(specs: Vec<WorkloadSpec>, stream_shift: u32) -> Self {
        assert!(!specs.is_empty(), "at least one stream");
        let mut bases: Vec<u64> = specs.iter().map(|s| s.content_base).collect();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(
            bases.len(),
            specs.len(),
            "streams must have disjoint content_base values"
        );
        assert!(
            specs.iter().all(|s| s.lba_space <= 1 << stream_shift),
            "lba_space must fit below the stream id bits"
        );
        MultiStreamWorkload {
            streams: specs.into_iter().map(Workload::new).collect(),
            stream_shift,
            cursor: 0,
        }
    }

    /// The canonical mixed-locality write mix for the tiered-cache
    /// ablation: two *hot* streams (high dedup ratio, tight reuse
    /// window — their duplicates reward DRAM residency) interleaved with
    /// two *cold* streams at Write-L's 43.1 % dedup ratio whose
    /// duplicates reference uniformly old content (`dup_near_fraction`
    /// 0) — each duplicate's previous occurrence is far outside any
    /// bounded cache, so inline lookups mostly miss and evict. `ops` is
    /// the total across all four streams. Stream ids live at LBA bits
    /// ≥ 22 (the presets' `lba_space`), matching the default
    /// `stream_shift` of the tiered system config.
    pub fn mixed_locality(ops: usize) -> Self {
        let per = ops / 4;
        let hot = |name: &str, ops: usize, seed: u64, content_base: u64| WorkloadSpec {
            name: name.to_string(),
            dedup_ratio: 0.9,
            dup_near_fraction: 1.0,
            dup_window: 256,
            seed,
            content_base,
            ..WorkloadSpec::write_h(ops)
        };
        let cold = |name: &str, ops: usize, seed: u64, content_base: u64| WorkloadSpec {
            name: name.to_string(),
            // Write-L's ratio, but every duplicate references uniformly
            // old content from outside a 512-content window: no bounded
            // cache captures these reuse distances.
            dedup_ratio: 0.431,
            dup_near_fraction: 0.0,
            dup_window: 512,
            seed,
            content_base,
            ..WorkloadSpec::write_l(ops)
        };
        MultiStreamWorkload::new(
            vec![
                hot("Hot-A", per, 0x5eed_1001, 1 << 40),
                cold("Cold-A", per, 0x5eed_1002, 2 << 40),
                hot("Hot-B", per, 0x5eed_1003, 3 << 40),
                cold("Cold-B", ops - 3 * per, 0x5eed_1004, 4 << 40),
            ],
            22,
        )
    }

    /// The per-stream specs, in stream-id order.
    pub fn specs(&self) -> Vec<&WorkloadSpec> {
        self.streams.iter().map(Workload::spec).collect()
    }

    /// The LBA shift that encodes the stream id.
    pub fn stream_shift(&self) -> u32 {
        self.stream_shift
    }
}

impl Iterator for MultiStreamWorkload {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        // Round-robin over streams that still have requests; exhausted
        // streams drop out and the rest keep interleaving.
        for _ in 0..self.streams.len() {
            let id = self.cursor;
            self.cursor = (self.cursor + 1) % self.streams.len();
            let Some(req) = self.streams[id].next() else {
                continue;
            };
            let rebase = |lba: Lba| Lba(((id as u64) << self.stream_shift) | lba.0);
            return Some(match req {
                Request::Write { lba, data } => Request::Write {
                    lba: rebase(lba),
                    data,
                },
                Request::Read { lba } => Request::Read { lba: rebase(lba) },
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidr_hash::Fingerprint;
    use std::collections::HashMap;

    #[test]
    fn emits_exactly_ops_requests() {
        assert_eq!(MultiStreamWorkload::mixed_locality(403).count(), 403);
    }

    #[test]
    fn streams_occupy_disjoint_lba_regions() {
        let wl = MultiStreamWorkload::mixed_locality(400);
        let shift = wl.stream_shift();
        let mut seen = std::collections::HashSet::new();
        for req in wl {
            let Request::Write { lba, .. } = req else {
                continue;
            };
            seen.insert(lba.0 >> shift);
        }
        assert_eq!(seen, (0..4).collect());
    }

    #[test]
    fn no_cross_stream_duplicates() {
        // Every duplicate payload must stay inside one stream's LBA
        // region — content_base keeps the id spaces disjoint.
        let wl = MultiStreamWorkload::mixed_locality(2000);
        let shift = wl.stream_shift();
        let mut owner: HashMap<Fingerprint, u64> = HashMap::new();
        for req in wl {
            let Request::Write { lba, data } = req else {
                continue;
            };
            let stream = lba.0 >> shift;
            match owner.entry(Fingerprint::of(&data)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    assert_eq!(*e.get(), stream, "payload shared across streams");
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(stream);
                }
            }
        }
    }

    #[test]
    fn hot_and_cold_streams_differ_in_reuse_distance() {
        // Measure each stream's windowed reuse rate the same way the
        // tiered policy does: hot streams must show high short-distance
        // reuse, cold streams almost none. Only the second half of each
        // stream counts — while a cold stream's content pool is still
        // younger than its dup_window, "uniformly old" picks fall back
        // to the whole (recent) history, so early locality is
        // transiently inflated. The epoch-decaying policy likewise
        // classifies on recent behaviour, not the lifetime average.
        let total = 12_000;
        let per = (total / 4) as u64;
        let wl = MultiStreamWorkload::mixed_locality(total);
        let shift = wl.stream_shift();
        let window = 512;
        let mut recent: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut seen: HashMap<u64, u64> = HashMap::new();
        let mut hits: HashMap<u64, (u64, u64)> = HashMap::new();
        for req in wl {
            let Request::Write { lba, data } = req else {
                continue;
            };
            let stream = lba.0 >> shift;
            let key = Fingerprint::of(&data).prefix_u64();
            let ring = recent.entry(stream).or_default();
            let n = seen.entry(stream).or_default();
            *n += 1;
            if *n * 2 > per {
                let (obs, hit) = hits.entry(stream).or_default();
                *obs += 1;
                if ring.contains(&key) {
                    *hit += 1;
                }
            }
            ring.push(key);
            if ring.len() > window {
                ring.remove(0);
            }
        }
        let locality = |s: u64| {
            let (obs, hit) = hits[&s];
            hit as f64 / obs as f64
        };
        for hot in [0u64, 2] {
            assert!(locality(hot) > 0.4, "hot stream {hot}: {}", locality(hot));
        }
        for cold in [1u64, 3] {
            assert!(
                locality(cold) < 0.2,
                "cold stream {cold}: {}",
                locality(cold)
            );
            assert!(
                locality(cold) + 0.2 < locality(0),
                "cold stream {cold} must be clearly separable from hot"
            );
        }
    }

    #[test]
    fn same_construction_same_stream() {
        let a: Vec<Request> = MultiStreamWorkload::mixed_locality(600).collect();
        let b: Vec<Request> = MultiStreamWorkload::mixed_locality(600).collect();
        assert_eq!(a, b);
    }
}
