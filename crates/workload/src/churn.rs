//! Churn/retention schedules: deterministic write→overwrite→delete
//! aging for the delete→refcount→GC lifecycle.
//!
//! The open-loop schedules in this crate are append-only — the final
//! content of every block is a pure function of the spec because no
//! block is ever overwritten or removed. A store under real retention
//! policy ages differently: blocks get overwritten with new
//! generations, others are deleted outright, and dead chunks strand
//! capacity inside sealed containers until the collector runs. That is
//! the shape benches need to make `gc.reclaimed_bytes` move.
//!
//! [`ChurnSchedule::generate`] materialises that shape
//! deterministically. Round 0 writes every `(tenant, offset)` block;
//! each later round revisits every block and — by a pure hash of
//! `(seed, tenant, offset, round)` — either deletes it (if currently
//! live) or rewrites it with that round's content generation (reviving
//! it if dead). Deletes are only ever emitted for live blocks, matching
//! the wire contract that deleting an unmapped LBA is a protocol
//! violation. Because liveness is replayed inside the generator, the
//! survivor set — which blocks remain mapped, and which content
//! generation each must hold — is itself a pure function of the spec:
//! a post-GC verification pass re-derives it with no record from the
//! traffic run.

use std::collections::BTreeMap;

/// Parameters of one churn schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Distinct tenants issuing traffic.
    pub tenants: u64,
    /// Blocks per tenant (offsets `0..blocks_per_tenant`).
    pub blocks_per_tenant: u64,
    /// Aging rounds after the initial full write (round 0). Each round
    /// revisits every block.
    pub rounds: u64,
    /// Percent (`0..=100`) of block visits that delete rather than
    /// rewrite.
    pub delete_pct: u8,
    /// Seed for the whole schedule (decisions and content tags).
    pub seed: u64,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            tenants: 4,
            blocks_per_tenant: 64,
            rounds: 3,
            delete_pct: 40,
            seed: 42,
        }
    }
}

/// What one churn operation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// Write (or rewrite) the block with round `round`'s content.
    Write {
        /// Content generation: the round that produced this write.
        round: u64,
    },
    /// Delete the block (always live at this point in the schedule).
    Delete,
}

/// One churn operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnOp {
    /// The tenant owning the block.
    pub tenant: u64,
    /// Tenant-relative block offset.
    pub offset: u64,
    /// What the op does.
    pub kind: ChurnKind,
}

/// The deterministic content tag of tenant `tenant`'s block at
/// `offset` as written in round `round` under `seed`. Tags are shared
/// across blocks *within* a round (the `% 40` wrap feeds dedup) but
/// differ *across* rounds, so every rewrite ages the previous
/// generation's chunk toward death.
pub fn churn_tag(seed: u64, tenant: u64, offset: u64, round: u64) -> u64 {
    seed.wrapping_mul(131)
        .wrapping_add(round.wrapping_mul(1009))
        .wrapping_add(tenant.wrapping_mul(7).wrapping_add(offset) % 40)
}

/// A pure decision hash (splitmix64-style finalizer) for whether round
/// `round`'s visit to `(tenant, offset)` deletes or rewrites.
fn decision(seed: u64, tenant: u64, offset: u64, round: u64) -> u64 {
    let mut x = seed
        ^ tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ offset.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ round.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A fully materialised churn schedule.
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    spec: ChurnSpec,
    ops: Vec<ChurnOp>,
    /// `(tenant, offset) → content round` for every block still mapped
    /// after the whole schedule ran.
    survivors: BTreeMap<(u64, u64), u64>,
    deletes: u64,
}

impl ChurnSchedule {
    /// Generates the schedule for `spec`. Same spec, same schedule —
    /// and the same survivor set — byte for byte.
    pub fn generate(spec: ChurnSpec) -> ChurnSchedule {
        let tenants = spec.tenants.max(1);
        let blocks = spec.blocks_per_tenant.max(1);
        let delete_pct = u64::from(spec.delete_pct.min(100));
        let mut ops = Vec::new();
        // Live blocks and their current content round; round 0 writes
        // everything.
        let mut survivors: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for tenant in 0..tenants {
            for offset in 0..blocks {
                ops.push(ChurnOp {
                    tenant,
                    offset,
                    kind: ChurnKind::Write { round: 0 },
                });
                survivors.insert((tenant, offset), 0);
            }
        }
        let mut deletes = 0u64;
        for round in 1..=spec.rounds {
            for tenant in 0..tenants {
                for offset in 0..blocks {
                    let wants_delete =
                        decision(spec.seed, tenant, offset, round) % 100 < delete_pct;
                    if wants_delete {
                        // Deleting an unmapped LBA is a wire violation;
                        // a dead block's delete visit is a no-op.
                        if survivors.remove(&(tenant, offset)).is_some() {
                            ops.push(ChurnOp {
                                tenant,
                                offset,
                                kind: ChurnKind::Delete,
                            });
                            deletes += 1;
                        }
                    } else {
                        ops.push(ChurnOp {
                            tenant,
                            offset,
                            kind: ChurnKind::Write { round },
                        });
                        survivors.insert((tenant, offset), round);
                    }
                }
            }
        }
        ChurnSchedule {
            spec,
            ops,
            survivors,
            deletes,
        }
    }

    /// The spec this schedule was generated from.
    pub fn spec(&self) -> &ChurnSpec {
        &self.spec
    }

    /// The operations, in issue order.
    pub fn ops(&self) -> &[ChurnOp] {
        &self.ops
    }

    /// `(tenant, offset) → content round` for every block still mapped
    /// after the schedule: the set — and the exact bytes — a post-churn
    /// (or post-GC) verification pass must find.
    pub fn survivors(&self) -> &BTreeMap<(u64, u64), u64> {
        &self.survivors
    }

    /// Delete operations in the schedule.
    pub fn deletes(&self) -> u64 {
        self.deletes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChurnSpec {
        ChurnSpec {
            tenants: 3,
            blocks_per_tenant: 32,
            rounds: 4,
            delete_pct: 40,
            seed: 7,
        }
    }

    #[test]
    fn same_spec_same_schedule_and_survivors() {
        let a = ChurnSchedule::generate(spec());
        let b = ChurnSchedule::generate(spec());
        assert_eq!(a.ops(), b.ops());
        assert_eq!(a.survivors(), b.survivors());
        assert_eq!(a.deletes(), b.deletes());
    }

    #[test]
    fn deletes_only_target_live_blocks_and_survivors_match_replay() {
        let schedule = ChurnSchedule::generate(spec());
        let mut live: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for op in schedule.ops() {
            match op.kind {
                ChurnKind::Write { round } => {
                    live.insert((op.tenant, op.offset), round);
                }
                ChurnKind::Delete => {
                    assert!(
                        live.remove(&(op.tenant, op.offset)).is_some(),
                        "delete of a dead block ({}, {})",
                        op.tenant,
                        op.offset
                    );
                }
            }
        }
        assert_eq!(&live, schedule.survivors());
    }

    #[test]
    fn churn_actually_churns() {
        let schedule = ChurnSchedule::generate(spec());
        assert!(schedule.deletes() > 0, "no deletes at 40%");
        // Some blocks died and stayed dead; some survived.
        let total = (spec().tenants * spec().blocks_per_tenant) as usize;
        assert!(schedule.survivors().len() < total);
        assert!(!schedule.survivors().is_empty());
        // Rewrites advance content generations past round 0.
        assert!(schedule.survivors().values().any(|&r| r > 0));
    }

    #[test]
    fn delete_pct_zero_is_pure_overwrite_aging() {
        let schedule = ChurnSchedule::generate(ChurnSpec {
            delete_pct: 0,
            ..spec()
        });
        assert_eq!(schedule.deletes(), 0);
        let total = (spec().tenants * spec().blocks_per_tenant) as usize;
        assert_eq!(schedule.survivors().len(), total);
        // Every block ends at the last round's generation.
        assert!(schedule.survivors().values().all(|&r| r == spec().rounds));
    }

    #[test]
    fn churn_tags_differ_across_rounds_but_dedup_within_one() {
        assert_ne!(churn_tag(7, 0, 0, 0), churn_tag(7, 0, 0, 1));
        // 7*1 + 33 = 40 ≡ 0 (mod 40): cross-block duplicates in-round.
        assert_eq!(churn_tag(7, 0, 0, 2), churn_tag(7, 1, 33, 2));
    }
}
