//! Workload specifications reproducing the paper's Table 3.
//!
//! The paper generates its workloads synthetically from trace skeletons
//! with five controlled factors (§7.1): target table-cache hit rate,
//! replication to size, systematic content mutation to pin the dedup
//! ratio, 50 % compressibility, and a table sized for 500 GB unique
//! storage with 2.8 % cached. [`WorkloadSpec`] carries those knobs;
//! [`crate::Workload`] streams the requests.

/// Tunable description of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name ("Write-H", …).
    pub name: String,
    /// Total requests to generate.
    pub ops: usize,
    /// Fraction of requests that are reads (0.0 for write-only, 0.5 for
    /// Read-Mixed).
    pub read_fraction: f64,
    /// Fraction of writes whose content duplicates an earlier chunk — the
    /// Table 3 "Dedup. ratio".
    pub dedup_ratio: f64,
    /// Among duplicate writes, the fraction that reference *recent* content
    /// (within `dup_window`); the rest reference uniformly old content
    /// (strictly *outside* the window once enough distinct contents
    /// exist). This is the knob that sets the table-cache hit rate.
    pub dup_near_fraction: f64,
    /// Recency window, in distinct chunk contents, that "near" duplicates
    /// draw from.
    pub dup_window: usize,
    /// Target compressed/original ratio of chunk payloads — the Table 3
    /// "Comp. ratio" (0.5 throughout the paper).
    pub comp_ratio: f64,
    /// Skew of read addresses: the probability that a read targets the
    /// small hot set instead of a uniform valid address (0.0 = the
    /// paper's "random valid addresses").
    pub read_skew: f64,
    /// Size of the hot set skewed reads draw from.
    pub hot_set: usize,
    /// Client LBA space in 4-KB blocks.
    pub lba_space: u64,
    /// RNG seed; equal seeds replay identical workloads.
    pub seed: u64,
    /// Offset added to fresh content ids. Ids start at `content_base + 1`,
    /// so streams given disjoint bases never produce cross-stream
    /// duplicate payloads — required by the multi-stream generator
    /// ([`crate::MultiStreamWorkload`]), where dedup must happen *within*
    /// a stream or not at all.
    pub content_base: u64,
}

impl WorkloadSpec {
    /// Write-H: high dedup (88 %), high cache hit rate (90 %).
    pub fn write_h(ops: usize) -> Self {
        WorkloadSpec {
            name: "Write-H".to_string(),
            ops,
            read_fraction: 0.0,
            dedup_ratio: 0.88,
            dup_near_fraction: 1.0,
            dup_window: 4_000,
            comp_ratio: 0.5,
            read_skew: 0.0,
            hot_set: 64,
            lba_space: 1 << 22,
            seed: 0x5eed_0001,
            content_base: 0,
        }
    }

    /// Write-M: high dedup (84 %), medium hit rate (81 %).
    pub fn write_m(ops: usize) -> Self {
        WorkloadSpec {
            name: "Write-M".to_string(),
            ops,
            read_fraction: 0.0,
            dedup_ratio: 0.84,
            dup_near_fraction: 0.95,
            dup_window: 8_000,
            comp_ratio: 0.5,
            read_skew: 0.0,
            hot_set: 64,
            lba_space: 1 << 22,
            seed: 0x5eed_0002,
            content_base: 0,
        }
    }

    /// Write-L: medium dedup (43.1 %), low hit rate (45 %).
    pub fn write_l(ops: usize) -> Self {
        WorkloadSpec {
            name: "Write-L".to_string(),
            ops,
            read_fraction: 0.0,
            dedup_ratio: 0.431,
            dup_near_fraction: 1.0,
            dup_window: 6_000,
            comp_ratio: 0.5,
            read_skew: 0.0,
            hot_set: 64,
            lba_space: 1 << 22,
            seed: 0x5eed_0003,
            content_base: 0,
        }
    }

    /// Read-Mixed: half reads (random valid addresses), half Write-H-like
    /// writes.
    pub fn read_mixed(ops: usize) -> Self {
        WorkloadSpec {
            read_fraction: 0.5,
            name: "Read-Mixed".to_string(),
            ..WorkloadSpec::write_h(ops)
        }
    }

    /// A virtual-desktop-infrastructure mix: the paper's introduction
    /// cites "over 80 %" data reduction for VDI (many near-identical OS
    /// images → very high dedup).
    pub fn vdi(ops: usize) -> Self {
        WorkloadSpec {
            name: "VDI".to_string(),
            dedup_ratio: 0.90,
            dup_near_fraction: 1.0,
            dup_window: 2_000,
            comp_ratio: 0.55,
            seed: 0x5eed_0004,
            ..WorkloadSpec::write_h(ops)
        }
    }

    /// A database mix: the introduction cites "over 50 %" reduction for
    /// database datasets (modest dedup, good compressibility).
    pub fn database(ops: usize) -> Self {
        WorkloadSpec {
            name: "Database".to_string(),
            dedup_ratio: 0.30,
            dup_near_fraction: 1.0,
            dup_window: 4_000,
            comp_ratio: 0.60,
            seed: 0x5eed_0005,
            ..WorkloadSpec::write_h(ops)
        }
    }

    /// An overwrite-churn mix: a small LBA working set is rewritten with
    /// fresh content, continuously orphaning chunks — the steady state
    /// that exercises garbage collection (an extension; the paper's runs
    /// never reach overwrite churn).
    pub fn overwrite_churn(ops: usize) -> Self {
        WorkloadSpec {
            name: "Overwrite-churn".to_string(),
            dedup_ratio: 0.2,
            dup_near_fraction: 1.0,
            dup_window: 1_000,
            lba_space: (ops as u64 / 4).max(256),
            seed: 0x5eed_0006,
            ..WorkloadSpec::write_h(ops)
        }
    }

    /// All four Table 3 workloads at a common op count.
    pub fn table3(ops: usize) -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::write_h(ops),
            WorkloadSpec::write_m(ops),
            WorkloadSpec::write_l(ops),
            WorkloadSpec::read_mixed(ops),
        ]
    }

    /// First-order prediction of the Hash-PBN cache hit rate this spec
    /// produces on a cache covering `cache_fraction` of the table:
    /// near-duplicates hit; everything else hits only by residency luck.
    pub fn predicted_hit_rate(&self, cache_fraction: f64) -> f64 {
        let near = self.dedup_ratio * self.dup_near_fraction;
        near + (1.0 - near) * cache_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper_ratios() {
        let specs = WorkloadSpec::table3(1000);
        assert_eq!(specs.len(), 4);
        assert!((specs[0].dedup_ratio - 0.88).abs() < 1e-12);
        assert!((specs[1].dedup_ratio - 0.84).abs() < 1e-12);
        assert!((specs[2].dedup_ratio - 0.431).abs() < 1e-12);
        assert!((specs[3].read_fraction - 0.5).abs() < 1e-12);
        assert!(specs.iter().all(|s| (s.comp_ratio - 0.5).abs() < 1e-12));
    }

    #[test]
    fn extension_presets_have_sane_shapes() {
        let vdi = WorkloadSpec::vdi(100);
        assert!(vdi.dedup_ratio > 0.85 && vdi.comp_ratio < 0.6);
        let db = WorkloadSpec::database(100);
        assert!(db.dedup_ratio < 0.5 && db.comp_ratio > 0.5);
        let churn = WorkloadSpec::overwrite_churn(10_000);
        assert!(churn.lba_space <= 2_500, "churn needs a tight LBA space");
        // Distinct seeds: presets must not replay each other's streams.
        let seeds: std::collections::HashSet<u64> =
            [vdi.seed, db.seed, churn.seed, WorkloadSpec::write_h(1).seed]
                .into_iter()
                .collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn predicted_hit_rates_track_table3() {
        // At the paper's 2.8 % cache fraction.
        let h = WorkloadSpec::write_h(0).predicted_hit_rate(0.028);
        let m = WorkloadSpec::write_m(0).predicted_hit_rate(0.028);
        let l = WorkloadSpec::write_l(0).predicted_hit_rate(0.028);
        assert!((h - 0.90).abs() < 0.02, "Write-H predicted {h}");
        assert!((m - 0.81).abs() < 0.02, "Write-M predicted {m}");
        assert!((l - 0.45).abs() < 0.02, "Write-L predicted {l}");
    }
}
