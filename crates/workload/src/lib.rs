//! # fidr-workload
//!
//! Workload generation for the FIDR evaluation: the four Table 3 mixes
//! ([`WorkloadSpec::write_h`], [`WorkloadSpec::write_m`],
//! [`WorkloadSpec::write_l`], [`WorkloadSpec::read_mixed`]) streamed as
//! [`Request`]s with real, deterministic chunk payloads, plus the
//! mail/webVM [`skeleton`] traces behind Figure 3.
//!
//! # Examples
//!
//! ```
//! use fidr_workload::{Request, Workload, WorkloadSpec};
//!
//! let mut writes = 0;
//! for req in Workload::new(WorkloadSpec::write_l(50)) {
//!     if let Request::Write { data, .. } = req {
//!         assert_eq!(data.len(), 4096);
//!         writes += 1;
//!     }
//! }
//! assert_eq!(writes, 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod mixed;
mod open_loop;
pub mod skeleton;
mod spec;
mod stream;
mod trace_io;

pub use churn::{churn_tag, ChurnKind, ChurnOp, ChurnSchedule, ChurnSpec};
pub use mixed::MultiStreamWorkload;
pub use open_loop::{content_tag, OpenLoopKind, OpenLoopOp, OpenLoopSchedule, OpenLoopSpec};
pub use spec::WorkloadSpec;
pub use stream::{Request, Workload};
pub use trace_io::{
    parse_trace, to_block_writes, write_trace, TraceOp, TraceParseError, TraceRecord,
};
