//! Hash-PBN table buckets.
//!
//! "One common implementation of the Hash-PBN table is a bucket-based table,
//! containing many pairs of (key, value) in each bucket. … each entry of the
//! Hash-PBN table is 38 bytes (32 bytes for hash, 6 bytes for PBN)"
//! (paper §2.1.3). Buckets are 4 KB — the same granularity as the table-SSD
//! blocks and the table-cache lines — and hold up to 107 entries.

use fidr_chunk::Pbn;
use fidr_hash::Fingerprint;
use std::fmt;

/// On-SSD bucket size in bytes (one table-SSD block / one cache line).
pub const BUCKET_BYTES: usize = 4096;
/// Serialized entry size: 32-byte fingerprint + 6-byte PBN.
pub const ENTRY_BYTES: usize = 38;
/// Entries per bucket (107 at 38 bytes, leaving 30 bytes for the count).
pub const ENTRIES_PER_BUCKET: usize = (BUCKET_BYTES - 2) / ENTRY_BYTES;

/// Error returned by [`Bucket::insert`].
///
/// Every variant is a hard error even in release builds: a silently
/// shadowed duplicate can be resurrected by [`Bucket::remove`] after GC,
/// and a PBN past the 6-byte encoding would be truncated on the SSD,
/// corrupting the on-disk mapping. Real deployments size the table so
/// [`Full`](BucketInsertError::Full) is vanishingly rare; the store
/// surfaces it so callers can grow or chain buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketInsertError {
    /// The bucket already holds [`ENTRIES_PER_BUCKET`] entries.
    Full,
    /// The fingerprint is already present; a second entry would shadow
    /// the first and outlive its removal.
    DuplicateFingerprint,
    /// The PBN exceeds [`Pbn::MAX_ENCODABLE`] and cannot survive the
    /// 6-byte on-SSD encoding.
    PbnUnencodable(u64),
}

impl fmt::Display for BucketInsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BucketInsertError::Full => {
                write!(f, "hash-PBN bucket is full ({ENTRIES_PER_BUCKET} entries)")
            }
            BucketInsertError::DuplicateFingerprint => {
                write!(f, "fingerprint already present in bucket")
            }
            BucketInsertError::PbnUnencodable(pbn) => {
                write!(f, "PBN {pbn} exceeds the 6-byte encoding")
            }
        }
    }
}

impl std::error::Error for BucketInsertError {}

/// One Hash-PBN bucket: an append-ordered set of (fingerprint, PBN) pairs.
///
/// # Examples
///
/// ```
/// use fidr_tables::Bucket;
/// use fidr_hash::Fingerprint;
/// use fidr_chunk::Pbn;
///
/// let mut bucket = Bucket::new();
/// let fp = Fingerprint::of(b"chunk");
/// bucket.insert(fp, Pbn(9))?;
/// assert_eq!(bucket.lookup(&fp), Some(Pbn(9)));
/// # Ok::<(), fidr_tables::BucketInsertError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bucket {
    entries: Vec<(Fingerprint, Pbn)>,
}

impl Bucket {
    /// Creates an empty bucket.
    pub fn new() -> Self {
        Bucket {
            entries: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bucket holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether another insert would overflow.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= ENTRIES_PER_BUCKET
    }

    /// Scans the bucket for `fp` (the paper's "the corresponding bucket is
    /// scanned to find the respective hash value").
    pub fn lookup(&self, fp: &Fingerprint) -> Option<Pbn> {
        self.entries
            .iter()
            .find(|(f, _)| f == fp)
            .map(|&(_, pbn)| pbn)
    }

    /// Inserts a new (fingerprint, PBN) pair.
    ///
    /// # Errors
    ///
    /// [`BucketInsertError::Full`] when the bucket already holds
    /// [`ENTRIES_PER_BUCKET`] entries,
    /// [`BucketInsertError::DuplicateFingerprint`] if `fp` is already
    /// present (callers look up before inserting), and
    /// [`BucketInsertError::PbnUnencodable`] if `pbn` would not survive
    /// the 6-byte on-SSD encoding.
    pub fn insert(&mut self, fp: Fingerprint, pbn: Pbn) -> Result<(), BucketInsertError> {
        if pbn.0 > Pbn::MAX_ENCODABLE {
            return Err(BucketInsertError::PbnUnencodable(pbn.0));
        }
        if self.lookup(&fp).is_some() {
            return Err(BucketInsertError::DuplicateFingerprint);
        }
        if self.is_full() {
            return Err(BucketInsertError::Full);
        }
        self.entries.push((fp, pbn));
        Ok(())
    }

    /// Removes an entry, returning its PBN if present (used by garbage
    /// collection when a unique chunk's reference count drops to zero).
    pub fn remove(&mut self, fp: &Fingerprint) -> Option<Pbn> {
        let idx = self.entries.iter().position(|(f, _)| f == fp)?;
        Some(self.entries.swap_remove(idx).1)
    }

    /// Iterates over entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(Fingerprint, Pbn)> {
        self.entries.iter()
    }

    /// Serializes to the 4-KB on-SSD layout: a 2-byte little-endian entry
    /// count followed by packed 38-byte entries (PBN in 6 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; BUCKET_BYTES];
        out[..2].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for (i, (fp, pbn)) in self.entries.iter().enumerate() {
            let off = 2 + i * ENTRY_BYTES;
            out[off..off + 32].copy_from_slice(fp.as_bytes());
            // Guaranteed by insert-time validation; from_bytes can only
            // produce 6-byte PBNs too.
            debug_assert!(pbn.0 <= Pbn::MAX_ENCODABLE, "PBN exceeds 6-byte encoding");
            out[off + 32..off + 38].copy_from_slice(&pbn.0.to_le_bytes()[..6]);
        }
        out
    }

    /// Parses the on-SSD layout.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly [`BUCKET_BYTES`] long or the
    /// recorded count exceeds [`ENTRIES_PER_BUCKET`].
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), BUCKET_BYTES, "bucket must be 4 KB");
        let count = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        assert!(count <= ENTRIES_PER_BUCKET, "corrupt bucket count {count}");
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let off = 2 + i * ENTRY_BYTES;
            let mut fp = [0u8; 32];
            fp.copy_from_slice(&bytes[off..off + 32]);
            let mut pbn_bytes = [0u8; 8];
            pbn_bytes[..6].copy_from_slice(&bytes[off + 32..off + 38]);
            entries.push((
                Fingerprint::from_bytes(fp),
                Pbn(u64::from_le_bytes(pbn_bytes)),
            ));
        }
        Bucket { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(i: u64) -> Fingerprint {
        Fingerprint::of(&i.to_le_bytes())
    }

    #[test]
    fn capacity_is_107() {
        assert_eq!(ENTRIES_PER_BUCKET, 107);
    }

    #[test]
    fn lookup_insert_remove() {
        let mut b = Bucket::new();
        b.insert(fp(1), Pbn(10)).unwrap();
        b.insert(fp(2), Pbn(20)).unwrap();
        assert_eq!(b.lookup(&fp(1)), Some(Pbn(10)));
        assert_eq!(b.lookup(&fp(3)), None);
        assert_eq!(b.remove(&fp(1)), Some(Pbn(10)));
        assert_eq!(b.lookup(&fp(1)), None);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn fills_to_capacity_then_errors() {
        let mut b = Bucket::new();
        for i in 0..ENTRIES_PER_BUCKET as u64 {
            b.insert(fp(i), Pbn(i)).unwrap();
        }
        assert!(b.is_full());
        assert_eq!(b.insert(fp(9999), Pbn(0)), Err(BucketInsertError::Full));
    }

    #[test]
    fn duplicate_fingerprint_is_a_hard_error() {
        let mut b = Bucket::new();
        b.insert(fp(1), Pbn(10)).unwrap();
        assert_eq!(
            b.insert(fp(1), Pbn(99)),
            Err(BucketInsertError::DuplicateFingerprint)
        );
        // The original mapping survives untouched — no shadowed entry
        // for remove() to resurrect.
        assert_eq!(b.len(), 1);
        assert_eq!(b.lookup(&fp(1)), Some(Pbn(10)));
        assert_eq!(b.remove(&fp(1)), Some(Pbn(10)));
        assert_eq!(b.lookup(&fp(1)), None);
    }

    #[test]
    fn pbn_past_six_byte_encoding_is_rejected_at_insert() {
        let mut b = Bucket::new();
        // Boundary: MAX_ENCODABLE itself is valid…
        b.insert(fp(1), Pbn(Pbn::MAX_ENCODABLE)).unwrap();
        // …one past it is a typed error, not a silent truncation.
        assert_eq!(
            b.insert(fp(2), Pbn(Pbn::MAX_ENCODABLE + 1)),
            Err(BucketInsertError::PbnUnencodable(Pbn::MAX_ENCODABLE + 1))
        );
        assert_eq!(b.len(), 1);
        let parsed = Bucket::from_bytes(&b.to_bytes());
        assert_eq!(parsed.lookup(&fp(1)), Some(Pbn(Pbn::MAX_ENCODABLE)));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut b = Bucket::new();
        for i in 0..50u64 {
            b.insert(fp(i), Pbn(i * 3 + 7)).unwrap();
        }
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), BUCKET_BYTES);
        let parsed = Bucket::from_bytes(&bytes);
        assert_eq!(parsed, b);
    }

    #[test]
    fn six_byte_pbn_roundtrips_large_values() {
        let mut b = Bucket::new();
        b.insert(fp(1), Pbn(Pbn::MAX_ENCODABLE)).unwrap();
        let parsed = Bucket::from_bytes(&b.to_bytes());
        assert_eq!(parsed.lookup(&fp(1)), Some(Pbn(Pbn::MAX_ENCODABLE)));
    }

    #[test]
    fn empty_bucket_roundtrip() {
        let parsed = Bucket::from_bytes(&Bucket::new().to_bytes());
        assert!(parsed.is_empty());
    }

    #[test]
    #[should_panic(expected = "4 KB")]
    fn wrong_size_panics() {
        Bucket::from_bytes(&[0u8; 100]);
    }
}
