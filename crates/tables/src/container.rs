//! Container packing of compressed chunks.
//!
//! "For efficient data storage in an SSD, the server usually makes a large
//! container of compressed chunks and stores them as a single large block"
//! (paper §2.1.4). FIDR's Compression Engine flushes once "the total size of
//! compressed chunks … reaches a threshold (e.g., 4 MB)" (§5.3 step 8).
//!
//! Layout: each chunk is prefixed with a 4-byte header — 1 byte encoding,
//! 3 bytes original length — followed by the compressed payload. The PBA's
//! `offset` points at the header; its `compressed_len` covers the payload.

use fidr_compress::{CompressedChunk, Encoding};
use std::fmt;

/// Default container flush threshold: 4 MB (paper §5.3).
pub const CONTAINER_THRESHOLD: usize = 4 << 20;

/// Per-chunk header size inside a container.
pub const CHUNK_HEADER_BYTES: usize = 4;

/// Error returned when reading a malformed container region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerReadError {
    detail: &'static str,
}

impl fmt::Display for ContainerReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "container read error: {}", self.detail)
    }
}

impl std::error::Error for ContainerReadError {}

/// A sealed container: the unit written to the data SSDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Container sequence number.
    pub id: u64,
    /// Raw container bytes (headers + payloads).
    pub bytes: Vec<u8>,
}

impl Container {
    /// Extracts and decodes the chunk whose header starts at `offset` with
    /// a `compressed_len`-byte payload (both from the PBN→PBA map).
    ///
    /// # Errors
    ///
    /// Returns [`ContainerReadError`] if the region is out of bounds, the
    /// encoding byte is unknown, or decompression fails.
    pub fn read_chunk(
        &self,
        offset: u32,
        compressed_len: u32,
    ) -> Result<Vec<u8>, ContainerReadError> {
        let start = offset as usize;
        let end = start + CHUNK_HEADER_BYTES + compressed_len as usize;
        if end > self.bytes.len() {
            return Err(ContainerReadError {
                detail: "chunk region out of bounds",
            });
        }
        let header = &self.bytes[start..start + CHUNK_HEADER_BYTES];
        let encoding = match header[0] {
            0 => Encoding::Raw,
            1 => Encoding::Lzss,
            _ => {
                return Err(ContainerReadError {
                    detail: "unknown encoding byte",
                })
            }
        };
        let original_len = u32::from_le_bytes([header[1], header[2], header[3], 0]);
        let payload = self.bytes[start + CHUNK_HEADER_BYTES..end].to_vec();
        CompressedChunk::from_parts(encoding, payload, original_len)
            .decompress()
            .map_err(|_| ContainerReadError {
                detail: "payload decompression failed",
            })
    }

    /// Container size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the container holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Location of a chunk appended to a builder, to be recorded in the
/// PBN→PBA map once the container seals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendSlot {
    /// Byte offset of the chunk header inside the container.
    pub offset: u32,
    /// Payload (compressed) length in bytes.
    pub compressed_len: u32,
}

/// Accumulates compressed chunks until the flush threshold.
///
/// # Examples
///
/// ```
/// use fidr_tables::ContainerBuilder;
/// use fidr_compress::CompressedChunk;
///
/// let mut builder = ContainerBuilder::new(0, 1 << 20);
/// let cc = CompressedChunk::compress(&vec![3u8; 4096]);
/// let slot = builder.append(&cc);
/// let container = builder.seal();
/// let data = container.read_chunk(slot.offset, slot.compressed_len)?;
/// assert_eq!(data, vec![3u8; 4096]);
/// # Ok::<(), fidr_tables::ContainerReadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ContainerBuilder {
    id: u64,
    threshold: usize,
    bytes: Vec<u8>,
    chunks: usize,
}

impl ContainerBuilder {
    /// Starts container `id` with the given flush `threshold` in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(id: u64, threshold: usize) -> Self {
        assert!(threshold > 0, "threshold must be non-zero");
        ContainerBuilder {
            id,
            threshold,
            bytes: Vec::with_capacity(threshold),
            chunks: 0,
        }
    }

    /// Container id being built.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Appends a compressed chunk, returning where it landed.
    ///
    /// # Panics
    ///
    /// Panics if the chunk's original length exceeds the 3-byte header
    /// field (16 MB) — far above any chunk size in this system.
    pub fn append(&mut self, chunk: &CompressedChunk) -> AppendSlot {
        assert!(
            chunk.original_len() < (1 << 24),
            "original length exceeds header field"
        );
        let offset = self.bytes.len() as u32;
        let enc_byte = match chunk.encoding() {
            Encoding::Raw => 0u8,
            Encoding::Lzss => 1u8,
        };
        let olen = (chunk.original_len() as u32).to_le_bytes();
        self.bytes
            .extend_from_slice(&[enc_byte, olen[0], olen[1], olen[2]]);
        self.bytes.extend_from_slice(chunk.payload());
        self.chunks += 1;
        AppendSlot {
            offset,
            compressed_len: chunk.stored_len() as u32,
        }
    }

    /// Whether the builder has reached its flush threshold.
    pub fn is_full(&self) -> bool {
        self.bytes.len() >= self.threshold
    }

    /// Bytes accumulated so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Chunks appended so far.
    pub fn chunk_count(&self) -> usize {
        self.chunks
    }

    /// Seals the container for writing to the data SSDs.
    pub fn seal(self) -> Container {
        Container {
            id: self.id,
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidr_compress::ContentGenerator;

    #[test]
    fn pack_and_read_back_many() {
        let gen = ContentGenerator::new(0.5);
        let mut b = ContainerBuilder::new(3, CONTAINER_THRESHOLD);
        let mut slots = Vec::new();
        let mut originals = Vec::new();
        for seed in 0..32u64 {
            let data = gen.chunk(seed, 4096);
            let cc = CompressedChunk::compress(&data);
            slots.push(b.append(&cc));
            originals.push(data);
        }
        assert_eq!(b.chunk_count(), 32);
        let c = b.seal();
        assert_eq!(c.id, 3);
        for (slot, original) in slots.iter().zip(&originals) {
            let data = c.read_chunk(slot.offset, slot.compressed_len).unwrap();
            assert_eq!(&data, original);
        }
    }

    #[test]
    fn threshold_trips_is_full() {
        let mut b = ContainerBuilder::new(0, 5000);
        let cc = CompressedChunk::compress(&vec![1u8; 4096]);
        assert!(!b.is_full());
        while !b.is_full() {
            b.append(&cc);
        }
        assert!(b.len() >= 5000);
    }

    #[test]
    fn out_of_bounds_read_errors() {
        let mut b = ContainerBuilder::new(0, 1024);
        let cc = CompressedChunk::compress(&[1u8; 128]);
        let slot = b.append(&cc);
        let c = b.seal();
        assert!(c
            .read_chunk(slot.offset, slot.compressed_len + 1000)
            .is_err());
        assert!(c.read_chunk(9999, 10).is_err());
    }

    #[test]
    fn unknown_encoding_errors() {
        let c = Container {
            id: 0,
            bytes: vec![9, 0, 0, 0, 1, 2, 3],
        };
        assert!(c.read_chunk(0, 3).is_err());
    }

    #[test]
    fn raw_fallback_chunks_roundtrip() {
        // Incompressible noise goes through the Raw path.
        let mut s = 1u64;
        let data: Vec<u8> = (0..512)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 40) as u8
            })
            .collect();
        let cc = CompressedChunk::compress(&data);
        let mut b = ContainerBuilder::new(0, 1024);
        let slot = b.append(&cc);
        let c = b.seal();
        assert_eq!(
            c.read_chunk(slot.offset, slot.compressed_len).unwrap(),
            data
        );
    }
}
