//! # fidr-tables
//!
//! Data-reduction metadata for FIDR: the bucket-based Hash-PBN table
//! ([`Bucket`], [`HashPbnStore`]; paper §2.1.3), the two-level LBA-PBA map
//! ([`LbaPbaTable`]; §2.1.4), and the container format compressed chunks
//! are packed into before data-SSD writes ([`ContainerBuilder`]).
//!
//! # Examples
//!
//! ```
//! use fidr_tables::{HashPbnStore, LbaPbaTable, PbnLocation};
//! use fidr_hash::Fingerprint;
//! use fidr_chunk::{Lba, Pbn};
//!
//! let mut hash_pbn = HashPbnStore::new(64);
//! let mut lba_map = LbaPbaTable::new();
//!
//! let fp = Fingerprint::of(b"payload");
//! hash_pbn.insert(fp, Pbn(0))?;
//! lba_map.record_pbn(Pbn(0), PbnLocation { container: 0, offset: 0, compressed_len: 512 });
//! lba_map.map_write(Lba(1), Pbn(0));
//! assert!(lba_map.lookup(Lba(1)).is_some());
//! # Ok::<(), fidr_tables::BucketInsertError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod container;
mod hash_pbn;
mod lba_map;
mod liveness;
mod reduction;
mod snapshot;

pub use bucket::{Bucket, BucketInsertError, BUCKET_BYTES, ENTRIES_PER_BUCKET, ENTRY_BYTES};
pub use container::{
    AppendSlot, Container, ContainerBuilder, ContainerReadError, CHUNK_HEADER_BYTES,
    CONTAINER_THRESHOLD,
};
pub use hash_pbn::HashPbnStore;
pub use lba_map::{LbaPbaTable, PbnLocation};
pub use liveness::{ContainerLiveness, GcReport};
pub use reduction::ReductionStats;
pub use snapshot::{Snapshot, SnapshotError};
