//! The full Hash-PBN table as stored on the table SSDs.
//!
//! At PB scale the table is multi-TB and lives on dedicated *table SSDs*
//! with only a slice cached in host DRAM (paper §2.1.3). This store is the
//! authoritative table image: the cache layer fetches whole 4-KB buckets
//! from it on a miss and flushes dirty buckets back, and the SSD model in
//! `fidr-ssd` charges the corresponding IO.
//!
//! This store itself is pure state; its traffic becomes observable one
//! layer up, as `cache.misses.count` / `cache.dirty_flushes.count` on the
//! cache and `ssd.table.*` counters plus the modelled `ssd.table.io.ns`
//! histogram on the table-SSD model (see `docs/OBSERVABILITY.md`).

use crate::bucket::{Bucket, BucketInsertError, BUCKET_BYTES};
use fidr_chunk::Pbn;
use fidr_hash::Fingerprint;

/// The authoritative bucket-based Hash-PBN table.
///
/// # Examples
///
/// ```
/// use fidr_tables::HashPbnStore;
/// use fidr_hash::Fingerprint;
/// use fidr_chunk::Pbn;
///
/// let mut store = HashPbnStore::new(1024);
/// let fp = Fingerprint::of(b"unique chunk");
/// assert_eq!(store.lookup(&fp), None);
/// store.insert(fp, Pbn(1))?;
/// assert_eq!(store.lookup(&fp), Some(Pbn(1)));
/// # Ok::<(), fidr_tables::BucketInsertError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HashPbnStore {
    buckets: Vec<Bucket>,
    entries: u64,
}

impl HashPbnStore {
    /// Creates a table with `num_buckets` empty buckets.
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is zero.
    pub fn new(num_buckets: u64) -> Self {
        assert!(num_buckets > 0, "table needs at least one bucket");
        HashPbnStore {
            buckets: vec![Bucket::new(); num_buckets as usize],
            entries: 0,
        }
    }

    /// Sizes a table for `unique_chunks` expected entries with the given
    /// target load factor (entries per bucket / capacity).
    pub fn with_capacity_for(unique_chunks: u64, load_factor: f64) -> Self {
        assert!(load_factor > 0.0 && load_factor <= 1.0);
        let per_bucket = (crate::bucket::ENTRIES_PER_BUCKET as f64 * load_factor).max(1.0) as u64;
        let buckets = (unique_chunks / per_bucket).max(1);
        HashPbnStore::new(buckets.next_power_of_two())
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Total live entries across all buckets.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Table size in on-SSD bytes.
    pub fn ssd_bytes(&self) -> u64 {
        self.num_buckets() * BUCKET_BYTES as u64
    }

    /// Bucket index for a fingerprint.
    pub fn bucket_of(&self, fp: &Fingerprint) -> u64 {
        fp.bucket_index(self.num_buckets())
    }

    /// Borrows a bucket by index (a table-SSD block read in the model).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bucket(&self, index: u64) -> &Bucket {
        &self.buckets[index as usize]
    }

    /// Replaces a bucket by index (a table-SSD block write / dirty flush).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn write_bucket(&mut self, index: u64, bucket: Bucket) {
        let slot = &mut self.buckets[index as usize];
        self.entries = self.entries - slot.len() as u64 + bucket.len() as u64;
        *slot = bucket;
    }

    /// Direct lookup (used by tests and by flows that model no cache).
    pub fn lookup(&self, fp: &Fingerprint) -> Option<Pbn> {
        self.bucket(self.bucket_of(fp)).lookup(fp)
    }

    /// Direct insert.
    ///
    /// # Errors
    ///
    /// Returns [`BucketInsertError`] if the target bucket is full, the
    /// fingerprint is already present, or the PBN is unencodable.
    pub fn insert(&mut self, fp: Fingerprint, pbn: Pbn) -> Result<(), BucketInsertError> {
        let idx = self.bucket_of(&fp);
        self.buckets[idx as usize].insert(fp, pbn)?;
        self.entries += 1;
        Ok(())
    }

    /// Average bucket occupancy (entries per bucket).
    pub fn load_factor(&self) -> f64 {
        self.entries as f64 / (self.num_buckets() * crate::bucket::ENTRIES_PER_BUCKET as u64) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(i: u64) -> Fingerprint {
        Fingerprint::of(&i.to_le_bytes())
    }

    #[test]
    fn insert_then_lookup_many() {
        let mut s = HashPbnStore::new(256);
        for i in 0..5000u64 {
            s.insert(fp(i), Pbn(i)).unwrap();
        }
        assert_eq!(s.len(), 5000);
        for i in 0..5000u64 {
            assert_eq!(s.lookup(&fp(i)), Some(Pbn(i)), "entry {i}");
        }
        assert_eq!(s.lookup(&fp(999_999)), None);
    }

    #[test]
    fn bucket_write_updates_entry_count() {
        let mut s = HashPbnStore::new(4);
        s.insert(fp(1), Pbn(1)).unwrap();
        let idx = s.bucket_of(&fp(1));
        let mut b = s.bucket(idx).clone();
        b.insert(fp(2_000_000), Pbn(2)).unwrap();
        s.write_bucket(idx, b);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn capacity_sizing() {
        let s = HashPbnStore::with_capacity_for(1_000_000, 0.5);
        // ≥ 1M entries at ≤ 53 per bucket.
        assert!(s.num_buckets() >= 16_384, "buckets {}", s.num_buckets());
        assert!(s.num_buckets().is_power_of_two());
    }

    #[test]
    fn ssd_bytes_matches_bucket_count() {
        let s = HashPbnStore::new(100);
        assert_eq!(s.ssd_bytes(), 100 * 4096);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        HashPbnStore::new(0);
    }
}
