//! Checkpointing: a versioned binary snapshot of all durable state.
//!
//! A real FIDR deployment persists its metadata (the Hash-PBN table is on
//! table SSDs, the LBA-PBA map is journaled) and recovers it after a
//! restart. This reproduction keeps state in memory, so [`Snapshot`]
//! provides the equivalent: each system's `checkpoint` method captures
//! everything durable, [`Snapshot::encode`] serializes it to a compact
//! self-describing binary image, and `restore` rebuilds a server that
//! answers every read identically.
//!
//! Format: `FIDRSNAP` magic, a `u32` version, then length-prefixed
//! sections in fixed order. All integers little-endian.

use crate::{Bucket, Container, PbnLocation};
use fidr_chunk::{Lba, Pbn};
use fidr_hash::Fingerprint;
use std::fmt;

const MAGIC: &[u8; 8] = b"FIDRSNAP";
const VERSION: u32 = 1;

/// Error decoding a snapshot image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Image ended before a field.
    Truncated,
    /// A structurally invalid value.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a FIDR snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot image truncated"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Everything durable in one system, ready to encode.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Hash-PBN table geometry: total buckets on the table SSDs.
    pub num_buckets: u64,
    /// Non-empty buckets as (index, contents).
    pub table_buckets: Vec<(u64, Bucket)>,
    /// LBA → PBN mappings.
    pub lbas: Vec<(Lba, Pbn)>,
    /// PBN → physical location records.
    pub pbns: Vec<(Pbn, PbnLocation)>,
    /// Sealed containers on the data SSDs.
    pub containers: Vec<Container>,
    /// PBN allocation cursor.
    pub next_pbn: u64,
    /// Container allocation cursor.
    pub next_container: u64,
    /// Fingerprint of each live unique chunk (GC needs it).
    pub pbn_fp: Vec<(Pbn, Fingerprint)>,
    /// Container liveness census as (container, live, total).
    pub liveness: Vec<(u64, u32, u32)>,
    /// Dead PBNs awaiting collection.
    pub dead: Vec<Pbn>,
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn fingerprint(&mut self) -> Result<Fingerprint, SnapshotError> {
        let raw: [u8; 32] = self
            .take(32)?
            .try_into()
            .map_err(|_| SnapshotError::Corrupt("fingerprint"))?;
        Ok(Fingerprint::from_bytes(raw))
    }
}

impl Snapshot {
    /// Serializes to the binary image.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer {
            buf: Vec::with_capacity(1 << 16),
        };
        w.buf.extend_from_slice(MAGIC);
        w.u32(VERSION);

        w.u64(self.num_buckets);
        w.u64(self.table_buckets.len() as u64);
        for (idx, bucket) in &self.table_buckets {
            w.u64(*idx);
            w.u16(bucket.len() as u16);
            for (fp, pbn) in bucket.iter() {
                w.buf.extend_from_slice(fp.as_bytes());
                w.u64(pbn.0);
            }
        }

        w.u64(self.lbas.len() as u64);
        for (lba, pbn) in &self.lbas {
            w.u64(lba.0);
            w.u64(pbn.0);
        }

        w.u64(self.pbns.len() as u64);
        for (pbn, loc) in &self.pbns {
            w.u64(pbn.0);
            w.u64(loc.container);
            w.u32(loc.offset);
            w.u32(loc.compressed_len);
        }

        w.u64(self.containers.len() as u64);
        for c in &self.containers {
            w.u64(c.id);
            w.bytes(&c.bytes);
        }

        w.u64(self.next_pbn);
        w.u64(self.next_container);

        w.u64(self.pbn_fp.len() as u64);
        for (pbn, fp) in &self.pbn_fp {
            w.u64(pbn.0);
            w.buf.extend_from_slice(fp.as_bytes());
        }

        w.u64(self.liveness.len() as u64);
        for (c, live, total) in &self.liveness {
            w.u64(*c);
            w.u32(*live);
            w.u32(*total);
        }

        w.u64(self.dead.len() as u64);
        for pbn in &self.dead {
            w.u64(pbn.0);
        }
        w.buf
    }

    /// Parses a binary image.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on bad magic, an unsupported version, truncation
    /// or structural corruption.
    pub fn decode(image: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { buf: image, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }

        let num_buckets = r.u64()?;
        if num_buckets == 0 {
            return Err(SnapshotError::Corrupt("zero buckets"));
        }
        let n = r.u64()? as usize;
        let mut table_buckets = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = r.u64()?;
            if idx >= num_buckets {
                return Err(SnapshotError::Corrupt("bucket index out of range"));
            }
            let count = r.u16()? as usize;
            let mut bucket = Bucket::new();
            for _ in 0..count {
                let fp = r.fingerprint()?;
                let pbn = Pbn(r.u64()?);
                bucket
                    .insert(fp, pbn)
                    .map_err(|_| SnapshotError::Corrupt("overfull bucket"))?;
            }
            table_buckets.push((idx, bucket));
        }

        let n = r.u64()? as usize;
        let mut lbas = Vec::with_capacity(n);
        for _ in 0..n {
            lbas.push((Lba(r.u64()?), Pbn(r.u64()?)));
        }

        let n = r.u64()? as usize;
        let mut pbns = Vec::with_capacity(n);
        for _ in 0..n {
            let pbn = Pbn(r.u64()?);
            let container = r.u64()?;
            let offset = r.u32()?;
            let compressed_len = r.u32()?;
            pbns.push((
                pbn,
                PbnLocation {
                    container,
                    offset,
                    compressed_len,
                },
            ));
        }

        let n = r.u64()? as usize;
        let mut containers = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.u64()?;
            let bytes = r.bytes()?;
            containers.push(Container { id, bytes });
        }

        let next_pbn = r.u64()?;
        let next_container = r.u64()?;

        let n = r.u64()? as usize;
        let mut pbn_fp = Vec::with_capacity(n);
        for _ in 0..n {
            let pbn = Pbn(r.u64()?);
            pbn_fp.push((pbn, r.fingerprint()?));
        }

        let n = r.u64()? as usize;
        let mut liveness = Vec::with_capacity(n);
        for _ in 0..n {
            liveness.push((r.u64()?, r.u32()?, r.u32()?));
        }

        let n = r.u64()? as usize;
        let mut dead = Vec::with_capacity(n);
        for _ in 0..n {
            dead.push(Pbn(r.u64()?));
        }

        Ok(Snapshot {
            num_buckets,
            table_buckets,
            lbas,
            pbns,
            containers,
            next_pbn,
            next_container,
            pbn_fp,
            liveness,
            dead,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut bucket = Bucket::new();
        bucket
            .insert(Fingerprint::of(b"chunk"), Pbn(3))
            .expect("room");
        Snapshot {
            num_buckets: 64,
            table_buckets: vec![(5, bucket)],
            lbas: vec![(Lba(1), Pbn(3)), (Lba(2), Pbn(3))],
            pbns: vec![(
                Pbn(3),
                PbnLocation {
                    container: 0,
                    offset: 16,
                    compressed_len: 2048,
                },
            )],
            containers: vec![Container {
                id: 0,
                bytes: vec![1, 2, 3, 4],
            }],
            next_pbn: 4,
            next_container: 1,
            pbn_fp: vec![(Pbn(3), Fingerprint::of(b"chunk"))],
            liveness: vec![(0, 1, 1)],
            dead: vec![Pbn(9)],
        }
    }

    #[test]
    fn roundtrip() {
        let snap = sample();
        let image = snap.encode();
        assert_eq!(Snapshot::decode(&image).unwrap(), snap);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            Snapshot::decode(b"NOTASNAP____"),
            Err(SnapshotError::BadMagic)
        );
        let mut image = sample().encode();
        image[9] = 0xFF; // version bytes
        assert!(matches!(
            Snapshot::decode(&image),
            Err(SnapshotError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let image = sample().encode();
        for cut in [8, 12, 20, image.len() / 2, image.len() - 1] {
            assert!(
                Snapshot::decode(&image[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_bucket_index() {
        let mut snap = sample();
        snap.table_buckets[0].0 = 999; // > num_buckets
        let image = snap.encode();
        assert_eq!(
            Snapshot::decode(&image),
            Err(SnapshotError::Corrupt("bucket index out of range"))
        );
    }
}
