//! Container liveness tracking for garbage collection.
//!
//! Deduplicating stores only append: an overwrite maps the LBA to a new
//! PBN and decrements the old chunk's reference count. Dead chunks strand
//! capacity inside sealed containers until a collector rewrites the
//! survivors and drops the container. This tracker maintains the live/total
//! census per container that drives victim selection.

use std::collections::HashMap;

/// Outcome of one garbage-collection pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Dead PBNs whose metadata was reclaimed.
    pub reclaimed_pbns: u64,
    /// Containers compacted and dropped.
    pub compacted_containers: u64,
    /// Live chunks rewritten into fresh containers.
    pub moved_chunks: u64,
    /// Compressed bytes of the rewritten survivors (the copy cost the
    /// compaction paid to earn `freed_bytes`).
    pub copied_bytes: u64,
    /// Data-SSD bytes freed.
    pub freed_bytes: u64,
}

impl GcReport {
    /// Folds another pass's outcome into this one (cumulative totals).
    pub fn absorb(&mut self, other: GcReport) {
        self.reclaimed_pbns += other.reclaimed_pbns;
        self.compacted_containers += other.compacted_containers;
        self.moved_chunks += other.moved_chunks;
        self.copied_bytes += other.copied_bytes;
        self.freed_bytes += other.freed_bytes;
    }
}

/// Per-container live-chunk census.
///
/// # Examples
///
/// ```
/// use fidr_tables::ContainerLiveness;
///
/// let mut live = ContainerLiveness::new();
/// live.record_append(7);
/// live.record_append(7);
/// live.record_dead(7);
/// assert_eq!(live.live_fraction(7), Some(0.5));
/// assert_eq!(live.sparse_containers(0.6), vec![7]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContainerLiveness {
    counts: HashMap<u64, (u32, u32)>, // (live, total)
}

impl ContainerLiveness {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ContainerLiveness::default()
    }

    /// Records a chunk appended to `container`.
    pub fn record_append(&mut self, container: u64) {
        let entry = self.counts.entry(container).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += 1;
    }

    /// Records a chunk in `container` going dead (refcount → 0).
    ///
    /// # Panics
    ///
    /// Panics if the container has no live chunks on record.
    pub fn record_dead(&mut self, container: u64) {
        let entry = self
            .counts
            .get_mut(&container)
            .expect("death recorded for unknown container");
        assert!(entry.0 > 0, "container {container} already fully dead");
        entry.0 -= 1;
    }

    /// Records a previously-dead chunk coming back to life (a duplicate
    /// write re-referenced it before collection ran).
    ///
    /// # Panics
    ///
    /// Panics if the container is untracked or already fully live.
    pub fn record_revive(&mut self, container: u64) {
        let entry = self
            .counts
            .get_mut(&container)
            .expect("revival in unknown container");
        assert!(
            entry.0 < entry.1,
            "container {container} already fully live"
        );
        entry.0 += 1;
    }

    /// Live chunks currently in `container`.
    pub fn live_chunks(&self, container: u64) -> u32 {
        self.counts.get(&container).map_or(0, |&(live, _)| live)
    }

    /// Live fraction of `container`, or `None` if untracked.
    pub fn live_fraction(&self, container: u64) -> Option<f64> {
        self.counts
            .get(&container)
            .map(|&(live, total)| f64::from(live) / f64::from(total.max(1)))
    }

    /// Containers whose live fraction fell below `threshold`, sorted by
    /// id (deterministic victim order).
    pub fn sparse_containers(&self, threshold: f64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .counts
            .iter()
            .filter(|&(_, &(live, total))| f64::from(live) < threshold * f64::from(total.max(1)))
            .map(|(&id, _)| id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Forgets a container (after compaction dropped it).
    pub fn remove(&mut self, container: u64) {
        self.counts.remove(&container);
    }

    /// Number of tracked containers.
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over (container, live, total) records (checkpointing).
    pub fn entries(&self) -> impl Iterator<Item = (u64, u32, u32)> + '_ {
        self.counts
            .iter()
            .map(|(&c, &(live, total))| (c, live, total))
    }

    /// Rebuilds a tracker from checkpointed records.
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, u32, u32)>) -> Self {
        ContainerLiveness {
            counts: entries
                .into_iter()
                .map(|(c, live, total)| (c, (live, total)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_tracks_appends_and_deaths() {
        let mut l = ContainerLiveness::new();
        for _ in 0..10 {
            l.record_append(1);
        }
        assert_eq!(l.live_chunks(1), 10);
        for _ in 0..7 {
            l.record_dead(1);
        }
        assert_eq!(l.live_chunks(1), 3);
        assert_eq!(l.live_fraction(1), Some(0.3));
    }

    #[test]
    fn sparse_selection_respects_threshold() {
        let mut l = ContainerLiveness::new();
        for c in [1u64, 2, 3] {
            for _ in 0..4 {
                l.record_append(c);
            }
        }
        l.record_dead(2); // 75% live
        for _ in 0..3 {
            l.record_dead(3); // 25% live
        }
        assert_eq!(l.sparse_containers(0.5), vec![3]);
        assert_eq!(l.sparse_containers(0.8), vec![2, 3]);
        assert!(l.sparse_containers(0.1).is_empty());
    }

    #[test]
    fn remove_untracks() {
        let mut l = ContainerLiveness::new();
        l.record_append(9);
        l.remove(9);
        assert_eq!(l.tracked(), 0);
        assert_eq!(l.live_fraction(9), None);
    }

    #[test]
    #[should_panic(expected = "already fully dead")]
    fn over_death_panics() {
        let mut l = ContainerLiveness::new();
        l.record_append(1);
        l.record_dead(1);
        l.record_dead(1);
    }
}
