//! Data-reduction outcome accounting shared by both systems.

/// What a data-reduction run achieved, independent of which architecture
/// (baseline or FIDR) executed it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Client write chunks processed.
    pub write_chunks: u64,
    /// Client read chunks served.
    pub read_chunks: u64,
    /// Write chunks eliminated by deduplication.
    pub duplicate_chunks: u64,
    /// Write chunks stored (compressed) as new uniques.
    pub unique_chunks: u64,
    /// Raw client bytes written.
    pub raw_bytes: u64,
    /// Bytes actually stored after dedup + compression.
    pub stored_bytes: u64,
    /// Containers sealed and written to the data SSDs.
    pub containers_sealed: u64,
}

impl ReductionStats {
    /// Measured deduplication ratio (duplicates / writes).
    pub fn dedup_ratio(&self) -> f64 {
        if self.write_chunks == 0 {
            0.0
        } else {
            self.duplicate_chunks as f64 / self.write_chunks as f64
        }
    }

    /// Overall data-reduction factor (raw / stored; the cost model's
    /// SSD-savings driver).
    pub fn reduction_factor(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.stored_bytes as f64
        }
    }

    /// Fraction of raw bytes removed by reduction.
    pub fn bytes_saved_fraction(&self) -> f64 {
        if self.raw_bytes == 0 {
            0.0
        } else {
            1.0 - self.stored_bytes as f64 / self.raw_bytes as f64
        }
    }

    /// Exports the counters and derived ratios under the `reduction.*`
    /// prefix (see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, out: &mut fidr_metrics::MetricsSnapshot) {
        out.set_counter("reduction.write_chunks.count", self.write_chunks);
        out.set_counter("reduction.read_chunks.count", self.read_chunks);
        out.set_counter("reduction.duplicate_chunks.count", self.duplicate_chunks);
        out.set_counter("reduction.unique_chunks.count", self.unique_chunks);
        out.set_counter("reduction.raw.bytes", self.raw_bytes);
        out.set_counter("reduction.stored.bytes", self.stored_bytes);
        out.set_counter("reduction.containers_sealed.count", self.containers_sealed);
        out.set_gauge("reduction.dedup.ratio", self.dedup_ratio());
        out.set_gauge("reduction.factor.ratio", self.reduction_factor());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = ReductionStats {
            write_chunks: 100,
            duplicate_chunks: 50,
            unique_chunks: 50,
            raw_bytes: 400_000,
            stored_bytes: 100_000,
            ..ReductionStats::default()
        };
        assert!((s.dedup_ratio() - 0.5).abs() < 1e-12);
        assert!((s.reduction_factor() - 4.0).abs() < 1e-12);
        assert!((s.bytes_saved_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = ReductionStats::default();
        assert_eq!(s.dedup_ratio(), 0.0);
        assert_eq!(s.reduction_factor(), 1.0);
        assert_eq!(s.bytes_saved_fraction(), 0.0);
    }
}
