//! The LBA-PBA table: two-level logical→physical mapping.
//!
//! "Because chunks have variable sizes after being compressed, we use two
//! level mapping of LBA to PBA. … the LBA-PBA table internally has LBA-PBN
//! mapping (an array whose index is LBA and its value is the PBN in a
//! container) and PBN-PBA mapping (an array whose index is PBN and its
//! value is <offset address in the container, compressed chunk size>)"
//! (paper §2.1.4). We additionally keep per-PBN reference counts so that
//! overwrites can, in an extension, reclaim dead unique chunks.

use fidr_chunk::{Lba, Pba, Pbn};
use std::collections::HashMap;

/// Physical location of one unique chunk: which container and where in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbnLocation {
    /// Container id on the data SSDs.
    pub container: u64,
    /// Byte offset inside the container.
    pub offset: u32,
    /// Compressed size in bytes.
    pub compressed_len: u32,
}

/// The two-level LBA→PBA map with PBN reference counting.
///
/// # Examples
///
/// ```
/// use fidr_tables::{LbaPbaTable, PbnLocation};
/// use fidr_chunk::{Lba, Pbn};
///
/// let mut map = LbaPbaTable::new();
/// map.record_pbn(Pbn(0), PbnLocation { container: 1, offset: 0, compressed_len: 2048 });
/// map.map_write(Lba(10), Pbn(0));
/// let pba = map.lookup(Lba(10)).unwrap();
/// assert_eq!(pba.container, 1);
/// assert_eq!(pba.compressed_len, 2048);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LbaPbaTable {
    lba_to_pbn: HashMap<Lba, Pbn>,
    pbn_to_loc: HashMap<Pbn, PbnLocation>,
    refcount: HashMap<Pbn, u32>,
}

impl LbaPbaTable {
    /// Creates an empty map.
    pub fn new() -> Self {
        LbaPbaTable::default()
    }

    /// Registers where a newly written unique chunk lives.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if the PBN already has a location; PBNs are
    /// allocated once per unique chunk.
    pub fn record_pbn(&mut self, pbn: Pbn, loc: PbnLocation) {
        debug_assert!(
            !self.pbn_to_loc.contains_key(&pbn),
            "PBN {pbn} located twice"
        );
        self.pbn_to_loc.insert(pbn, loc);
    }

    /// Points `lba` at `pbn` (a duplicate hit or a fresh unique write),
    /// maintaining reference counts. Returns a PBN whose reference count
    /// dropped to zero, if the overwrite orphaned one. Zero-count entries
    /// are removed from the refcount map immediately, so its size stays
    /// bounded by the live PBN population under overwrite/delete churn
    /// ([`refcount`](Self::refcount) reads absent entries as 0).
    pub fn map_write(&mut self, lba: Lba, pbn: Pbn) -> Option<Pbn> {
        *self.refcount.entry(pbn).or_insert(0) += 1;
        let old = self.lba_to_pbn.insert(lba, pbn);
        if let Some(old_pbn) = old {
            if old_pbn != pbn {
                let rc = self
                    .refcount
                    .get_mut(&old_pbn)
                    .expect("mapped PBN has a refcount");
                *rc -= 1;
                if *rc == 0 {
                    self.refcount.remove(&old_pbn);
                    return Some(old_pbn);
                }
            } else {
                // Same PBN re-mapped: undo the double count.
                *self.refcount.get_mut(&pbn).expect("just inserted") -= 1;
            }
        }
        None
    }

    /// Removes `lba`'s mapping (a client delete), decrementing its PBN's
    /// reference count and dropping the counter entry when it reaches
    /// zero. Returns the PBN the LBA pointed at, or `None` if the LBA was
    /// never mapped; check [`refcount`](Self::refcount) afterwards to see
    /// whether the delete orphaned the chunk.
    pub fn unmap(&mut self, lba: Lba) -> Option<Pbn> {
        let pbn = self.lba_to_pbn.remove(&lba)?;
        let rc = self
            .refcount
            .get_mut(&pbn)
            .expect("mapped PBN has a refcount");
        *rc -= 1;
        if *rc == 0 {
            self.refcount.remove(&pbn);
        }
        Some(pbn)
    }

    /// Resolves an LBA to its physical address (the read path, §2.2).
    pub fn lookup(&self, lba: Lba) -> Option<Pba> {
        let pbn = self.lba_to_pbn.get(&lba)?;
        let loc = self.pbn_to_loc.get(pbn).expect("mapped PBN has a location");
        Some(Pba {
            container: loc.container,
            offset: loc.offset,
            compressed_len: loc.compressed_len,
        })
    }

    /// The PBN an LBA currently maps to.
    pub fn pbn_of(&self, lba: Lba) -> Option<Pbn> {
        self.lba_to_pbn.get(&lba).copied()
    }

    /// Current reference count of a PBN (0 if never referenced).
    pub fn refcount(&self, pbn: Pbn) -> u32 {
        self.refcount.get(&pbn).copied().unwrap_or(0)
    }

    /// Number of mapped LBAs.
    pub fn mapped_lbas(&self) -> usize {
        self.lba_to_pbn.len()
    }

    /// Number of PBNs with a live (non-zero) reference count — the
    /// refcount map's actual size, for asserting it stays bounded under
    /// churn.
    pub fn tracked_refcounts(&self) -> usize {
        self.refcount.len()
    }

    /// Number of located unique chunks.
    pub fn unique_chunks(&self) -> usize {
        self.pbn_to_loc.len()
    }

    /// Drops a dead PBN's location (garbage collection).
    ///
    /// # Panics
    ///
    /// Panics if the PBN is still referenced.
    pub fn reclaim(&mut self, pbn: Pbn) -> Option<PbnLocation> {
        assert_eq!(self.refcount(pbn), 0, "reclaiming live PBN {pbn}");
        self.refcount.remove(&pbn);
        self.pbn_to_loc.remove(&pbn)
    }

    /// Current location of a PBN, if recorded.
    pub fn location(&self, pbn: Pbn) -> Option<PbnLocation> {
        self.pbn_to_loc.get(&pbn).copied()
    }

    /// Moves a live PBN to a new physical location (container compaction:
    /// the survivor was rewritten into a fresh container).
    ///
    /// # Panics
    ///
    /// Panics if the PBN has no recorded location.
    pub fn relocate(&mut self, pbn: Pbn, loc: PbnLocation) {
        let slot = self
            .pbn_to_loc
            .get_mut(&pbn)
            .expect("relocating unknown PBN");
        *slot = loc;
    }

    /// Iterates over (LBA, PBN) mappings (checkpointing).
    pub fn lba_entries(&self) -> impl Iterator<Item = (Lba, Pbn)> + '_ {
        self.lba_to_pbn.iter().map(|(&l, &p)| (l, p))
    }

    /// Iterates over (PBN, location) records (checkpointing).
    pub fn pbn_entries(&self) -> impl Iterator<Item = (Pbn, PbnLocation)> + '_ {
        self.pbn_to_loc.iter().map(|(&p, &loc)| (p, loc))
    }

    /// Rebuilds a map from checkpointed entries; reference counts are
    /// recomputed from the LBA mappings.
    pub fn from_entries(
        lbas: impl IntoIterator<Item = (Lba, Pbn)>,
        pbns: impl IntoIterator<Item = (Pbn, PbnLocation)>,
    ) -> Self {
        let mut map = LbaPbaTable::new();
        for (pbn, loc) in pbns {
            map.pbn_to_loc.insert(pbn, loc);
        }
        for (lba, pbn) in lbas {
            map.lba_to_pbn.insert(lba, pbn);
            *map.refcount.entry(pbn).or_insert(0) += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(c: u64) -> PbnLocation {
        PbnLocation {
            container: c,
            offset: 16,
            compressed_len: 1024,
        }
    }

    #[test]
    fn write_then_read() {
        let mut m = LbaPbaTable::new();
        m.record_pbn(Pbn(5), loc(2));
        m.map_write(Lba(1), Pbn(5));
        let pba = m.lookup(Lba(1)).unwrap();
        assert_eq!(pba.container, 2);
        assert_eq!(m.lookup(Lba(2)), None);
    }

    #[test]
    fn dedup_shares_pbn_and_counts_refs() {
        let mut m = LbaPbaTable::new();
        m.record_pbn(Pbn(1), loc(1));
        m.map_write(Lba(10), Pbn(1));
        m.map_write(Lba(20), Pbn(1));
        assert_eq!(m.refcount(Pbn(1)), 2);
        assert_eq!(m.unique_chunks(), 1);
        assert_eq!(m.mapped_lbas(), 2);
    }

    #[test]
    fn overwrite_releases_old_pbn() {
        let mut m = LbaPbaTable::new();
        m.record_pbn(Pbn(1), loc(1));
        m.record_pbn(Pbn(2), loc(2));
        m.map_write(Lba(10), Pbn(1));
        let dead = m.map_write(Lba(10), Pbn(2));
        assert_eq!(dead, Some(Pbn(1)));
        assert_eq!(m.refcount(Pbn(1)), 0);
        assert_eq!(m.lookup(Lba(10)).unwrap().container, 2);
        assert_eq!(m.reclaim(Pbn(1)), Some(loc(1)));
    }

    #[test]
    fn rewriting_same_pbn_keeps_count_stable() {
        let mut m = LbaPbaTable::new();
        m.record_pbn(Pbn(1), loc(1));
        m.map_write(Lba(10), Pbn(1));
        let dead = m.map_write(Lba(10), Pbn(1));
        assert_eq!(dead, None);
        assert_eq!(m.refcount(Pbn(1)), 1);
    }

    #[test]
    fn unmap_releases_refs_and_reports_orphans() {
        let mut m = LbaPbaTable::new();
        m.record_pbn(Pbn(1), loc(1));
        m.map_write(Lba(10), Pbn(1));
        m.map_write(Lba(20), Pbn(1));
        // First unmap: PBN still shared.
        assert_eq!(m.unmap(Lba(10)), Some(Pbn(1)));
        assert_eq!(m.refcount(Pbn(1)), 1);
        // Last unmap orphans the chunk and drops its counter entry.
        assert_eq!(m.unmap(Lba(20)), Some(Pbn(1)));
        assert_eq!(m.refcount(Pbn(1)), 0);
        assert_eq!(m.tracked_refcounts(), 0);
        assert_eq!(m.mapped_lbas(), 0);
        // Never-mapped LBAs report None.
        assert_eq!(m.unmap(Lba(99)), None);
        // The orphan is now reclaimable without tripping the assertion.
        assert_eq!(m.reclaim(Pbn(1)), Some(loc(1)));
    }

    #[test]
    fn churn_keeps_refcount_map_bounded() {
        let mut m = LbaPbaTable::new();
        // 1000 overwrites of one LBA: every overwrite orphans the prior
        // PBN, whose zero-count entry must not linger.
        for i in 0..1000u64 {
            m.record_pbn(Pbn(i), loc(i));
            m.map_write(Lba(0), Pbn(i));
        }
        assert_eq!(m.tracked_refcounts(), 1, "only the live PBN is tracked");
        // Delete churn too: map then unmap fresh LBAs.
        for i in 1000..2000u64 {
            m.record_pbn(Pbn(i), loc(i));
            m.map_write(Lba(i), Pbn(i));
            m.unmap(Lba(i));
        }
        assert_eq!(m.tracked_refcounts(), 1);
    }

    #[test]
    #[should_panic(expected = "reclaiming live PBN")]
    fn reclaiming_live_pbn_panics() {
        let mut m = LbaPbaTable::new();
        m.record_pbn(Pbn(1), loc(1));
        m.map_write(Lba(1), Pbn(1));
        m.reclaim(Pbn(1));
    }
}
