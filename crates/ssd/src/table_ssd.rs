//! Table SSDs: the authoritative home of the Hash-PBN table.
//!
//! "We assumed that the data reduction tables are in dedicated SSDs (i.e.,
//! Table SSDs) and a software module manages caching of the tables in host
//! memory" (paper §2.3). Accesses are random 4-KB bucket reads (cache-miss
//! fetches) and writes (dirty flushes). Whose cycles those IOs cost depends
//! on queue placement: the CIDR baseline drives them from the host NVMe
//! stack; FIDR moves the queues into the Cache HW-Engine (§6.1).

use crate::nvme::{QueueLocation, SsdSpec, SsdStats};
use crate::retry::RetryState;
use fidr_faults::{FaultInjector, FaultSite, RetryPolicy};
use fidr_metrics::{Histogram, MetricsSnapshot};
use fidr_tables::{Bucket, HashPbnStore, BUCKET_BYTES};
use std::fmt;
use std::time::Duration;

/// Error returned by table-SSD bucket IO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableSsdError {
    /// An injected transient device error persisted through the whole
    /// retry budget (`attempts` tries, including the first).
    Io {
        /// The device operation that failed.
        op: &'static str,
        /// Total attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for TableSsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableSsdError::Io { op, attempts } => {
                write!(f, "table-SSD {op} failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for TableSsdError {}

/// The table-SSD device wrapping the authoritative [`HashPbnStore`].
///
/// # Examples
///
/// ```
/// use fidr_ssd::TableSsd;
/// use fidr_ssd::QueueLocation;
///
/// let mut ssd = TableSsd::new(1024, QueueLocation::HostMemory);
/// let bucket = ssd.fetch_bucket(17)?;
/// assert!(bucket.is_empty());
/// assert_eq!(ssd.stats().read_ios, 1);
/// # Ok::<(), fidr_ssd::TableSsdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TableSsd {
    store: HashPbnStore,
    spec: SsdSpec,
    stats: SsdStats,
    queue_location: QueueLocation,
    /// Modelled device service time per bucket IO (spec-derived, not
    /// wall-clock — this is a simulated device).
    io_ns: Histogram,
    retry: RetryState,
}

impl TableSsd {
    /// Creates a table SSD holding an empty table of `num_buckets` buckets.
    pub fn new(num_buckets: u64, queue_location: QueueLocation) -> Self {
        TableSsd {
            store: HashPbnStore::new(num_buckets),
            spec: SsdSpec::default(),
            stats: SsdStats::default(),
            queue_location,
            io_ns: Histogram::new(),
            retry: RetryState::disabled(),
        }
    }

    /// Wraps an existing table image.
    pub fn from_store(store: HashPbnStore, queue_location: QueueLocation) -> Self {
        TableSsd {
            store,
            spec: SsdSpec::default(),
            stats: SsdStats::default(),
            queue_location,
            io_ns: Histogram::new(),
            retry: RetryState::disabled(),
        }
    }

    /// Arms fault injection: `injector` decides which bucket IOs fault,
    /// `policy` bounds the device-level transparent retries.
    pub fn set_fault_injector(&mut self, injector: FaultInjector, policy: RetryPolicy) {
        self.retry.configure(injector, policy);
    }

    /// Number of buckets in the table.
    pub fn num_buckets(&self) -> u64 {
        self.store.num_buckets()
    }

    /// Where this device's NVMe queues live.
    pub fn queue_location(&self) -> QueueLocation {
        self.queue_location
    }

    /// Reads a 4-KB bucket (a table-cache miss fetch).
    ///
    /// # Errors
    ///
    /// [`TableSsdError::Io`] if an injected transient fault outlives the
    /// retry budget.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn fetch_bucket(&mut self, index: u64) -> Result<Bucket, TableSsdError> {
        self.retry
            .attempt(FaultSite::TableRead)
            .map_err(|attempts| TableSsdError::Io {
                op: "bucket fetch",
                attempts,
            })?;
        self.stats.record_read(BUCKET_BYTES as u64);
        self.io_ns
            .record_duration(self.spec.read_time(BUCKET_BYTES as u64));
        Ok(self.store.bucket(index).clone())
    }

    /// Writes a 4-KB bucket back (a dirty cache-line flush). On error the
    /// stored bucket is untouched, so the caller still holds the only
    /// up-to-date copy and can retry or fail its own operation.
    ///
    /// # Errors
    ///
    /// [`TableSsdError::Io`] if an injected transient fault outlives the
    /// retry budget.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn flush_bucket(&mut self, index: u64, bucket: Bucket) -> Result<(), TableSsdError> {
        self.retry
            .attempt(FaultSite::TableWrite)
            .map_err(|attempts| TableSsdError::Io {
                op: "bucket flush",
                attempts,
            })?;
        self.stats.record_write(BUCKET_BYTES as u64);
        self.io_ns
            .record_duration(self.spec.write_time(BUCKET_BYTES as u64));
        self.store.write_bucket(index, bucket);
        Ok(())
    }

    /// Service time for one random 4-KB bucket IO.
    pub fn bucket_io_time(&self) -> Duration {
        self.spec.read_time(BUCKET_BYTES as u64)
    }

    /// IO statistics so far.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Read-only view of the authoritative table (for verification).
    pub fn store(&self) -> &HashPbnStore {
        &self.store
    }

    /// Exports IO counters and the modelled per-IO service-time histogram
    /// under the `ssd.table.*` prefix (see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, out: &mut MetricsSnapshot) {
        out.set_counter("ssd.table.read.ios", self.stats.read_ios);
        out.set_counter("ssd.table.read.bytes", self.stats.read_bytes);
        out.set_counter("ssd.table.write.ios", self.stats.write_ios);
        out.set_counter("ssd.table.write.bytes", self.stats.write_bytes);
        out.set_histogram("ssd.table.io.ns", &self.io_ns);
        self.retry.export_metrics("ssd.table", out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidr_chunk::Pbn;
    use fidr_hash::Fingerprint;

    #[test]
    fn fetch_modify_flush_persists() {
        let mut ssd = TableSsd::new(64, QueueLocation::CacheEngine);
        let fp = Fingerprint::of(b"k");
        let idx = ssd.store().bucket_of(&fp);
        let mut b = ssd.fetch_bucket(idx).unwrap();
        b.insert(fp, Pbn(3)).unwrap();
        ssd.flush_bucket(idx, b).unwrap();
        assert_eq!(ssd.fetch_bucket(idx).unwrap().lookup(&fp), Some(Pbn(3)));
        assert_eq!(ssd.stats().read_ios, 2);
        assert_eq!(ssd.stats().write_ios, 1);
        assert_eq!(ssd.stats().write_bytes, 4096);
    }

    #[test]
    fn persistent_bucket_fault_exhausts_retries_without_side_effects() {
        use fidr_faults::{FaultInjector, FaultPlan, RetryPolicy};
        let mut ssd = TableSsd::new(64, QueueLocation::CacheEngine);
        let fp = Fingerprint::of(b"k");
        let idx = ssd.store().bucket_of(&fp);
        let mut b = ssd.fetch_bucket(idx).unwrap();
        b.insert(fp, Pbn(9)).unwrap();
        let plan = FaultPlan {
            table_write_error: 1.0,
            ..FaultPlan::default()
        };
        ssd.set_fault_injector(FaultInjector::new(plan), RetryPolicy::default());
        assert_eq!(
            ssd.flush_bucket(idx, b).unwrap_err(),
            TableSsdError::Io {
                op: "bucket flush",
                attempts: 5
            }
        );
        // The store kept its old (empty) bucket: the failed flush wrote
        // nothing, so the caller's copy is still the only current one.
        assert_eq!(ssd.store().bucket(idx).lookup(&fp), None);
        assert_eq!(ssd.stats().write_ios, 0);
    }

    #[test]
    fn queue_location_is_preserved() {
        let ssd = TableSsd::new(8, QueueLocation::CacheEngine);
        assert_eq!(ssd.queue_location(), QueueLocation::CacheEngine);
    }

    #[test]
    fn bucket_io_time_is_positive() {
        let ssd = TableSsd::new(8, QueueLocation::HostMemory);
        assert!(ssd.bucket_io_time() > Duration::ZERO);
    }
}
