//! Device-level bounded retry against injected transient faults.
//!
//! Both SSD models share this state: a [`FaultInjector`] handle deciding
//! which operations fault, a [`RetryPolicy`] bounding recovery, and the
//! counters/histograms the devices export. Backoff is *modelled* device
//! time (recorded into a histogram and returned to the caller for its
//! latency model), never a wall-clock sleep.

use fidr_faults::{FaultInjector, FaultSite, RetryPolicy};
use fidr_metrics::{Histogram, MetricsSnapshot};
use std::time::Duration;

#[derive(Debug, Clone)]
pub(crate) struct RetryState {
    injector: FaultInjector,
    policy: RetryPolicy,
    retries: u64,
    exhausted: u64,
    backoff_ns: Histogram,
}

impl RetryState {
    pub(crate) fn disabled() -> Self {
        RetryState {
            injector: FaultInjector::disabled(),
            policy: RetryPolicy::default(),
            retries: 0,
            exhausted: 0,
            backoff_ns: Histogram::new(),
        }
    }

    pub(crate) fn configure(&mut self, injector: FaultInjector, policy: RetryPolicy) {
        self.injector = injector;
        self.policy = policy;
    }

    /// One probabilistic decision outside the retry loop (e.g. in-flight
    /// read corruption, which retries cannot mask).
    pub(crate) fn fire(&self, site: FaultSite) -> bool {
        self.injector.fire(site)
    }

    /// Drives the bounded-retry loop for one device operation at `site`.
    /// Returns the modelled backoff time accumulated before a successful
    /// attempt, or `Err(attempts)` if every attempt in the budget faulted.
    pub(crate) fn attempt(&mut self, site: FaultSite) -> Result<Duration, u32> {
        let mut backoff = Duration::ZERO;
        let max = self.policy.max_retries;
        for attempt in 0..=max {
            if !self.injector.fire(site) {
                return Ok(backoff);
            }
            if attempt == max {
                break;
            }
            self.retries += 1;
            let b = self.policy.backoff(attempt);
            self.backoff_ns.record_duration(b);
            backoff += b;
        }
        self.exhausted += 1;
        Err(max + 1)
    }

    /// Exports `<prefix>.retry.*` counters and the backoff histogram.
    pub(crate) fn export_metrics(&self, prefix: &str, out: &mut MetricsSnapshot) {
        out.set_counter(&format!("{prefix}.retry.attempts"), self.retries);
        out.set_counter(&format!("{prefix}.retry.exhausted"), self.exhausted);
        out.set_histogram(&format!("{prefix}.retry.backoff.ns"), &self.backoff_ns);
    }
}
