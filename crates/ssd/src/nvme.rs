//! NVMe device timing and IO statistics.
//!
//! The prototype uses Samsung 970 Pro NVMe SSDs (paper §7.1). The model
//! captures what the evaluation depends on: per-IO service time (latency +
//! bytes/bandwidth), IO and byte counts, and *where the submission and
//! completion queues live* — in host memory for data SSDs, or inside the
//! Cache HW-Engine for table SSDs (§6.1), which is what moves the NVMe
//! software-stack cycles off the CPU.

use std::time::Duration;

/// Performance envelope of one SSD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdSpec {
    /// Sequential read bandwidth, bytes/s.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes/s.
    pub write_bw: f64,
    /// Base random-read latency.
    pub read_latency: Duration,
    /// Base program (write) latency.
    pub write_latency: Duration,
}

impl Default for SsdSpec {
    fn default() -> Self {
        // Samsung 970 Pro 1 TB-class figures.
        SsdSpec {
            read_bw: 3.5e9,
            write_bw: 2.7e9,
            read_latency: Duration::from_micros(90),
            write_latency: Duration::from_micros(30),
        }
    }
}

impl SsdSpec {
    /// Service time of a read of `bytes`.
    pub fn read_time(&self, bytes: u64) -> Duration {
        self.read_latency + Duration::from_secs_f64(bytes as f64 / self.read_bw)
    }

    /// Service time of a write of `bytes`.
    pub fn write_time(&self, bytes: u64) -> Duration {
        self.write_latency + Duration::from_secs_f64(bytes as f64 / self.write_bw)
    }
}

/// Where a device's NVMe submission/completion queues are hosted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueLocation {
    /// Default: queues in host memory, driven by the CPU's NVMe stack.
    HostMemory,
    /// FIDR: queues inside the Cache HW-Engine; zero CPU cycles per IO
    /// (paper §6.1 "we designed table SSD's submission/completion queues to
    /// be in the HW Cache Engine and modified the SSD driver").
    CacheEngine,
}

/// IO counters for one device or array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsdStats {
    /// Completed read commands.
    pub read_ios: u64,
    /// Completed write commands.
    pub write_ios: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written (flash wear; the quantity data reduction protects).
    pub write_bytes: u64,
}

impl SsdStats {
    /// Records a read command.
    pub fn record_read(&mut self, bytes: u64) {
        self.read_ios += 1;
        self.read_bytes += bytes;
    }

    /// Records a write command.
    pub fn record_write(&mut self, bytes: u64) {
        self.write_ios += 1;
        self.write_bytes += bytes;
    }

    /// Total commands.
    pub fn total_ios(&self) -> u64 {
        self.read_ios + self.write_ios
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_time_includes_latency_and_transfer() {
        let spec = SsdSpec {
            read_bw: 1e9,
            write_bw: 1e9,
            read_latency: Duration::from_micros(100),
            write_latency: Duration::from_micros(20),
        };
        let t = spec.read_time(1_000_000); // 1 ms transfer + 0.1 ms latency
        assert!((t.as_secs_f64() - 0.0011).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = SsdStats::default();
        s.record_read(4096);
        s.record_write(8192);
        s.record_write(4096);
        assert_eq!(s.total_ios(), 3);
        assert_eq!(s.read_bytes, 4096);
        assert_eq!(s.write_bytes, 12288);
    }

    #[test]
    fn default_spec_is_970_pro_class() {
        let spec = SsdSpec::default();
        assert!(spec.read_bw > 3e9 && spec.write_bw > 2e9);
    }
}
