//! The data-SSD array: container-granular writes, chunk-granular reads.
//!
//! Compressed unique chunks are packed into ~4-MB containers and written
//! sequentially ("Write requests to data SSDs for the compressed chunks are
//! sequential", paper §6.1); reads fetch one compressed chunk at its PBA.

use crate::nvme::{QueueLocation, SsdSpec, SsdStats};
use crate::retry::RetryState;
use fidr_chunk::Pba;
use fidr_faults::{FaultInjector, FaultSite, RetryPolicy};
use fidr_metrics::{Histogram, MetricsSnapshot};
use fidr_tables::{Container, ContainerReadError, CHUNK_HEADER_BYTES};
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Error returned by data-SSD operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataSsdError {
    /// The PBA references a container the array never stored.
    UnknownContainer(u64),
    /// The container rejected the region (bounds/encoding/decompress).
    Corrupt(ContainerReadError),
    /// A sealed container with this id already exists; overwriting it
    /// would silently lose every chunk deduplicated onto it.
    ContainerIdReuse(u64),
    /// An injected transient device error persisted through the whole
    /// retry budget (`attempts` tries, including the first).
    Io {
        /// The device operation that failed.
        op: &'static str,
        /// Total attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for DataSsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataSsdError::UnknownContainer(id) => write!(f, "unknown container {id}"),
            DataSsdError::Corrupt(e) => write!(f, "corrupt chunk region: {e}"),
            DataSsdError::ContainerIdReuse(id) => {
                write!(f, "container id {id} reused: refusing to overwrite")
            }
            DataSsdError::Io { op, attempts } => {
                write!(f, "data-SSD {op} failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for DataSsdError {}

/// An array of data SSDs storing sealed containers.
///
/// # Examples
///
/// ```
/// use fidr_ssd::DataSsdArray;
/// use fidr_tables::ContainerBuilder;
/// use fidr_compress::CompressedChunk;
///
/// let mut array = DataSsdArray::new(2);
/// let mut builder = ContainerBuilder::new(0, 4096);
/// let slot = builder.append(&CompressedChunk::compress(&vec![5u8; 4096]));
/// array.write_container(builder.seal())?;
/// let pba = fidr_chunk::Pba { container: 0, offset: slot.offset, compressed_len: slot.compressed_len };
/// assert_eq!(array.read_chunk(pba)?, vec![5u8; 4096]);
/// # Ok::<(), fidr_ssd::DataSsdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DataSsdArray {
    spec: SsdSpec,
    devices: u32,
    containers: HashMap<u64, Container>,
    stats: SsdStats,
    queue_location: QueueLocation,
    /// Modelled device service time per IO (spec-derived, not wall-clock —
    /// this is a simulated device).
    io_ns: Histogram,
    retry: RetryState,
    corrupt_reads: u64,
}

impl DataSsdArray {
    /// Creates an array of `devices` SSDs with default specs.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn new(devices: u32) -> Self {
        Self::with_spec(devices, SsdSpec::default())
    }

    /// Creates an array with an explicit per-device spec.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn with_spec(devices: u32, spec: SsdSpec) -> Self {
        assert!(devices > 0, "array needs at least one device");
        DataSsdArray {
            spec,
            devices,
            containers: HashMap::new(),
            stats: SsdStats::default(),
            queue_location: QueueLocation::HostMemory,
            io_ns: Histogram::new(),
            retry: RetryState::disabled(),
            corrupt_reads: 0,
        }
    }

    /// Arms fault injection: `injector` decides which IOs fault, `policy`
    /// bounds the device-level transparent retries.
    pub fn set_fault_injector(&mut self, injector: FaultInjector, policy: RetryPolicy) {
        self.retry.configure(injector, policy);
    }

    /// Aggregate sequential write bandwidth of the array.
    pub fn write_bw(&self) -> f64 {
        self.spec.write_bw * f64::from(self.devices)
    }

    /// Aggregate read bandwidth of the array.
    pub fn read_bw(&self) -> f64 {
        self.spec.read_bw * f64::from(self.devices)
    }

    /// Where this array's NVMe queues live (host memory for data SSDs in
    /// both systems, §6.1).
    pub fn queue_location(&self) -> QueueLocation {
        self.queue_location
    }

    /// Writes a sealed container. Returns the modelled device time
    /// (service plus any transparent retry backoff).
    ///
    /// # Errors
    ///
    /// [`DataSsdError::ContainerIdReuse`] if a container with this id is
    /// already stored (the guard is unconditional — a `debug_assert!`
    /// would vanish in release builds and let a buggy or retrying caller
    /// silently overwrite sealed data), [`DataSsdError::Io`] if an
    /// injected transient fault outlives the retry budget.
    pub fn write_container(&mut self, container: Container) -> Result<Duration, DataSsdError> {
        if self.containers.contains_key(&container.id) {
            return Err(DataSsdError::ContainerIdReuse(container.id));
        }
        let backoff = self
            .retry
            .attempt(FaultSite::DataWrite)
            .map_err(|attempts| DataSsdError::Io {
                op: "container write",
                attempts,
            })?;
        let bytes = container.len() as u64;
        self.stats.record_write(bytes);
        let t = self.spec.write_time(bytes);
        self.io_ns.record_duration(t);
        self.containers.insert(container.id, container);
        Ok(t + backoff)
    }

    /// Reads and decodes one chunk at `pba`.
    ///
    /// An armed fault injector may make the returned bytes silently
    /// corrupt *in flight* (the stored copy stays intact), modelling a
    /// transfer error the device's own ECC missed; only a checksum-
    /// verifying caller can catch that, and a re-read returns clean data.
    ///
    /// # Errors
    ///
    /// [`DataSsdError::UnknownContainer`] if the container does not exist,
    /// [`DataSsdError::Corrupt`] if the region cannot be decoded,
    /// [`DataSsdError::Io`] if an injected transient fault outlives the
    /// retry budget.
    pub fn read_chunk(&mut self, pba: Pba) -> Result<Vec<u8>, DataSsdError> {
        let container = self
            .containers
            .get(&pba.container)
            .ok_or(DataSsdError::UnknownContainer(pba.container))?;
        self.retry
            .attempt(FaultSite::DataRead)
            .map_err(|attempts| DataSsdError::Io {
                op: "chunk read",
                attempts,
            })?;
        let bytes = pba.compressed_len as u64 + CHUNK_HEADER_BYTES as u64;
        self.stats.record_read(bytes);
        self.io_ns.record_duration(self.spec.read_time(bytes));
        let mut data = container
            .read_chunk(pba.offset, pba.compressed_len)
            .map_err(DataSsdError::Corrupt)?;
        if !data.is_empty() && self.retry.fire(FaultSite::DataReadCorrupt) {
            data[0] ^= 0x01;
            self.corrupt_reads += 1;
        }
        Ok(data)
    }

    /// Device time for a chunk read of `bytes` (latency model input).
    pub fn read_time(&self, bytes: u64) -> Duration {
        self.spec.read_time(bytes)
    }

    /// IO statistics so far.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Number of stored containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Total bytes occupied by stored containers (post-reduction footprint).
    pub fn stored_bytes(&self) -> u64 {
        self.containers.values().map(|c| c.len() as u64).sum()
    }

    /// Re-installs a container during checkpoint restore, without
    /// counting flash writes (the bytes are already on the flash).
    pub fn load_container(&mut self, container: Container) {
        self.containers.insert(container.id, container);
    }

    /// Fault injection for testing: flips one bit at `byte` inside a
    /// stored container, simulating silent flash corruption. Returns
    /// `false` if the container or offset does not exist.
    pub fn inject_corruption(&mut self, container: u64, byte: usize) -> bool {
        match self.containers.get_mut(&container) {
            Some(c) if byte < c.bytes.len() => {
                c.bytes[byte] ^= 0x01;
                true
            }
            _ => false,
        }
    }

    /// Iterates over stored containers (checkpointing).
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// Drops a whole container (garbage collection after compaction moved
    /// its survivors), returning the bytes freed, or `None` for an unknown
    /// id. Modelled as an NVMe deallocate (TRIM): no flash writes.
    pub fn remove_container(&mut self, id: u64) -> Option<u64> {
        self.containers.remove(&id).map(|c| c.len() as u64)
    }

    /// Exports IO counters and the modelled per-IO service-time histogram
    /// under the `ssd.data.*` prefix (see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, out: &mut MetricsSnapshot) {
        out.set_counter("ssd.data.read.ios", self.stats.read_ios);
        out.set_counter("ssd.data.read.bytes", self.stats.read_bytes);
        out.set_counter("ssd.data.write.ios", self.stats.write_ios);
        out.set_counter("ssd.data.write.bytes", self.stats.write_bytes);
        out.set_counter("ssd.data.containers.count", self.containers.len() as u64);
        out.set_counter("ssd.data.stored.bytes", self.stored_bytes());
        out.set_counter("ssd.data.faults.corrupt_reads", self.corrupt_reads);
        out.set_histogram("ssd.data.io.ns", &self.io_ns);
        self.retry.export_metrics("ssd.data", out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidr_compress::CompressedChunk;
    use fidr_tables::ContainerBuilder;

    #[test]
    fn write_then_read_roundtrip() {
        let mut array = DataSsdArray::new(2);
        let mut b = ContainerBuilder::new(7, 1 << 20);
        let data = vec![0xabu8; 4096];
        let slot = b.append(&CompressedChunk::compress(&data));
        array.write_container(b.seal()).unwrap();
        let pba = Pba {
            container: 7,
            offset: slot.offset,
            compressed_len: slot.compressed_len,
        };
        assert_eq!(array.read_chunk(pba).unwrap(), data);
        assert_eq!(array.stats().write_ios, 1);
        assert_eq!(array.stats().read_ios, 1);
    }

    #[test]
    fn unknown_container_errors() {
        let mut array = DataSsdArray::new(1);
        let err = array
            .read_chunk(Pba {
                container: 42,
                offset: 0,
                compressed_len: 10,
            })
            .unwrap_err();
        assert_eq!(err, DataSsdError::UnknownContainer(42));
    }

    #[test]
    fn aggregate_bandwidth_scales_with_devices() {
        let one = DataSsdArray::new(1);
        let four = DataSsdArray::new(4);
        assert!((four.write_bw() / one.write_bw() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn stored_bytes_reflect_reduction() {
        let mut array = DataSsdArray::new(1);
        let mut b = ContainerBuilder::new(0, 1 << 20);
        b.append(&CompressedChunk::compress(&vec![0u8; 65536]));
        array.write_container(b.seal()).unwrap();
        assert!(array.stored_bytes() < 1024, "highly compressible data");
    }

    fn sealed(id: u64, fill: u8) -> (Container, Pba) {
        let mut b = ContainerBuilder::new(id, 1 << 20);
        let slot = b.append(&CompressedChunk::compress(&vec![fill; 4096]));
        (
            b.seal(),
            Pba {
                container: id,
                offset: slot.offset,
                compressed_len: slot.compressed_len,
            },
        )
    }

    #[test]
    fn container_id_reuse_is_a_hard_error_in_every_profile() {
        let mut array = DataSsdArray::new(1);
        let (first, pba) = sealed(3, 0x11);
        let (second, _) = sealed(3, 0x22);
        array.write_container(first).unwrap();
        assert_eq!(
            array.write_container(second).unwrap_err(),
            DataSsdError::ContainerIdReuse(3)
        );
        // The original container survives the rejected overwrite.
        assert_eq!(array.read_chunk(pba).unwrap(), vec![0x11u8; 4096]);
        assert_eq!(array.stats().write_ios, 1);
    }

    #[test]
    fn persistent_write_fault_exhausts_retries() {
        use fidr_faults::{FaultInjector, FaultPlan, RetryPolicy};
        let mut array = DataSsdArray::new(1);
        let plan = FaultPlan {
            data_write_error: 1.0,
            ..FaultPlan::default()
        };
        array.set_fault_injector(FaultInjector::new(plan), RetryPolicy::default());
        let (c, _) = sealed(0, 1);
        assert_eq!(
            array.write_container(c).unwrap_err(),
            DataSsdError::Io {
                op: "container write",
                attempts: 5
            }
        );
        assert_eq!(array.container_count(), 0, "failed write stores nothing");
    }

    #[test]
    fn transient_read_fault_is_retried_transparently() {
        use fidr_faults::{FaultInjector, FaultPlan, RetryPolicy};
        let mut array = DataSsdArray::new(1);
        let (c, pba) = sealed(0, 0x5a);
        array.write_container(c).unwrap();
        // ~40% per-attempt faults: with 4 retries nearly every read lands.
        let plan = FaultPlan {
            seed: 11,
            data_read_error: 0.4,
            ..FaultPlan::default()
        };
        array.set_fault_injector(FaultInjector::new(plan), RetryPolicy::default());
        for _ in 0..50 {
            assert_eq!(array.read_chunk(pba).unwrap(), vec![0x5au8; 4096]);
        }
        let mut snap = MetricsSnapshot::new();
        array.export_metrics(&mut snap);
        assert!(snap.counter("ssd.data.retry.attempts").unwrap() > 0);
    }

    #[test]
    fn inflight_corruption_leaves_stored_copy_intact() {
        use fidr_faults::{FaultInjector, FaultPlan, RetryPolicy};
        let mut array = DataSsdArray::new(1);
        let (c, pba) = sealed(0, 0x77);
        array.write_container(c).unwrap();
        let plan = FaultPlan {
            seed: 2,
            data_read_corrupt: 0.5,
            ..FaultPlan::default()
        };
        array.set_fault_injector(FaultInjector::new(plan), RetryPolicy::default());
        let clean = vec![0x77u8; 4096];
        let mut saw_corrupt = false;
        let mut saw_clean = false;
        for _ in 0..64 {
            let got = array.read_chunk(pba).unwrap();
            if got == clean {
                saw_clean = true;
            } else {
                saw_corrupt = true;
                let mut fixed = got.clone();
                fixed[0] ^= 0x01;
                assert_eq!(fixed, clean, "exactly one in-flight bit flip");
            }
        }
        assert!(saw_corrupt && saw_clean, "re-reads return clean data");
    }
}
