//! # fidr-ssd
//!
//! NVMe SSD models for the FIDR reproduction: the [`DataSsdArray`] holding
//! sealed compressed-chunk containers, and the [`TableSsd`] holding the
//! authoritative Hash-PBN table image with 4-KB bucket IO. Queue placement
//! ([`QueueLocation`]) captures FIDR's §6.1 design point of moving table-SSD
//! NVMe queues into the Cache HW-Engine.
//!
//! # Examples
//!
//! ```
//! use fidr_ssd::{DataSsdArray, TableSsd, QueueLocation};
//!
//! let array = DataSsdArray::new(2);
//! assert!(array.write_bw() > 5e9);
//! let ssd = TableSsd::new(1 << 14, QueueLocation::CacheEngine);
//! assert_eq!(ssd.num_buckets(), 1 << 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data_ssd;
mod nvme;
mod retry;
mod table_ssd;

pub use data_ssd::{DataSsdArray, DataSsdError};
pub use nvme::{QueueLocation, SsdSpec, SsdStats};
pub use table_ssd::{TableSsd, TableSsdError};
