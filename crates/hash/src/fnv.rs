//! FNV-1a: a cheap non-cryptographic hash.
//!
//! Used where the workspace needs a fast, deterministic 64-bit mix that is
//! *not* a dedup signature — e.g. the unique-chunk predictor's sampled
//! fingerprints in the CIDR baseline, or seeding synthetic content streams.
//! Dedup decisions always use [`crate::Fingerprint`] (SHA-256).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Computes the 64-bit FNV-1a hash of `data`.
///
/// # Examples
///
/// ```
/// let h = fidr_hash::fnv1a(b"chunk");
/// assert_ne!(h, fidr_hash::fnv1a(b"chunl"));
/// ```
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Mixes a `u64` through one FNV-1a round per byte; handy for deriving
/// deterministic per-index seeds.
pub fn fnv1a_u64(value: u64) -> u64 {
    fnv1a(&value.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn u64_variant_consistent() {
        assert_eq!(fnv1a_u64(42), fnv1a(&42u64.to_le_bytes()));
    }
}
