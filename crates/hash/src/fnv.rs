//! FNV-1a: a cheap non-cryptographic hash.
//!
//! Used where the workspace needs a fast, deterministic 64-bit mix that is
//! *not* a dedup signature — e.g. the unique-chunk predictor's sampled
//! fingerprints in the CIDR baseline, or seeding synthetic content streams.
//! Dedup decisions always use [`crate::Fingerprint`] (SHA-256).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Computes the 64-bit FNV-1a hash of `data`.
///
/// # Examples
///
/// ```
/// let h = fidr_hash::fnv1a(b"chunk");
/// assert_ne!(h, fidr_hash::fnv1a(b"chunl"));
/// ```
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Mixes a `u64` through one FNV-1a round per byte; handy for deriving
/// deterministic per-index seeds.
pub fn fnv1a_u64(value: u64) -> u64 {
    fnv1a(&value.to_le_bytes())
}

/// SplitMix64 finalizer (Steele et al.): a full-width bijective mix of a
/// `u64`. Every input bit affects every output bit, so derived values
/// (shard seeds, hash-prefix shard selection) cannot collide the way a
/// narrow additive stripe like `seed + i * CONSTANT` can.
///
/// # Examples
///
/// ```
/// let a = fidr_hash::splitmix64(1);
/// let b = fidr_hash::splitmix64(2);
/// assert_ne!(a, b);
/// ```
pub fn splitmix64(value: u64) -> u64 {
    let mut z = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn u64_variant_consistent() {
        assert_eq!(fnv1a_u64(42), fnv1a(&42u64.to_le_bytes()));
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs of the SplitMix64 finalizer for seed 0, 1, 2.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
        // Adjacent inputs differ in roughly half their output bits.
        let diff = (splitmix64(100) ^ splitmix64(101)).count_ones();
        assert!((16..=48).contains(&diff), "poor avalanche: {diff} bits");
    }
}
