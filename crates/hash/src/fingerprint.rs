//! Chunk fingerprints and bucket-index derivation.
//!
//! The Hash-PBN table keys chunks by their SHA-256 digest (paper §2.1.2 uses
//! "strong hash functions (e.g., SHA2) with no practical collisions in
//! petabytes of data"). A [`Fingerprint`] wraps the 32-byte digest and knows
//! how to derive the bucket index used by the bucket-based Hash-PBN table
//! ("the server uses a simple modular function to calculate the bucket
//! index", §2.1.3).

use crate::sha256::Sha256;
use std::fmt;

/// Size of a fingerprint in bytes (SHA-256 digest).
pub const FINGERPRINT_LEN: usize = 32;

/// The SHA-256 fingerprint (signature) of a data chunk.
///
/// # Examples
///
/// ```
/// use fidr_hash::Fingerprint;
///
/// let fp = Fingerprint::of(b"hello chunk");
/// assert_eq!(fp.as_bytes().len(), 32);
/// assert_eq!(fp, Fingerprint::of(b"hello chunk"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint([u8; FINGERPRINT_LEN]);

impl Fingerprint {
    /// Computes the fingerprint of `data`.
    pub fn of(data: &[u8]) -> Self {
        Fingerprint(Sha256::digest(data))
    }

    /// Computes the fingerprints of a whole batch of chunks through the
    /// multi-lane SHA-256 kernel (see [`crate::digest_batch`]); the
    /// result is byte-identical to calling [`Fingerprint::of`] per chunk.
    ///
    /// # Examples
    ///
    /// ```
    /// use fidr_hash::Fingerprint;
    ///
    /// let chunks: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 4096]).collect();
    /// let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    /// let fps = Fingerprint::of_batch(&refs);
    /// assert_eq!(fps[3], Fingerprint::of(&chunks[3]));
    /// ```
    pub fn of_batch(chunks: &[&[u8]]) -> Vec<Self> {
        crate::digest_batch(chunks)
            .into_iter()
            .map(Fingerprint)
            .collect()
    }

    /// Wraps an already-computed digest.
    pub fn from_bytes(bytes: [u8; FINGERPRINT_LEN]) -> Self {
        Fingerprint(bytes)
    }

    /// The raw 32-byte digest.
    pub fn as_bytes(&self) -> &[u8; FINGERPRINT_LEN] {
        &self.0
    }

    /// Derives the Hash-PBN bucket index for a table with `num_buckets`
    /// buckets using the paper's "simple modular function" (§2.1.3).
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is zero.
    pub fn bucket_index(&self, num_buckets: u64) -> u64 {
        assert!(num_buckets > 0, "bucket count must be non-zero");
        self.prefix_u64() % num_buckets
    }

    /// The first eight digest bytes as a big-endian integer. SHA-256 output
    /// is uniform, so any fixed 8-byte window is a uniform 64-bit value.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }

    /// A short hex form used in logs and debug output.
    pub fn short_hex(&self) -> String {
        self.0[..6].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({}…)", self.short_hex())
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Fingerprint {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; FINGERPRINT_LEN]> for Fingerprint {
    fn from(bytes: [u8; FINGERPRINT_LEN]) -> Self {
        Fingerprint(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_stable_and_in_range() {
        let fp = Fingerprint::of(b"some chunk data");
        let idx = fp.bucket_index(1024);
        assert!(idx < 1024);
        assert_eq!(idx, fp.bucket_index(1024));
    }

    #[test]
    fn bucket_index_spreads_over_buckets() {
        // 4 K fingerprints over 64 buckets should hit every bucket.
        let mut seen = [false; 64];
        for i in 0u32..4096 {
            let fp = Fingerprint::of(&i.to_le_bytes());
            seen[fp.bucket_index(64) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never hit");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_buckets_panics() {
        Fingerprint::of(b"x").bucket_index(0);
    }

    #[test]
    fn display_is_full_hex() {
        let fp = Fingerprint::of(b"abc");
        let s = fp.to_string();
        assert_eq!(s.len(), 64);
        assert!(s.starts_with("ba7816bf"));
    }

    #[test]
    fn roundtrip_from_bytes() {
        let fp = Fingerprint::of(b"roundtrip");
        let fp2 = Fingerprint::from_bytes(*fp.as_bytes());
        assert_eq!(fp, fp2);
    }
}
