//! # fidr-hash
//!
//! Hashing primitives for the FIDR inline data-reduction system
//! (MICRO-52 2019): a from-scratch streaming [`Sha256`], a multi-lane
//! interleaved batch digest ([`digest_batch`], module [`lanes`]) standing
//! in for the NIC's parallel SHA cores, the 32-byte chunk [`Fingerprint`]
//! used as the deduplication signature, and the cheap [`fnv1a`] mix used
//! by non-cryptographic helpers.
//!
//! In the paper, SHA-256 cores run on the FIDR NIC (or on the CIDR baseline's
//! FPGA). In this reproduction the same digests are computed in software and
//! the hash *placement* (NIC vs FPGA vs CPU) is captured by the hardware
//! model in `fidr-hwsim`. When more than one hash engine is configured, the
//! software stand-in interleaves up to [`lanes::MAX_LANES`] digest streams
//! through one SIMD compression kernel instead of spawning threads — see
//! [`lanes`] for the lane layout, lane-count selection and the guarantee
//! that every path produces digests byte-identical to the scalar core.
//!
//! # Examples
//!
//! ```
//! use fidr_hash::{Fingerprint, Sha256};
//!
//! // Fingerprint a 4-KB chunk and derive its Hash-PBN bucket.
//! let chunk = vec![7u8; 4096];
//! let fp = Fingerprint::of(&chunk);
//! let bucket = fp.bucket_index(1 << 20);
//! assert!(bucket < (1 << 20));
//!
//! // Streaming digest over the same bytes agrees.
//! let mut h = Sha256::new();
//! h.update(&chunk[..1000]);
//! h.update(&chunk[1000..]);
//! assert_eq!(&h.finalize(), fp.as_bytes());
//! ```

// Unsafe is denied crate-wide; the single exception is the AVX2
// intrinsics kernel in `lanes`, which carries a targeted allow and
// documents its safety contract (runtime feature detection).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod fingerprint;
mod fnv;
pub mod lanes;
mod sha256;

pub use fingerprint::{Fingerprint, FINGERPRINT_LEN};
pub use fnv::{fnv1a, fnv1a_u64, splitmix64};
pub use lanes::{digest_batch, lane_count};
pub use sha256::Sha256;
