//! Multi-lane (interleaved) SHA-256 batch digest.
//!
//! The FIDR NIC sustains line rate by instantiating several SHA-256
//! cores and hashing a *batch* of chunks at once (paper §6.2). This
//! module is the software stand-in for those parallel cores: instead of
//! one thread per core, it interleaves up to [`MAX_LANES`] independent
//! messages through a single SIMD compression function, so one host
//! thread retires several hash streams per round — the only way a
//! software "multi-core hash engine" actually gets faster on a machine
//! with fewer CPUs than engines.
//!
//! # Lane layout
//!
//! SHA-256 state is eight 32-bit words; a 256-bit AVX2 register holds
//! eight 32-bit words. The kernel therefore transposes the state: SIMD
//! register `j` holds word `j` of *eight different messages* (one per
//! 32-bit element, the "lane"). Every compression round then performs
//! its adds/rotates/boolean ops on all eight messages at once. Message
//! blocks are fed lock-step: round `b` compresses block `b` of every
//! lane that still has blocks.
//!
//! # Lane-count selection
//!
//! The lane width is keyed to the widest SIMD the host offers, probed at
//! run time (`is_x86_feature_detected!`), not to the configured engine
//! count — engines scale the *modelled* hash time, lanes are merely how
//! the software stand-in keeps up:
//!
//! * AVX2 (256-bit) → **8 lanes**. Measured ~3.8× over the scalar core
//!   on 4-KiB chunks.
//! * otherwise → **1 lane** (the scalar [`Sha256`] core per message).
//!   Narrower interleaving (e.g. 4 lanes through plain `[u32; 4]`
//!   arrays) was measured *slower* than scalar under the default
//!   `x86-64` baseline codegen, so it is deliberately not offered.
//!
//! # Byte-identity guarantee
//!
//! [`digest_batch`] returns exactly `Sha256::digest(msg)` for every
//! message, bit for bit, on every code path: the SIMD kernel computes
//! the same FIPS 180-4 rounds over the same padded blocks, group tails
//! shorter than the lane width fall back to the scalar core, and lanes
//! whose messages outlive the group's common block count finish through
//! the very same scalar `compress_block` the streaming hasher uses.
//! Dedup fingerprints, and therefore every exported metric derived from
//! them, cannot depend on which path hashed a chunk.

use crate::sha256::{compress_block, Sha256, H0};

/// Widest interleave the kernel supports (AVX2: eight 32-bit lanes).
pub const MAX_LANES: usize = 8;

/// Number of SHA-256 streams one call to [`digest_batch`] interleaves on
/// this host: [`MAX_LANES`] when the SIMD kernel is available, else 1.
pub fn lane_count() -> usize {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return MAX_LANES;
    }
    1
}

/// Digests a batch of messages, byte-identical to calling
/// [`Sha256::digest`] on each (see the module docs for the guarantee).
///
/// # Examples
///
/// ```
/// use fidr_hash::{digest_batch, Sha256};
///
/// let msgs: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 1000 + i as usize]).collect();
/// let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
/// for (msg, digest) in msgs.iter().zip(digest_batch(&refs)) {
///     assert_eq!(digest, Sha256::digest(msg));
/// }
/// ```
pub fn digest_batch(msgs: &[&[u8]]) -> Vec<[u8; 32]> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return digest_batch_wide(msgs);
    }
    msgs.iter().map(|m| Sha256::digest(m)).collect()
}

/// Padded SHA-256 block count of an `len`-byte message: the message
/// bytes plus the mandatory `0x80` marker and 8-byte bit length.
fn padded_blocks(len: usize) -> usize {
    (len + 9).div_ceil(64)
}

/// Materializes padded block `b` of `msg` (`total` = full padded block
/// count): message bytes where the block overlaps the message, the
/// `0x80` terminator at the message end, zero fill, and the big-endian
/// bit length in the final 8 bytes of the last block.
fn padded_block(msg: &[u8], b: usize, total: usize) -> [u8; 64] {
    let mut block = [0u8; 64];
    let start = b * 64;
    if start < msg.len() {
        let take = (msg.len() - start).min(64);
        block[..take].copy_from_slice(&msg[start..start + take]);
        if take < 64 {
            block[take] = 0x80;
        }
    } else if start == msg.len() {
        block[0] = 0x80;
    }
    if b + 1 == total {
        let bit_len = (msg.len() as u64).wrapping_mul(8);
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
    }
    block
}

/// Serializes a lane's final state words into the 32-byte digest.
fn digest_bytes(state: &[u32; 8]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Batch digest via the 8-lane kernel: full groups of [`MAX_LANES`]
/// messages interleave; the tail group hashes scalar.
#[cfg(target_arch = "x86_64")]
fn digest_batch_wide(msgs: &[&[u8]]) -> Vec<[u8; 32]> {
    let mut out = Vec::with_capacity(msgs.len());
    let mut groups = msgs.chunks_exact(MAX_LANES);
    for group in &mut groups {
        let lanes: &[&[u8]; MAX_LANES] = group.try_into().expect("chunks_exact yields full groups");
        out.extend(digest_group(lanes));
    }
    out.extend(groups.remainder().iter().map(|m| Sha256::digest(m)));
    out
}

/// Digests one full group of [`MAX_LANES`] messages: blocks common to
/// all lanes run through the SIMD kernel; lanes whose (padded) messages
/// are longer finish through the scalar compression function. (The
/// `allow` covers only the feature-gated kernel call; see its SAFETY
/// comment.)
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
fn digest_group(lanes: &[&[u8]; MAX_LANES]) -> [[u8; 32]; MAX_LANES] {
    let totals: [usize; MAX_LANES] = std::array::from_fn(|l| padded_blocks(lanes[l].len()));
    let common = *totals.iter().min().expect("MAX_LANES > 0");
    let mut states = [H0; MAX_LANES];
    let mut scratch = [[0u8; 64]; MAX_LANES];
    for b in 0..common {
        // A lane's block borrows straight from the message when fully
        // inside it (the hot case for equal-size chunks); padding-bearing
        // blocks materialize into per-lane scratch first.
        for l in 0..MAX_LANES {
            if (b + 1) * 64 > lanes[l].len() {
                scratch[l] = padded_block(lanes[l], b, totals[l]);
            }
        }
        let blocks: [&[u8; 64]; MAX_LANES] = std::array::from_fn(|l| {
            if (b + 1) * 64 <= lanes[l].len() {
                lanes[l][b * 64..(b + 1) * 64]
                    .try_into()
                    .expect("64-byte block slice")
            } else {
                &scratch[l]
            }
        });
        // SAFETY: `digest_batch` only reaches this path after
        // `is_x86_feature_detected!("avx2")` confirmed the host supports
        // every instruction the kernel uses.
        unsafe { avx2::compress8(&mut states, &blocks) };
    }
    for l in 0..MAX_LANES {
        for b in common..totals[l] {
            compress_block(&mut states[l], &padded_block(lanes[l], b, totals[l]));
        }
    }
    std::array::from_fn(|l| digest_bytes(&states[l]))
}

/// The AVX2 8-lane SHA-256 compression kernel. The only `unsafe` in the
/// crate lives here: `core::arch` intrinsics, which are unsafe solely
/// because they require the `avx2` target feature — the caller gates on
/// runtime detection. No raw pointers escape; loads/stores go through
/// `_mm256_loadu_si256`/`_mm256_storeu_si256` on stack arrays.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::MAX_LANES;
    use crate::sha256::K;
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_and_si256, _mm256_andnot_si256, _mm256_loadu_si256,
        _mm256_or_si256, _mm256_set1_epi32, _mm256_setzero_si256, _mm256_slli_epi32,
        _mm256_srli_epi32, _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// One FIPS 180-4 compression round over eight interleaved lanes:
    /// SIMD element `l` of every vector belongs to message `l`.
    ///
    /// # Safety
    ///
    /// The host CPU must support AVX2 (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn compress8(
        states: &mut [[u32; 8]; MAX_LANES],
        blocks: &[&[u8; 64]; MAX_LANES],
    ) {
        macro_rules! rotr {
            ($x:expr, $r:expr) => {
                _mm256_or_si256(_mm256_srli_epi32($x, $r), _mm256_slli_epi32($x, 32 - $r))
            };
        }
        macro_rules! add {
            ($a:expr, $b:expr) => {
                _mm256_add_epi32($a, $b)
            };
        }
        let load = |vals: [u32; MAX_LANES]| {
            // SAFETY: `vals` is a properly-aligned-for-loadu 32-byte
            // stack array; unaligned load is explicitly allowed.
            unsafe { _mm256_loadu_si256(vals.as_ptr().cast::<__m256i>()) }
        };

        // Message schedule: w[t] holds word t of all eight lanes.
        let mut w = [_mm256_setzero_si256(); 64];
        for (t, wt) in w.iter_mut().enumerate().take(16) {
            let mut words = [0u32; MAX_LANES];
            for (l, word) in words.iter_mut().enumerate() {
                *word = u32::from_be_bytes(
                    blocks[l][t * 4..t * 4 + 4]
                        .try_into()
                        .expect("4-byte word slice"),
                );
            }
            *wt = load(words);
        }
        for t in 16..64 {
            let x = w[t - 15];
            let s0 = _mm256_xor_si256(
                _mm256_xor_si256(rotr!(x, 7), rotr!(x, 18)),
                _mm256_srli_epi32(x, 3),
            );
            let y = w[t - 2];
            let s1 = _mm256_xor_si256(
                _mm256_xor_si256(rotr!(y, 17), rotr!(y, 19)),
                _mm256_srli_epi32(y, 10),
            );
            w[t] = add!(add!(w[t - 16], s0), add!(w[t - 7], s1));
        }

        // Transpose state in: vector j = state word j across lanes.
        let col = |j: usize, states: &[[u32; 8]; MAX_LANES]| {
            let mut words = [0u32; MAX_LANES];
            for (l, word) in words.iter_mut().enumerate() {
                *word = states[l][j];
            }
            load(words)
        };
        let (mut a, mut b, mut c, mut d) = (
            col(0, states),
            col(1, states),
            col(2, states),
            col(3, states),
        );
        let (mut e, mut f, mut g, mut h) = (
            col(4, states),
            col(5, states),
            col(6, states),
            col(7, states),
        );

        for (t, &wt) in w.iter().enumerate() {
            let s1 = _mm256_xor_si256(_mm256_xor_si256(rotr!(e, 6), rotr!(e, 11)), rotr!(e, 25));
            let ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
            let kt = _mm256_set1_epi32(K[t] as i32);
            let t1 = add!(add!(h, s1), add!(ch, add!(kt, wt)));
            let s0 = _mm256_xor_si256(_mm256_xor_si256(rotr!(a, 2), rotr!(a, 13)), rotr!(a, 22));
            let maj = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
                _mm256_and_si256(b, c),
            );
            let t2 = add!(s0, maj);
            h = g;
            g = f;
            f = e;
            e = add!(d, t1);
            d = c;
            c = b;
            b = a;
            a = add!(t1, t2);
        }

        // Transpose back and fold into each lane's running state.
        let store = |v: __m256i| {
            let mut words = [0u32; MAX_LANES];
            // SAFETY: 32-byte stack array destination; unaligned store
            // is explicitly allowed.
            unsafe { _mm256_storeu_si256(words.as_mut_ptr().cast::<__m256i>(), v) };
            words
        };
        let cols = [
            store(a),
            store(b),
            store(c),
            store(d),
            store(e),
            store(f),
            store(g),
            store(h),
        ];
        for (l, state) in states.iter_mut().enumerate() {
            for (j, col) in cols.iter().enumerate() {
                state[j] = state[j].wrapping_add(col[l]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitmix64;

    /// Deterministic test PRNG built on the crate's own mixer.
    fn next(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(*seed)
    }

    #[test]
    fn empty_batch() {
        assert!(digest_batch(&[]).is_empty());
    }

    #[test]
    fn equal_length_chunks_match_scalar() {
        let msgs: Vec<Vec<u8>> = (0..20u64)
            .map(|i| {
                let mut s = i;
                (0..4096).map(|_| next(&mut s) as u8).collect()
            })
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let got = digest_batch(&refs);
        for (msg, digest) in msgs.iter().zip(got) {
            assert_eq!(digest, Sha256::digest(msg));
        }
    }

    /// Property test: random batch sizes of random-length random-content
    /// messages always agree with the scalar digest — this exercises the
    /// mixed-length group path (common-prefix SIMD blocks + scalar lane
    /// tails) and the sub-group scalar fallback.
    #[test]
    fn random_lengths_match_scalar() {
        let mut seed = 0x5eed_cafe_f1d4_2026u64;
        for _case in 0..40 {
            let batch_len = (next(&mut seed) % 23) as usize;
            let msgs: Vec<Vec<u8>> = (0..batch_len)
                .map(|_| {
                    // Lengths straddle every padding regime: empty,
                    // sub-block, the 55/56/63/64 boundaries, multi-block.
                    let len = (next(&mut seed) % 300) as usize;
                    (0..len).map(|_| next(&mut seed) as u8).collect()
                })
                .collect();
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            let got = digest_batch(&refs);
            assert_eq!(got.len(), msgs.len());
            for (msg, digest) in msgs.iter().zip(got) {
                assert_eq!(digest, Sha256::digest(msg), "len {}", msg.len());
            }
        }
    }

    #[test]
    fn padding_boundary_lengths_match_scalar() {
        let lengths = [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128, 4096];
        let msgs: Vec<Vec<u8>> = lengths
            .iter()
            .enumerate()
            .map(|(i, &len)| vec![i as u8; len])
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        for (msg, digest) in msgs.iter().zip(digest_batch(&refs)) {
            assert_eq!(digest, Sha256::digest(msg), "len {}", msg.len());
        }
    }

    #[test]
    fn lane_count_is_sane() {
        let lanes = lane_count();
        assert!(lanes == 1 || lanes == MAX_LANES);
    }
}
