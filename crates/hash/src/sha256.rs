//! A from-scratch implementation of SHA-256 (FIPS 180-4).
//!
//! FIDR offloads chunk hashing to the NIC using "instances of an open-source
//! SHA-256 core" (paper §6.2). This module is the software stand-in for those
//! cores: a streaming SHA-256 implementation used by every hash engine model
//! in the workspace. It is validated against the FIPS 180-4 test vectors in
//! the unit tests below.

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first eight primes (FIPS 180-4 §5.3.3).
pub(crate) const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
pub(crate) const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Streaming SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use fidr_hash::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(
///     digest[..4],
///     [0xba, 0x78, 0x16, 0xbf],
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partial block buffer; `buf_len` bytes are valid.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes processed so far.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partially-buffered block first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        // Whole blocks straight from the input.
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }

        // Stash the tail.
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Consumes the hasher and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);

        // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length.
        self.raw_update(&[0x80]);
        while self.buf_len != 56 {
            self.raw_update(&[0x00]);
        }
        self.raw_update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience for hashing a full message.
    ///
    /// # Examples
    ///
    /// ```
    /// let d = fidr_hash::Sha256::digest(b"");
    /// assert_eq!(d[0], 0xe3);
    /// ```
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// `update` without touching `total_len` (used for padding).
    fn raw_update(&mut self, data: &[u8]) {
        for &b in data {
            self.buf[self.buf_len] = b;
            self.buf_len += 1;
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }

    /// The SHA-256 compression function over one 512-bit block.
    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.state, block);
    }
}

/// The scalar SHA-256 compression function over one 512-bit block,
/// shared with the multi-lane batch digest in [`crate::lanes`] (whose
/// odd-length tails finish through this exact function, which is how the
/// byte-identity guarantee holds by construction).
pub(crate) fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for t in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_s0.wrapping_add(maj);

        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&Sha256::digest(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u32..300).map(|i| (i * 7 % 251) as u8).collect();
        let oneshot = Sha256::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let a = Sha256::digest(&[0u8; 4096]);
        let mut buf = [0u8; 4096];
        buf[4095] = 1;
        let b = Sha256::digest(&buf);
        assert_ne!(a, b);
    }
}
