//! Property-based tests for fidr-hash.

use fidr_hash::{fnv1a, Fingerprint, Sha256};
use proptest::prelude::*;

proptest! {
    /// Streaming in arbitrary pieces must equal the one-shot digest.
    #[test]
    fn streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                splits in proptest::collection::vec(0usize..2048, 0..5)) {
        let oneshot = Sha256::digest(&data);
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c.max(prev)]);
            prev = c.max(prev);
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Fingerprints are deterministic and sensitive to single-bit flips.
    #[test]
    fn fingerprint_bit_flip(data in proptest::collection::vec(any::<u8>(), 1..512),
                            bit in 0usize..4096) {
        let fp = Fingerprint::of(&data);
        let mut mutated = data.clone();
        let idx = (bit / 8) % mutated.len();
        mutated[idx] ^= 1 << (bit % 8);
        prop_assert_ne!(fp, Fingerprint::of(&mutated));
        prop_assert_eq!(fp, Fingerprint::of(&data));
    }

    /// Bucket indices stay in range for any bucket count.
    #[test]
    fn bucket_in_range(data in proptest::collection::vec(any::<u8>(), 0..64),
                       buckets in 1u64..u64::MAX) {
        prop_assert!(Fingerprint::of(&data).bucket_index(buckets) < buckets);
    }

    /// FNV is deterministic and length-sensitive for appended bytes.
    #[test]
    fn fnv_appending_changes_hash(data in proptest::collection::vec(any::<u8>(), 0..256),
                                  extra in any::<u8>()) {
        let base = fnv1a(&data);
        let mut longer = data.clone();
        longer.push(extra);
        prop_assert_ne!(base, fnv1a(&longer));
    }
}
