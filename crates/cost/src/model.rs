//! The §7.8 cost-effectiveness model (Figures 15 and 16).
//!
//! "We treat the cost as the remaining data SSDs after data reduction, and
//! the added data reduction cost on CPU, FPGA, DRAM and table SSDs."
//! Prices follow the paper: 0.5 $/GB SSD, 5.5 $/GB DRAM, $7,000 for a
//! 22-core CPU, $7,000 for a high-end FPGA with 70 % of resources usable.

use crate::fpga::{self, CacheEngineConfig, FpgaResources};

/// Component prices (paper §7.8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prices {
    /// Flash $/GB.
    pub ssd_per_gb: f64,
    /// DRAM $/GB.
    pub dram_per_gb: f64,
    /// Price of one 22-core CPU.
    pub cpu: f64,
    /// Cores per CPU.
    pub cpu_cores: f64,
    /// Price of one high-end FPGA board.
    pub fpga: f64,
    /// Practically usable fraction of FPGA resources.
    pub fpga_usable: f64,
}

impl Default for Prices {
    fn default() -> Self {
        Prices {
            ssd_per_gb: 0.5,
            dram_per_gb: 5.5,
            cpu: 7_000.0,
            cpu_cores: 22.0,
            fpga: 7_000.0,
            fpga_usable: 0.7,
        }
    }
}

/// Dollar breakdown of one configuration (the Figure 16 bars).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Data SSDs after reduction.
    pub data_ssd: f64,
    /// Dedicated table SSDs.
    pub table_ssd: f64,
    /// Host DRAM for the table cache.
    pub dram: f64,
    /// CPU cost scaled by cores consumed.
    pub cpu: f64,
    /// FPGA cost scaled by resources consumed.
    pub fpga: f64,
}

impl CostBreakdown {
    /// Total dollars.
    pub fn total(&self) -> f64 {
        self.data_ssd + self.table_ssd + self.dram + self.cpu + self.fpga
    }
}

/// Inputs describing one deployment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Effective (client-visible) capacity in GB.
    pub effective_gb: f64,
    /// Target throughput in GB/s.
    pub throughput_gbps: f64,
    /// Data-reduction factor achieved on reduced traffic (4.0 at the
    /// paper's 50 % dedup + 50 % compression).
    pub reduction_factor: f64,
    /// Fraction of traffic actually reduced (1.0 unless the system must
    /// do partial reduction to keep up).
    pub reduced_fraction: f64,
    /// CPU cores consumed at the target throughput.
    pub cores: f64,
    /// Host DRAM for table caching, GB.
    pub cache_dram_gb: f64,
}

/// Hash-PBN table bytes per stored GB: 38 B per 4-KB unique chunk.
const TABLE_OVERHEAD: f64 = 38.0 / 4096.0;

/// The cost model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel {
    /// Component prices in effect.
    pub prices: Prices,
}

impl CostModel {
    /// Baseline of comparison: a server with no data reduction needs the
    /// full effective capacity in flash and nothing else.
    pub fn no_reduction(&self, effective_gb: f64) -> CostBreakdown {
        CostBreakdown {
            data_ssd: effective_gb * self.prices.ssd_per_gb,
            ..CostBreakdown::default()
        }
    }

    /// Cost of a FIDR deployment at `s` (Figures 15–16).
    ///
    /// FPGA silicon is charged fractionally, "based on resource
    /// utilization" (§7.8): NICs count only the *data-reduction support*
    /// logic (§7.7.1 argues the basic NIC+TCP datapath belongs in a fixed
    /// ASIC) per 12.5 GB/s of client traffic; Compression Engines one per
    /// 20 GB/s of reduced traffic; the Cache HW-Engine fractionally per
    /// socket's worth (75 GB/s).
    pub fn fidr(&self, s: Scenario) -> CostBreakdown {
        let stored_gb = self.stored_gb(s);
        let nic_boards = s.throughput_gbps / 12.5;
        let nic_util = fpga::nic_reduction_support(1.0).utilization(&fpga::vcu1525());
        let compress_boards = s.throughput_gbps * s.reduced_fraction / 20.0;
        let compress_util = 0.35; // LZ cores + DMA on a VU9P-class board
        let cache_boards = s.throughput_gbps / 75.0;
        let cache_util = fpga::cache_engine_resources(CacheEngineConfig::large_tree())
            .utilization(&fpga::vcu1525());
        let fpga_cost = self.fpga_cost(&[
            (nic_boards, nic_util),
            (compress_boards, compress_util),
            (cache_boards, cache_util),
        ]);
        CostBreakdown {
            data_ssd: stored_gb * self.prices.ssd_per_gb,
            table_ssd: stored_gb * TABLE_OVERHEAD * 2.0 * self.prices.ssd_per_gb,
            dram: s.cache_dram_gb * self.prices.dram_per_gb,
            cpu: s.cores / self.prices.cpu_cores * self.prices.cpu,
            fpga: fpga_cost,
        }
    }

    /// Cost of the CIDR-style baseline at `s`. Its FPGAs integrate hash +
    /// compression (one board per 10 GB/s of traffic it actually
    /// reduces); no NIC or cache-engine boards, but far more cores.
    pub fn baseline(&self, s: Scenario) -> CostBreakdown {
        let stored_gb = self.stored_gb(s);
        let boards = s.throughput_gbps * s.reduced_fraction / 10.0;
        CostBreakdown {
            data_ssd: stored_gb * self.prices.ssd_per_gb,
            table_ssd: stored_gb * TABLE_OVERHEAD * 2.0 * self.prices.ssd_per_gb,
            dram: s.cache_dram_gb * self.prices.dram_per_gb,
            cpu: s.cores / self.prices.cpu_cores * self.prices.cpu,
            fpga: self.fpga_cost(&[(boards, 0.45)]),
        }
    }

    /// Cost saving of `cost` relative to no-reduction at the same
    /// effective capacity (the Figure 15 y-axis, inverted: higher saving
    /// is better).
    pub fn saving(&self, cost: &CostBreakdown, effective_gb: f64) -> f64 {
        1.0 - cost.total() / self.no_reduction(effective_gb).total()
    }

    fn stored_gb(&self, s: Scenario) -> f64 {
        s.effective_gb * (s.reduced_fraction / s.reduction_factor + (1.0 - s.reduced_fraction))
    }

    fn fpga_cost(&self, boards: &[(f64, f64)]) -> f64 {
        boards
            .iter()
            .map(|&(n, util)| n * (util / self.prices.fpga_usable).min(1.0) * self.prices.fpga)
            .sum()
    }
}

/// Utilization helper re-exported for reports.
pub fn utilization_of(r: &FpgaResources) -> f64 {
    r.utilization(&fpga::vcu1525())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fidr_scenario(throughput: f64, capacity_tb: f64) -> Scenario {
        Scenario {
            effective_gb: capacity_tb * 1000.0,
            throughput_gbps: throughput,
            reduction_factor: 4.0,
            reduced_fraction: 1.0,
            cores: 0.29 * throughput, // measured FIDR cores/GBps
            cache_dram_gb: 100.0,
        }
    }

    #[test]
    fn fidr_saves_at_500tb() {
        let m = CostModel::default();
        let s25 = m.saving(&m.fidr(fidr_scenario(25.0, 500.0)), 500_000.0);
        let s75 = m.saving(&m.fidr(fidr_scenario(75.0, 500.0)), 500_000.0);
        // Paper: saving falls from 67 % at 25 GB/s to 58 % at 75 GB/s.
        assert!((s25 - 0.67).abs() < 0.06, "saving at 25 GB/s: {s25:.2}");
        assert!((s75 - 0.58).abs() < 0.06, "saving at 75 GB/s: {s75:.2}");
        assert!(s25 > s75);
    }

    #[test]
    fn partial_reduction_erodes_baseline_saving() {
        let m = CostModel::default();
        // The baseline cannot scale past ~25 GB/s per socket; at 75 GB/s
        // it reduces only a third of the traffic.
        let partial = Scenario {
            reduced_fraction: 25.0 / 75.0,
            cores: 22.0,
            ..fidr_scenario(75.0, 500.0)
        };
        let full = fidr_scenario(75.0, 500.0);
        let baseline_cost = m.baseline(partial).total();
        let fidr_cost = m.fidr(full).total();
        assert!(
            baseline_cost > fidr_cost * 1.5,
            "baseline {baseline_cost:.0} vs FIDR {fidr_cost:.0}"
        );
    }

    #[test]
    fn no_reduction_is_pure_flash() {
        let m = CostModel::default();
        let c = m.no_reduction(500_000.0);
        assert!((c.total() - 250_000.0).abs() < 1.0);
        assert_eq!(c.cpu, 0.0);
    }

    #[test]
    fn breakdown_total_sums_parts() {
        let m = CostModel::default();
        let c = m.fidr(fidr_scenario(50.0, 100.0));
        let sum = c.data_ssd + c.table_ssd + c.dram + c.cpu + c.fpga;
        assert!((c.total() - sum).abs() < 1e-9);
        assert!(c.data_ssd > 0.0 && c.fpga > 0.0 && c.cpu > 0.0);
    }
}
