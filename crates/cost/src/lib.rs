//! # fidr-cost
//!
//! Cost-effectiveness analysis for FIDR (paper §7.7–§7.8): FPGA resource
//! models reproducing Tables 4–5 ([`fpga`]) and the dollar-cost model
//! behind Figures 15–16 ([`CostModel`]).
//!
//! # Examples
//!
//! ```
//! use fidr_cost::{CostModel, Scenario};
//!
//! let model = CostModel::default();
//! let cost = model.fidr(Scenario {
//!     effective_gb: 500_000.0,
//!     throughput_gbps: 75.0,
//!     reduction_factor: 4.0,
//!     reduced_fraction: 1.0,
//!     cores: 22.0,
//!     cache_dram_gb: 100.0,
//! });
//! let saving = model.saving(&cost, 500_000.0);
//! assert!(saving > 0.5, "FIDR should save >50% at PB scale");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fpga;
mod model;

pub use fpga::{
    basic_nic, cache_engine_resources, fidr_nic_total, nic_reduction_support, vcu1525,
    CacheEngineConfig, FpgaResources,
};
pub use model::{utilization_of, CostBreakdown, CostModel, Prices, Scenario};
