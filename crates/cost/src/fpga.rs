//! FPGA resource models for the FIDR hardware (paper Tables 4 and 5).
//!
//! Resource counts are composed from per-core constants fitted to the
//! paper's reported totals on the VCU1525 (XCVU9P) board: the FIDR NIC's
//! data-reduction support is dominated by SHA-256 cores plus buffering
//! logic, and the Cache HW-Engine by per-level tree pipeline stages with
//! URAM appearing only for the deep (14-level) configuration.

/// Absolute resource counts of one module or board.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpgaResources {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// Block RAMs (36 Kb).
    pub brams: u64,
    /// UltraRAMs (288 Kb).
    pub urams: u64,
}

impl FpgaResources {
    /// Element-wise sum.
    pub fn plus(self, other: FpgaResources) -> FpgaResources {
        FpgaResources {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            brams: self.brams + other.brams,
            urams: self.urams + other.urams,
        }
    }

    /// The binding utilization fraction against a board (the scarcest
    /// resource decides how much of the board the module consumes).
    pub fn utilization(&self, board: &FpgaResources) -> f64 {
        let ratios = [
            self.luts as f64 / board.luts as f64,
            self.ffs as f64 / board.ffs as f64,
            self.brams as f64 / board.brams as f64,
            if board.urams == 0 {
                0.0
            } else {
                self.urams as f64 / board.urams as f64
            },
        ];
        ratios.into_iter().fold(0.0, f64::max)
    }
}

/// The VCU1525's XCVU9P device (paper §6, Table 4/5 denominators).
pub fn vcu1525() -> FpgaResources {
    FpgaResources {
        luts: 1_182_000,
        ffs: 2_364_000,
        brams: 2_160,
        urams: 960,
    }
}

/// Per-SHA-256-core cost, fitted so that the write-only/mixed delta in
/// Table 4 (125 K vs 84 K LUTs over half the hash cores) is reproduced.
const SHA_CORE: FpgaResources = FpgaResources {
    luts: 5_125,
    ffs: 5_125,
    brams: 3,
    urams: 0,
};

/// Fixed NIC-side data-reduction logic: buffer manager, compression
/// scheduler, LBA lookup, DMA glue.
const NIC_REDUCTION_BASE: FpgaResources = FpgaResources {
    luts: 43_000,
    ffs: 46_000,
    brams: 51,
    urams: 0,
};

/// Conventional NIC datapath: ethernet MACs, two 32-Gbps TCP offload
/// engines, iSCSI-like protocol handling (Table 4's "Basic NIC + TCP
/// Offload" row — implementable as fixed ASIC logic per §7.7.1).
pub fn basic_nic() -> FpgaResources {
    FpgaResources {
        luts: 166_000,
        ffs: 169_000,
        brams: 1_024,
        urams: 0,
    }
}

/// FIDR NIC data-reduction support for a 64-Gbps NIC whose write share is
/// `write_fraction` of traffic (1.0 = write-only, 0.5 = mixed). Hash cores
/// scale with the written bytes that need fingerprinting.
pub fn nic_reduction_support(write_fraction: f64) -> FpgaResources {
    // 16 SHA-256 cores sustain 64 Gbps of hashing (4 Gbps/core).
    let cores = (16.0 * write_fraction).ceil() as u64;
    FpgaResources {
        luts: NIC_REDUCTION_BASE.luts + cores * SHA_CORE.luts,
        ffs: NIC_REDUCTION_BASE.ffs + cores * SHA_CORE.ffs,
        brams: NIC_REDUCTION_BASE.brams + cores * SHA_CORE.brams,
        urams: 0,
    }
}

/// Whole FIDR NIC (Table 4's "Total" row).
pub fn fidr_nic_total(write_fraction: f64) -> FpgaResources {
    basic_nic().plus(nic_reduction_support(write_fraction))
}

/// Cache HW-Engine configuration knobs (Table 5 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEngineConfig {
    /// Tree pipeline levels (9 for the 410-MB cache, 14 for ~100 GB).
    pub tree_levels: u32,
    /// Levels held in on-chip memory (the rest use board DRAM).
    pub onchip_levels: u32,
    /// Whether the engine embeds the table-SSD NVMe controllers.
    pub with_table_ssd_ctrl: bool,
}

impl CacheEngineConfig {
    /// The prototype configuration measured in Table 5 column "All".
    pub fn prototype() -> Self {
        CacheEngineConfig {
            tree_levels: 9,
            onchip_levels: 8,
            with_table_ssd_ctrl: true,
        }
    }

    /// The projected PB-scale configuration ("Large tree" column):
    /// 14 levels, 13 on-chip thanks to URAM, leaf on board DRAM.
    pub fn large_tree() -> Self {
        CacheEngineConfig {
            tree_levels: 14,
            onchip_levels: 13,
            with_table_ssd_ctrl: false,
        }
    }
}

/// Cache HW-Engine resource usage (Table 5's FPGA-resource rows).
pub fn cache_engine_resources(cfg: CacheEngineConfig) -> FpgaResources {
    // Per-level pipeline stage: search/update logic plus node storage.
    // Shallow levels fit in BRAM; levels beyond 9 store their (much
    // larger) node arrays in URAM — the jump from 0 to 756 URAMs between
    // Table 5's medium and large trees.
    let base = FpgaResources {
        luts: 280_000, // command generator, crash/replay, free list, DMA
        ffs: 120_000,
        brams: 130,
        urams: 0,
    };
    let per_level_luts = 4_000u64;
    let per_level_ffs = 1_600u64;
    let mut r = FpgaResources {
        luts: base.luts + u64::from(cfg.tree_levels) * per_level_luts,
        ffs: base.ffs + u64::from(cfg.tree_levels) * per_level_ffs,
        brams: base.brams + u64::from(cfg.onchip_levels.min(9)) * 8,
        urams: 0,
    };
    // Deep on-chip levels (10..=onchip) hold exponentially larger node
    // arrays in URAM: level 10 ≈ 12, then ×3 per level.
    let mut urams_per_level = 19u64;
    for _ in 10..=cfg.onchip_levels {
        r.urams += urams_per_level;
        urams_per_level *= 3;
    }
    if cfg.with_table_ssd_ctrl {
        r.luts += 4_000;
        r.ffs += 6_000;
        r.brams += 16;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_write_only_shape() {
        let r = nic_reduction_support(1.0);
        // Paper: 125 K LUTs, 128 K FFs, 95 BRAMs.
        assert!(
            (r.luts as f64 - 125_000.0).abs() / 125_000.0 < 0.03,
            "{}",
            r.luts
        );
        assert!(
            (r.ffs as f64 - 128_000.0).abs() / 128_000.0 < 0.05,
            "{}",
            r.ffs
        );
        assert!((r.brams as f64 - 95.0).abs() < 10.0, "{}", r.brams);
        let total = fidr_nic_total(1.0);
        let util = total.utilization(&vcu1525());
        // Paper total: 24.5 % LUTs / 51.8 % BRAM — BRAM binds.
        assert!((util - 0.518).abs() < 0.03, "util {util}");
    }

    #[test]
    fn table4_mixed_is_cheaper() {
        let w = nic_reduction_support(1.0);
        let m = nic_reduction_support(0.5);
        assert!(m.luts < w.luts);
        // Paper mixed: 84 K LUTs.
        assert!(
            (m.luts as f64 - 84_000.0).abs() / 84_000.0 < 0.04,
            "{}",
            m.luts
        );
    }

    #[test]
    fn table5_prototype_shape() {
        let r = cache_engine_resources(CacheEngineConfig::prototype());
        // Paper "All": 320 K LUTs, 160 K FFs, 218 BRAM, no URAM.
        assert!(
            (r.luts as f64 - 320_000.0).abs() / 320_000.0 < 0.03,
            "{}",
            r.luts
        );
        assert!((r.brams as f64 - 218.0).abs() < 25.0, "{}", r.brams);
        assert_eq!(r.urams, 0);
    }

    #[test]
    fn table5_large_tree_needs_uram() {
        let r = cache_engine_resources(CacheEngineConfig::large_tree());
        // Paper "Large tree": 348 K LUTs, 756 URAM (78.8 %).
        assert!(
            (r.luts as f64 - 348_000.0).abs() / 348_000.0 < 0.05,
            "{}",
            r.luts
        );
        assert!((r.urams as f64 - 756.0).abs() < 80.0, "{}", r.urams);
        let uram_frac = r.urams as f64 / vcu1525().urams as f64;
        assert!((uram_frac - 0.788).abs() < 0.1, "uram util {uram_frac}");
    }

    #[test]
    fn utilization_picks_binding_resource() {
        let board = vcu1525();
        let r = FpgaResources {
            luts: board.luts / 10,
            ffs: board.ffs / 10,
            brams: board.brams / 2,
            urams: 0,
        };
        assert!((r.utilization(&board) - 0.5).abs() < 1e-12);
    }
}
