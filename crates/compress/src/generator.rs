//! Deterministic content synthesis at a target compressibility.
//!
//! The paper's workloads "set the compressibility to 50% by concatenating a
//! 50% compressible string to all trace requests" (§7.1, factor 4). This
//! module produces chunk payloads whose compressed size under the workspace
//! codec lands close to a requested ratio, deterministically from a seed so
//! that the *same logical content* always yields the *same bytes* (and hence
//! the same SHA-256 fingerprint) — the property deduplication depends on.

use crate::lzss;
use fidr_hash::fnv1a_u64;

/// Generates chunk contents at a target compression ratio.
///
/// The `ratio` is compressed/original, i.e. 0.5 means the chunk compresses
/// to about half its size (the paper's "50% compression ratio").
///
/// # Examples
///
/// ```
/// use fidr_compress::ContentGenerator;
///
/// let gen = ContentGenerator::new(0.5);
/// let a = gen.chunk(42, 4096);
/// let b = gen.chunk(42, 4096);
/// assert_eq!(a, b); // deterministic per seed
/// let packed = fidr_compress::compress(&a);
/// let r = packed.len() as f64 / a.len() as f64;
/// assert!((r - 0.5).abs() < 0.12, "measured ratio {r}");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ContentGenerator {
    ratio: f64,
}

impl ContentGenerator {
    /// Creates a generator targeting the given compressed/original `ratio`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < ratio <= 1.0`.
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        ContentGenerator { ratio }
    }

    /// The target compressed/original ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Produces `len` bytes of content for logical content id `seed`.
    ///
    /// Identical `(seed, len)` pairs yield identical bytes; distinct seeds
    /// yield content with distinct fingerprints (with SHA-256 certainty).
    pub fn chunk(&self, seed: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        // Incompressible head: `ratio` of the bytes are seeded noise.
        // Compressible tail: a repeating 8-byte motif the codec folds up.
        // A small correction accounts for token overhead on the noise.
        let noise_len = ((len as f64) * self.ratio * 0.985) as usize;
        let noise_len = noise_len.min(len);

        let mut state = fnv1a_u64(seed) | 1;
        for _ in 0..noise_len {
            // xorshift64* — fast deterministic noise.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.push((state.wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8);
        }
        let motif = fnv1a_u64(seed ^ 0x5eed_c0de).to_le_bytes();
        while out.len() < len {
            let take = (len - out.len()).min(motif.len());
            out.extend_from_slice(&motif[..take]);
        }
        debug_assert_eq!(out.len(), len);
        out
    }

    /// Measures the actual compressed fraction of a generated chunk.
    pub fn measured_ratio(&self, seed: u64, len: usize) -> f64 {
        let data = self.chunk(seed, len);
        lzss::compress(&data).len() as f64 / len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let g = ContentGenerator::new(0.5);
        assert_eq!(g.chunk(7, 4096), g.chunk(7, 4096));
        assert_ne!(g.chunk(7, 4096), g.chunk(8, 4096));
    }

    #[test]
    fn hits_target_ratio_half() {
        let g = ContentGenerator::new(0.5);
        let mut total = 0.0;
        for seed in 0..20 {
            total += g.measured_ratio(seed, 4096);
        }
        let avg = total / 20.0;
        assert!((avg - 0.5).abs() < 0.08, "average ratio {avg}");
    }

    #[test]
    fn hits_target_ratio_quarter() {
        let g = ContentGenerator::new(0.25);
        let avg: f64 = (0..20).map(|s| g.measured_ratio(s, 4096)).sum::<f64>() / 20.0;
        assert!((avg - 0.25).abs() < 0.08, "average ratio {avg}");
    }

    #[test]
    fn near_incompressible() {
        let g = ContentGenerator::new(1.0);
        let r = g.measured_ratio(3, 4096);
        assert!(r > 0.9, "ratio {r}");
    }

    #[test]
    fn odd_lengths() {
        let g = ContentGenerator::new(0.5);
        for len in [1, 2, 7, 63, 4095, 4097] {
            assert_eq!(g.chunk(1, len).len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn zero_ratio_panics() {
        ContentGenerator::new(0.0);
    }
}
