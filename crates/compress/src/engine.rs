//! Chunk-level compression with stored-raw fallback.
//!
//! The data SSDs store each unique chunk compressed, together with its
//! compressed size so the PBN→PBA map can locate it inside a container
//! (paper §2.1.4: "2 bytes for the compressed size"). Like real reduction
//! systems, a chunk whose compressed form would be larger than the original
//! is stored raw, flagged in the encoding byte.

use crate::lzss::{self, DecompressError};

/// How a chunk's bytes are encoded on the data SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// LZ-compressed payload.
    Lzss,
    /// Raw payload (compression did not help).
    Raw,
}

/// A compressed (or raw-fallback) chunk ready to be packed into a container.
///
/// # Examples
///
/// ```
/// use fidr_compress::CompressedChunk;
///
/// let data = vec![9u8; 4096];
/// let cc = CompressedChunk::compress(&data);
/// assert!(cc.stored_len() < 100);
/// assert_eq!(cc.decompress().unwrap(), data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedChunk {
    encoding: Encoding,
    payload: Vec<u8>,
    original_len: u32,
}

impl CompressedChunk {
    /// Compresses `data`, falling back to raw storage when compression
    /// would expand it.
    pub fn compress(data: &[u8]) -> Self {
        let packed = lzss::compress(data);
        if packed.len() < data.len() {
            CompressedChunk {
                encoding: Encoding::Lzss,
                payload: packed,
                original_len: data.len() as u32,
            }
        } else {
            CompressedChunk {
                encoding: Encoding::Raw,
                payload: data.to_vec(),
                original_len: data.len() as u32,
            }
        }
    }

    /// Reassembles a chunk previously peeled out of a container.
    pub fn from_parts(encoding: Encoding, payload: Vec<u8>, original_len: u32) -> Self {
        CompressedChunk {
            encoding,
            payload,
            original_len,
        }
    }

    /// Recovers the original bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError`] if the payload is corrupt.
    pub fn decompress(&self) -> Result<Vec<u8>, DecompressError> {
        match self.encoding {
            Encoding::Lzss => lzss::decompress(&self.payload, self.original_len as usize),
            Encoding::Raw => Ok(self.payload.clone()),
        }
    }

    /// The encoding in effect.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Bytes occupied on the data SSD.
    pub fn stored_len(&self) -> usize {
        self.payload.len()
    }

    /// Original (uncompressed) length in bytes.
    pub fn original_len(&self) -> usize {
        self.original_len as usize
    }

    /// Compressed/original size ratio (1.0 for raw fallback).
    pub fn ratio(&self) -> f64 {
        if self.original_len == 0 {
            1.0
        } else {
            self.payload.len() as f64 / self.original_len as f64
        }
    }

    /// Borrow of the stored payload (for container packing).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Consumes self, returning the stored payload.
    pub fn into_payload(self) -> Vec<u8> {
        self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressible_uses_lzss() {
        let cc = CompressedChunk::compress(&vec![1u8; 4096]);
        assert_eq!(cc.encoding(), Encoding::Lzss);
        assert!(cc.ratio() < 0.05);
    }

    #[test]
    fn incompressible_falls_back_to_raw() {
        // Pure xorshift noise: no codec-visible redundancy at all.
        let mut s = 0x9e3779b97f4a7c15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect();
        let cc = CompressedChunk::compress(&data);
        assert_eq!(cc.encoding(), Encoding::Raw);
        assert_eq!(cc.stored_len(), data.len());
        assert_eq!(cc.decompress().unwrap(), data);
    }

    #[test]
    fn parts_roundtrip() {
        let data = b"abcabcabcabcabcabcabcabcxyz".to_vec();
        let cc = CompressedChunk::compress(&data);
        let enc = cc.encoding();
        let olen = cc.original_len() as u32;
        let payload = cc.clone().into_payload();
        let cc2 = CompressedChunk::from_parts(enc, payload, olen);
        assert_eq!(cc2.decompress().unwrap(), data);
    }

    #[test]
    fn empty_chunk() {
        let cc = CompressedChunk::compress(b"");
        assert_eq!(cc.decompress().unwrap(), Vec::<u8>::new());
        assert_eq!(cc.ratio(), 1.0);
    }
}
