//! # fidr-compress
//!
//! Compression substrate for the FIDR data-reduction system: a from-scratch
//! LZ-class block codec ([`compress`] / [`decompress`]), a chunk-level
//! wrapper with raw fallback ([`CompressedChunk`]), and a deterministic
//! [`ContentGenerator`] that synthesises payloads at a target
//! compressibility (the paper's §7.1 workload recipe).
//!
//! In the paper the compression and decompression engines run on dedicated
//! FPGAs; their *placement and bandwidth* are modelled in `fidr-hwsim`, while
//! this crate supplies the actual byte transformation so that read-back
//! verification is end-to-end real.
//!
//! # Examples
//!
//! ```
//! use fidr_compress::{CompressedChunk, ContentGenerator};
//!
//! let gen = ContentGenerator::new(0.5);
//! let chunk = gen.chunk(1, 4096);
//! let cc = CompressedChunk::compress(&chunk);
//! assert!(cc.stored_len() < chunk.len());
//! assert_eq!(cc.decompress()?, chunk);
//! # Ok::<(), fidr_compress::DecompressError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod generator;
mod lzss;

pub use engine::{CompressedChunk, Encoding};
pub use generator::ContentGenerator;
pub use lzss::{compress, compress_with_level, decompress, CompressionLevel, DecompressError};
