//! A from-scratch LZ77-family block codec.
//!
//! The FIDR Compression Engine and the CIDR baseline both run LZ-class
//! lossless compression on FPGAs (paper §2.3, §6.1; CIDR builds on
//! "Gzip on a chip"-style cores). This module is the functional stand-in:
//! a byte-oriented block format in the LZ4 spirit — token byte with literal
//! run length and match length nibbles, 2-byte little-endian match offsets,
//! 255-continuation extension bytes — implemented with a hash-chain matcher.
//!
//! The format is self-terminating given the compressed length: the final
//! sequence carries only literals.

use std::fmt;

/// Minimum match length worth encoding (a match costs 3 bytes: token share +
/// 2-byte offset).
const MIN_MATCH: usize = 4;
/// Maximum backward distance the 2-byte offset can express.
const MAX_OFFSET: usize = 65_535;
/// Hash table size (log2) for the matcher.
const HASH_BITS: u32 = 13;

/// Error returned when decompression encounters a malformed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompressError {
    detail: &'static str,
}

impl DecompressError {
    fn new(detail: &'static str) -> Self {
        DecompressError { detail }
    }
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed compressed stream: {}", self.detail)
    }
}

impl std::error::Error for DecompressError {}

fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compression effort level.
///
/// `Fast` models the throughput-oriented FPGA cores the paper deploys;
/// `High` spends more matcher effort (deeper hash chains plus lazy
/// matching) for a better ratio — the software-side trade-off an
/// operator might pick for cold data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompressionLevel {
    /// Greedy matching, shallow chains (the default).
    #[default]
    Fast,
    /// Lazy matching, deep chains; slower, smaller output.
    High,
}

impl CompressionLevel {
    fn chain_tries(self) -> u32 {
        match self {
            CompressionLevel::Fast => 16,
            CompressionLevel::High => 96,
        }
    }

    fn lazy(self) -> bool {
        matches!(self, CompressionLevel::High)
    }
}

/// Matcher state shared by both levels.
struct Matcher {
    /// head[h] = most recent position with hash h (+1, 0 = empty).
    head: Vec<u32>,
    /// prev[i % WINDOW] = previous position in this hash chain (+1).
    prev: Vec<u32>,
    tries: u32,
}

impl Matcher {
    fn new(tries: u32) -> Self {
        Matcher {
            head: vec![0u32; 1 << HASH_BITS],
            prev: vec![0u32; MAX_OFFSET + 1],
            tries,
        }
    }

    /// Indexes position `pos` and returns the best (offset, len) match.
    fn insert_and_find(&mut self, input: &[u8], pos: usize) -> (usize, usize) {
        let n = input.len();
        let h = hash4(&input[pos..]);
        let mut candidate = self.head[h] as usize;
        self.head[h] = (pos + 1) as u32;
        self.prev[pos % (MAX_OFFSET + 1)] = candidate as u32;

        let mut best_len = 0usize;
        let mut best_off = 0usize;
        let mut tries = self.tries;
        while candidate > 0 && tries > 0 {
            let cand = candidate - 1;
            // Double-indexing (lazy probes + sparse match indexing) can
            // leave forward references in a chain; matches must point
            // strictly backwards.
            if cand >= pos {
                candidate = self.prev[cand % (MAX_OFFSET + 1)] as usize;
                tries -= 1;
                continue;
            }
            if pos - cand > MAX_OFFSET {
                break;
            }
            let max_len = n - pos;
            let mut l = 0usize;
            while l < max_len && input[cand + l] == input[pos + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_off = pos - cand;
                if l >= max_len {
                    break;
                }
            }
            candidate = self.prev[cand % (MAX_OFFSET + 1)] as usize;
            tries -= 1;
        }
        (best_off, best_len)
    }

    /// Indexes a position without searching (inside emitted matches).
    fn insert_only(&mut self, input: &[u8], pos: usize) {
        let h = hash4(&input[pos..]);
        self.prev[pos % (MAX_OFFSET + 1)] = self.head[h];
        self.head[h] = (pos + 1) as u32;
    }
}

/// Compresses `input` into the block format at the default (`Fast`)
/// level.
///
/// The output of compressing an empty input is empty. Compression never
/// fails; incompressible data expands by at most ~0.5 %.
///
/// # Examples
///
/// ```
/// let data = b"abcabcabcabcabcabcabcabc".to_vec();
/// let packed = fidr_compress::compress(&data);
/// assert!(packed.len() < data.len());
/// assert_eq!(fidr_compress::decompress(&packed, data.len()).unwrap(), data);
/// ```
pub fn compress(input: &[u8]) -> Vec<u8> {
    compress_with_level(input, CompressionLevel::Fast)
}

/// Compresses `input` at an explicit effort [`CompressionLevel`].
pub fn compress_with_level(input: &[u8], level: CompressionLevel) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        return out;
    }

    let mut matcher = Matcher::new(level.chain_tries());
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    // Matches may not extend into the final MIN_MATCH bytes so the last
    // sequence always ends in literals.
    let match_limit = n.saturating_sub(MIN_MATCH);

    while pos < match_limit {
        let (mut best_off, mut best_len) = matcher.insert_and_find(input, pos);

        // Lazy matching: if the next position yields a strictly longer
        // match, emit this byte as a literal and take the later match.
        if level.lazy() && best_len >= MIN_MATCH && pos + 1 < match_limit {
            let (next_off, next_len) = matcher.insert_and_find(input, pos + 1);
            // When deferring, `pos` advances onto the probed position,
            // whose index entry insert_and_find already made; when not,
            // the probe merely pre-indexed pos+1.
            if next_len > best_len + 1 {
                pos += 1;
                best_off = next_off;
                best_len = next_len;
            }
        }

        if best_len >= MIN_MATCH {
            // Trim so the stream always ends with at least MIN_MATCH
            // literal bytes; truncated streams then fail decompression.
            let room = n - pos;
            if best_len > room.saturating_sub(MIN_MATCH) {
                best_len = room.saturating_sub(MIN_MATCH);
            }
            if best_len >= MIN_MATCH {
                emit_sequence(
                    &mut out,
                    &input[literal_start..pos],
                    Some((best_off, best_len)),
                );
                // Index the skipped positions sparsely (every other byte) to
                // keep compression fast on long matches.
                let end = (pos + best_len).min(match_limit);
                let mut p = pos + 1;
                while p < end {
                    matcher.insert_only(input, p);
                    p += 2;
                }
                pos += best_len;
                literal_start = pos;
                continue;
            }
        }
        pos += 1;
    }

    // Final literal-only sequence.
    emit_sequence(&mut out, &input[literal_start..], None);
    out
}

fn emit_length(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_len = literals.len();
    let lit_nibble = lit_len.min(15) as u8;
    let (match_nibble, off, mlen) = match m {
        Some((off, mlen)) => {
            debug_assert!(mlen >= MIN_MATCH);
            (((mlen - MIN_MATCH).min(15)) as u8, off, mlen)
        }
        None => (0, 0, 0),
    };
    out.push((lit_nibble << 4) | match_nibble);
    if lit_len >= 15 {
        emit_length(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    if m.is_some() {
        out.push((off & 0xff) as u8);
        out.push((off >> 8) as u8);
        if mlen - MIN_MATCH >= 15 {
            emit_length(out, mlen - MIN_MATCH - 15);
        }
    }
}

/// Decompresses a block produced by [`compress`].
///
/// `expected_len` is the exact original length (the storage system records
/// it in the PBN→PBA map, paper §2.1.4).
///
/// # Errors
///
/// Returns [`DecompressError`] if the stream is truncated, an offset points
/// before the output start, or the output length disagrees with
/// `expected_len`.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut p = 0usize;
    let n = input.len();

    if n == 0 {
        return if expected_len == 0 {
            Ok(out)
        } else {
            Err(DecompressError::new("empty stream for non-empty data"))
        };
    }

    while p < n {
        let token = input[p];
        p += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            loop {
                let b = *input
                    .get(p)
                    .ok_or(DecompressError::new("truncated literal length"))?;
                p += 1;
                lit_len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        if p + lit_len > n {
            return Err(DecompressError::new("literal run past end of stream"));
        }
        out.extend_from_slice(&input[p..p + lit_len]);
        p += lit_len;

        if p == n {
            break; // final literal-only sequence
        }

        if p + 2 > n {
            return Err(DecompressError::new("truncated match offset"));
        }
        let off = input[p] as usize | ((input[p + 1] as usize) << 8);
        p += 2;
        if off == 0 || off > out.len() {
            return Err(DecompressError::new("match offset out of range"));
        }
        let mut mlen = (token & 0x0f) as usize + MIN_MATCH;
        if mlen == 15 + MIN_MATCH {
            loop {
                let b = *input
                    .get(p)
                    .ok_or(DecompressError::new("truncated match length"))?;
                p += 1;
                mlen += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        let start = out.len() - off;
        for i in 0..mlen {
            let b = out[start + i];
            out.push(b);
        }
        if out.len() > expected_len {
            return Err(DecompressError::new("output exceeds expected length"));
        }
    }

    if out.len() != expected_len {
        return Err(DecompressError::new("output shorter than expected length"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn empty() {
        roundtrip(b"");
    }

    #[test]
    fn tiny() {
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn highly_repetitive_compresses_well() {
        let data = vec![0x42u8; 4096];
        let c = compress(&data);
        assert!(
            c.len() < 100,
            "4 KB of one byte should pack tiny, got {}",
            c.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn pattern_data() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 37) as u8).collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4);
        roundtrip(&data);
    }

    #[test]
    fn incompressible_random_bytes_expand_little() {
        // xorshift-ish deterministic noise
        let mut s = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 0xff) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 128 + 16);
        roundtrip(&data);
    }

    #[test]
    fn long_match_extension_lengths() {
        // Force matches with length requiring several 255-extensions.
        let mut data = b"0123456789abcdef".to_vec();
        let rep = data.clone();
        for _ in 0..200 {
            data.extend_from_slice(&rep);
        }
        roundtrip(&data);
    }

    #[test]
    fn long_literal_runs() {
        // >270 distinct bytes to force extended literal length encoding.
        let data: Vec<u8> = (0u32..1000)
            .map(|i| (i.wrapping_mul(179) >> 3) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn high_level_roundtrips_and_compresses_tighter() {
        // Structured text-like data where lazy matching finds better cuts.
        let mut data = Vec::new();
        for i in 0..400u32 {
            data.extend_from_slice(
                format!("record-{:04}: the quick brown fox;", i % 37).as_bytes(),
            );
        }
        let fast = compress_with_level(&data, CompressionLevel::Fast);
        let high = compress_with_level(&data, CompressionLevel::High);
        assert_eq!(decompress(&fast, data.len()).unwrap(), data);
        assert_eq!(decompress(&high, data.len()).unwrap(), data);
        assert!(
            high.len() <= fast.len(),
            "high effort must not lose: {} vs {}",
            high.len(),
            fast.len()
        );
    }

    #[test]
    fn high_level_roundtrips_random_and_repetitive() {
        let mut s = 99u64;
        let noise: Vec<u8> = (0..8192)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 30) as u8
            })
            .collect();
        for data in [
            noise,
            vec![7u8; 8192],
            (0..8192u32).map(|i| (i % 5) as u8).collect(),
        ] {
            let c = compress_with_level(&data, CompressionLevel::High);
            assert_eq!(decompress(&c, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let data = vec![7u8; 1024];
        let c = compress(&data);
        assert!(decompress(&c[..c.len() - 1], data.len()).is_err());
    }

    #[test]
    fn wrong_expected_len_errors() {
        let data = b"hello world hello world hello world".to_vec();
        let c = compress(&data);
        assert!(decompress(&c, data.len() + 1).is_err());
        assert!(decompress(&c, data.len() - 1).is_err());
    }

    #[test]
    fn corrupt_offset_errors() {
        // Token demanding a match with offset beyond produced output.
        let stream = [0x10, b'a', 0xff, 0xff, 0x00];
        assert!(decompress(&stream, 100).is_err());
    }
}
