//! Property-based tests for the codec: roundtrip over arbitrary and
//! adversarially-structured inputs.

use fidr_compress::{
    compress, compress_with_level, decompress, CompressedChunk, CompressionLevel, ContentGenerator,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    /// Repetitive inputs (small alphabet) stress the match path.
    #[test]
    fn roundtrip_small_alphabet(data in proptest::collection::vec(0u8..4, 0..8192)) {
        let c = compress(&data);
        prop_assert!(data.is_empty() || c.len() <= data.len() + data.len() / 64 + 16);
        prop_assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    /// Runs of runs: blocks of a repeated byte with varying lengths.
    #[test]
    fn roundtrip_rle_blocks(blocks in proptest::collection::vec((any::<u8>(), 1usize..500), 1..20)) {
        let mut data = Vec::new();
        for (b, n) in blocks {
            data.extend(std::iter::repeat_n(b, n));
        }
        let c = compress(&data);
        prop_assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    /// Decompressing corrupted streams must never panic.
    #[test]
    fn corrupt_streams_never_panic(data in proptest::collection::vec(any::<u8>(), 1..1024),
                                   flip in 0usize..8192,
                                   explen in 0usize..8192) {
        let mut c = compress(&data);
        if !c.is_empty() {
            let i = flip % c.len();
            c[i] = c[i].wrapping_add(1 + (flip % 255) as u8);
        }
        // Either succeeds (harmless corruption) or errors; must not panic.
        let _ = decompress(&c, explen);
    }

    /// High-effort compression roundtrips on arbitrary inputs and never
    /// produces larger output than Fast by more than the format slack.
    #[test]
    fn high_level_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..6144)) {
        let high = compress_with_level(&data, CompressionLevel::High);
        prop_assert_eq!(decompress(&high, data.len()).unwrap(), data.clone());
        let fast = compress_with_level(&data, CompressionLevel::Fast);
        prop_assert!(high.len() <= fast.len() + 16);
    }

    /// CompressedChunk roundtrips for any content.
    #[test]
    fn chunk_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let cc = CompressedChunk::compress(&data);
        prop_assert!(cc.stored_len() <= data.len().max(1));
        prop_assert_eq!(cc.decompress().unwrap(), data);
    }

    /// The generator's content roundtrips and its ratio stays monotone:
    /// a higher target never compresses (much) better than a lower one.
    #[test]
    fn generator_ratio_monotone(seed in any::<u64>()) {
        let lo = ContentGenerator::new(0.25).measured_ratio(seed, 4096);
        let hi = ContentGenerator::new(0.75).measured_ratio(seed, 4096);
        prop_assert!(lo < hi + 0.05, "lo {lo} hi {hi}");
    }
}
