//! Property tests for the §6.2 wire protocol and the streaming codec:
//! `decode(encode(m))` is the identity, `decode` never panics on
//! arbitrary bytes, any strict prefix of a valid frame is `Incomplete`
//! (never a hard error), and a frame stream survives byte-at-a-time
//! reassembly through [`FramedCodec`].

use bytes::Bytes;
use fidr_chunk::Lba;
use fidr_nic::protocol::{Decoded, Message, ShardMapAction, StatsFormat, HEADER_BYTES};
use fidr_nic::FramedCodec;
use proptest::prelude::*;

fn format_strategy() -> impl Strategy<Value = StatsFormat> {
    prop_oneof![Just(StatsFormat::Json), Just(StatsFormat::Prometheus)]
}

/// Only the payload-carrying install actions; a `Get` forbids a payload
/// and is covered by its own `Just` arm in [`message_strategy`].
fn install_action_strategy() -> impl Strategy<Value = ShardMapAction> {
    prop_oneof![Just(ShardMapAction::Set), Just(ShardMapAction::Drain)]
}

fn message_strategy() -> impl Strategy<Value = Message> {
    let payload = proptest::collection::vec(any::<u8>(), 0..2048);
    prop_oneof![
        (any::<u64>(), payload.clone()).prop_map(|(lba, data)| Message::Write {
            lba: Lba(lba),
            data: Bytes::from(data),
        }),
        any::<u64>().prop_map(|lba| Message::Read { lba: Lba(lba) }),
        any::<u64>().prop_map(|lba| Message::WriteAck { lba: Lba(lba) }),
        (any::<u64>(), payload.clone()).prop_map(|(lba, data)| Message::ReadReply {
            lba: Lba(lba),
            data: Bytes::from(data),
        }),
        format_strategy().prop_map(|format| Message::StatsRequest { format }),
        (format_strategy(), payload.clone()).prop_map(|(format, body)| Message::StatsReply {
            format,
            body: Bytes::from(body),
        }),
        Just(Message::ShardMapRequest {
            action: ShardMapAction::Get,
            map: Bytes::new(),
        }),
        (install_action_strategy(), payload.clone()).prop_map(|(action, map)| {
            Message::ShardMapRequest {
                action,
                map: Bytes::from(map),
            }
        }),
        (any::<u64>(), payload).prop_map(|(generation, map)| Message::ShardMapReply {
            generation,
            map: Bytes::from(map),
        }),
        any::<u64>().prop_map(|lba| Message::Delete { lba: Lba(lba) }),
        any::<u64>().prop_map(|lba| Message::DeleteAck { lba: Lba(lba) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_inverts_encode(msg in message_strategy()) {
        let bytes = msg.encode().expect("within payload bound");
        match Message::decode(&bytes).expect("well-formed") {
            Decoded::Frame { msg: decoded, used } => {
                prop_assert_eq!(decoded, msg);
                prop_assert_eq!(used, bytes.len());
            }
            Decoded::Incomplete { needed } => {
                panic!("complete frame reported Incomplete (needed {needed})")
            }
        }
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        // Any outcome is fine; reaching this line means no panic, and a
        // frame must never claim more bytes than it was given.
        if let Ok(Decoded::Frame { used, .. }) = Message::decode(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert!(used >= HEADER_BYTES);
        }
    }

    #[test]
    fn every_strict_prefix_is_incomplete(
        msg in message_strategy(),
        cut in any::<u16>(),
    ) {
        let bytes = msg.encode().expect("within payload bound");
        let cut = (cut as usize) % bytes.len().max(1);
        match Message::decode(&bytes[..cut]).expect("prefixes are not errors") {
            Decoded::Incomplete { needed } => {
                prop_assert!(needed > 0);
                // `needed` is a lower bound the caller can trust: after
                // that many more bytes the frame is at worst still short,
                // never past its end.
                prop_assert!(cut + needed <= bytes.len());
            }
            Decoded::Frame { .. } => panic!("strict prefix decoded as a whole frame"),
        }
    }

    /// Version gating is a pure function of the opcode: a frame decodes
    /// at an older version iff that version speaks its opcode, and the
    /// rejection is always a clean `BadOpcode` from the header — never a
    /// misparse into some other message.
    #[test]
    fn old_decoders_gate_frames_by_opcode_alone(
        msg in message_strategy(),
        version_pick in 0usize..4,
    ) {
        use fidr_nic::protocol::ProtocolVersion;
        let version = [
            ProtocolVersion::V1,
            ProtocolVersion::V2,
            ProtocolVersion::V3,
            ProtocolVersion::V4,
        ][version_pick];
        let bytes = msg.encode().expect("within payload bound");
        let result = Message::decode_versioned(&bytes, version);
        if version.accepts(msg.opcode()) {
            match result.expect("spoken opcode decodes") {
                Decoded::Frame { msg: decoded, used } => {
                    prop_assert_eq!(decoded, msg);
                    prop_assert_eq!(used, bytes.len());
                }
                Decoded::Incomplete { needed } => {
                    panic!("complete frame reported Incomplete (needed {needed})")
                }
            }
        } else {
            let opcode = bytes[0];
            match result {
                Err(fidr_nic::protocol::ProtocolError::BadOpcode(op)) => {
                    prop_assert_eq!(op, opcode);
                }
                other => panic!("unspoken opcode must be BadOpcode, got {other:?}"),
            }
        }
    }

    #[test]
    fn codec_reassembles_any_chunking(
        msgs in proptest::collection::vec(message_strategy(), 1..8),
        chunk in 1usize..striding_max(),
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&m.encode().expect("within payload bound"));
        }
        let mut codec = FramedCodec::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            codec.feed(piece);
            while let Some(msg) = codec.next_frame().expect("valid stream") {
                decoded.push(msg);
            }
        }
        let n = msgs.len();
        prop_assert_eq!(decoded, msgs);
        prop_assert_eq!(codec.pending_bytes(), 0);
        prop_assert_eq!(codec.stats().frames_decoded, n as u64);
        prop_assert_eq!(codec.stats().bytes_fed, wire.len() as u64);
    }
}

/// Upper bound for the chunk-size strategy: covers byte-at-a-time
/// (chunk = 1) through several-frames-at-once deliveries.
fn striding_max() -> usize {
    3 * (HEADER_BYTES + 2048)
}

#[test]
fn byte_at_a_time_reassembly_is_exact() {
    let msgs = vec![
        Message::Write {
            lba: Lba(3),
            data: Bytes::from(vec![0xab; 777]),
        },
        Message::WriteAck { lba: Lba(3) },
        Message::Read { lba: Lba(9) },
        Message::ReadReply {
            lba: Lba(9),
            data: Bytes::from(vec![0x11; 4096]),
        },
    ];
    let mut codec = FramedCodec::new();
    let mut decoded = Vec::new();
    for m in &msgs {
        for b in m.encode().unwrap() {
            codec.feed(&[b]);
            while let Some(msg) = codec.next_frame().unwrap() {
                decoded.push(msg);
            }
        }
    }
    assert_eq!(decoded, msgs);
    assert_eq!(codec.stats().frames_decoded, 4);
    assert_eq!(codec.stats().frames_rejected, 0);
}
