//! Property tests for the consistent-hash shard router: routing is
//! deterministic and total, a join steals only ~K/(N+1) of the keys
//! (and every stolen key lands on the new node), a drain moves only
//! the departed node's keys, and the `fidr.shardmap.v1` codec
//! round-trips to a router that routes every key identically.

use fidr_nic::{ShardNode, ShardRouter};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn node(id: u64) -> ShardNode {
    ShardNode {
        id,
        addr: format!("10.0.0.{}:7000", id % 250),
    }
}

fn fleet(n: u64) -> ShardRouter {
    ShardRouter::from_nodes((1..=n).map(node).collect()).expect("fleet map")
}

fn owners(router: &ShardRouter, keys: &[u64]) -> BTreeMap<u64, u64> {
    keys.iter()
        .map(|&k| (k, router.node_for(k).expect("non-empty ring").id))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn join_steals_a_bounded_fraction_and_only_for_itself(
        n in 2u64..8,
        keys in proptest::collection::vec(any::<u64>(), 256..512),
    ) {
        let before = fleet(n);
        let owned_before = owners(&before, &keys);
        let mut after = before.clone();
        let newcomer = n + 1;
        after.join(node(newcomer)).expect("join");
        prop_assert_eq!(after.generation(), before.generation() + 1);

        let mut moved = 0usize;
        for (&key, &old_owner) in &owned_before {
            let new_owner = after.node_for(key).expect("non-empty ring").id;
            if new_owner != old_owner {
                // Consistent hashing's minimal-disruption contract: a
                // join only *steals* keys; it never shuffles a key
                // between two pre-existing nodes.
                prop_assert_eq!(
                    new_owner, newcomer,
                    "key {} moved {} -> {} instead of to the newcomer",
                    key, old_owner, new_owner
                );
                moved += 1;
            }
        }
        // ~K/(N+1) keys move. The expectation is keys/(n+1); with 64
        // virtual nodes the per-run spread stays well inside 3x, and a
        // zero-move run is astronomically unlikely at K >= 256.
        let expected = keys.len() as f64 / (n as f64 + 1.0);
        prop_assert!(moved > 0, "a join that stole nothing cannot balance");
        prop_assert!(
            (moved as f64) < 3.0 * expected,
            "join moved {} of {} keys; expected about {:.0}",
            moved, keys.len(), expected
        );
    }

    #[test]
    fn drain_moves_only_the_departed_nodes_keys(
        n in 2u64..8,
        victim_pick in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 256..512),
    ) {
        let before = fleet(n);
        let owned_before = owners(&before, &keys);
        let victim = 1 + victim_pick % n;
        let mut after = before.clone();
        let departed = after.drain(victim).expect("drain");
        prop_assert_eq!(departed.id, victim);
        prop_assert_eq!(after.generation(), before.generation() + 1);

        for (&key, &old_owner) in &owned_before {
            let new_owner = after.node_for(key).expect("survivors remain").id;
            prop_assert_ne!(new_owner, victim, "key {} routed to the drained node", key);
            if old_owner != victim {
                // Survivors keep every key they already owned.
                prop_assert_eq!(
                    new_owner, old_owner,
                    "key {} moved {} -> {} though its owner never left",
                    key, old_owner, new_owner
                );
            }
        }
    }

    #[test]
    fn codec_round_trip_routes_every_key_identically(
        n in 1u64..8,
        keys in proptest::collection::vec(any::<u64>(), 64..128),
    ) {
        let map = fleet(n);
        let decoded = ShardRouter::decode(&map.encode()).expect("round trip");
        prop_assert_eq!(decoded.generation(), map.generation());
        prop_assert_eq!(decoded.nodes(), map.nodes());
        for &key in &keys {
            prop_assert_eq!(
                decoded.node_for(key).expect("non-empty").id,
                map.node_for(key).expect("non-empty").id,
            );
        }
    }
}
