//! # fidr-nic
//!
//! The FIDR NIC model (paper §5.4, §6.2): battery-backed in-NIC write
//! buffering with immediate acknowledgment, SHA-256 hash offload, the
//! compression scheduler that forwards only unique chunks, the read-path
//! LBA-lookup module, and the simplified storage wire [`protocol`].
//!
//! # Examples
//!
//! ```
//! use fidr_nic::{schedule_unique, FidrNic};
//! use fidr_chunk::Lba;
//! use bytes::Bytes;
//!
//! let mut nic = FidrNic::new(1 << 20);
//! nic.accept_write(Lba(0), Bytes::from(vec![1u8; 4096]));
//! let batch = nic.take_hash_batch(64);
//! let unique = schedule_unique(batch, &[true]);
//! assert_eq!(unique.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod codec;
pub mod protocol;
pub mod shard;
mod tcp;

pub use buffer::{schedule_unique, FidrNic, HashedChunk, NicStats};
pub use codec::{CodecStats, FramedCodec};
pub use shard::{ShardMapError, ShardNode, ShardRouter};
pub use tcp::{TcpFrontEnd, TcpOffloadEngine};
