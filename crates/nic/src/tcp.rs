//! TCP offload engine model (paper §6.2).
//!
//! "The TCP offload engines in our implementation consist of two 32 Gbps
//! instances and are optimized for large network packets (i.e., the common
//! scenario for a storage environment that a client requests data blocks
//! larger than 1 KB)." The model captures what matters downstream: each
//! engine's line rate, per-packet framing overhead (which is why small
//! packets hurt), and ingest time for a request stream — the NIC-side
//! ceiling a FIDR deployment sizes against.
//!
//! This is a capacity model, deliberately stateless: per-chunk ingest
//! behind the offload engines is what the NIC buffer instruments as
//! `nic.ingest.ns` and the `nic.*` occupancy counters (see
//! `docs/OBSERVABILITY.md`).

use std::time::Duration;

/// Ethernet + TCP/IP framing overhead per packet, bytes (14 + 20 + 20 +
/// 12 options, rounded).
const FRAME_OVERHEAD_BYTES: u64 = 66;
/// Maximum TCP segment payload (standard 1500-byte MTU).
const MSS_BYTES: u64 = 1_434;

/// One TCP offload engine instance.
#[derive(Debug, Clone, Copy)]
pub struct TcpOffloadEngine {
    /// Line rate in bits/second (32 Gbps per instance in the prototype).
    pub line_rate_bps: f64,
}

impl Default for TcpOffloadEngine {
    fn default() -> Self {
        TcpOffloadEngine {
            line_rate_bps: 32e9,
        }
    }
}

impl TcpOffloadEngine {
    /// Wire bytes needed to carry `payload` bytes, including per-segment
    /// framing.
    pub fn wire_bytes(payload: u64) -> u64 {
        if payload == 0 {
            return FRAME_OVERHEAD_BYTES;
        }
        let segments = payload.div_ceil(MSS_BYTES);
        payload + segments * FRAME_OVERHEAD_BYTES
    }

    /// Time to ingest `payload` bytes on this engine.
    pub fn ingest_time(&self, payload: u64) -> Duration {
        Duration::from_secs_f64(Self::wire_bytes(payload) as f64 * 8.0 / self.line_rate_bps)
    }

    /// Effective payload bandwidth (bytes/s) at a given request size —
    /// small requests lose more to framing, which is why §6.2 optimizes
    /// for blocks larger than 1 KB.
    pub fn goodput(&self, request_bytes: u64) -> f64 {
        request_bytes as f64 / self.ingest_time(request_bytes).as_secs_f64()
    }
}

/// The NIC's front end: several offload engine instances load-balanced
/// across connections.
#[derive(Debug, Clone)]
pub struct TcpFrontEnd {
    engines: Vec<TcpOffloadEngine>,
}

impl Default for TcpFrontEnd {
    fn default() -> Self {
        // The prototype's two 32-Gbps instances (64 Gbps NIC).
        TcpFrontEnd::new(2, 32e9)
    }
}

impl TcpFrontEnd {
    /// Creates `instances` engines at `line_rate_bps` each.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is zero.
    pub fn new(instances: usize, line_rate_bps: f64) -> Self {
        assert!(instances > 0, "need at least one offload engine");
        TcpFrontEnd {
            engines: vec![TcpOffloadEngine { line_rate_bps }; instances],
        }
    }

    /// Aggregate payload bandwidth at a request size (bytes/s).
    pub fn aggregate_goodput(&self, request_bytes: u64) -> f64 {
        self.engines.iter().map(|e| e.goodput(request_bytes)).sum()
    }

    /// The client-throughput ceiling this front end imposes on the
    /// system, for the projection's extra-limits slot.
    pub fn throughput_ceiling(&self, request_bytes: u64) -> f64 {
        self.aggregate_goodput(request_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_include_per_segment_framing() {
        // A 4-KB chunk spans 3 segments at a 1434-byte MSS.
        assert_eq!(TcpOffloadEngine::wire_bytes(4096), 4096 + 3 * 66);
        assert_eq!(TcpOffloadEngine::wire_bytes(100), 100 + 66);
    }

    #[test]
    fn small_requests_lose_goodput() {
        let e = TcpOffloadEngine::default();
        let small = e.goodput(512);
        let large = e.goodput(4096);
        assert!(large > small, "framing should penalize small requests");
        // 4-KB requests keep >90% of line rate as payload.
        assert!(large * 8.0 / e.line_rate_bps > 0.9);
    }

    #[test]
    fn prototype_front_end_is_64_gbps_class() {
        let fe = TcpFrontEnd::default();
        let goodput_gbps = fe.aggregate_goodput(4096) * 8.0 / 1e9;
        assert!(
            goodput_gbps > 58.0 && goodput_gbps < 64.0,
            "4-KB goodput {goodput_gbps} Gbps"
        );
    }

    #[test]
    fn ingest_time_scales_with_payload() {
        let e = TcpOffloadEngine::default();
        let t1 = e.ingest_time(4096);
        let t2 = e.ingest_time(8192);
        assert!(t2 > t1);
        // ~1 µs per 4-KB chunk at 32 Gbps.
        assert!((t1.as_secs_f64() - 1.07e-6).abs() < 0.1e-6);
    }

    #[test]
    fn empty_payload_still_costs_a_frame() {
        assert_eq!(TcpOffloadEngine::wire_bytes(0), 66);
    }
}
