//! Consistent-hash shard routing for scale-out serving.
//!
//! One `fidr serve` process owns one `fidr_core`-style system — one
//! shard of the Hash→PBN space. To spread many tenants across N such
//! nodes (HPDedup's cloud-primary-storage setting), every participant —
//! the fan-out client, the stateless `fidr route` front tier, and the
//! nodes themselves — shares a [`ShardRouter`]: a consistent-hash ring
//! with virtual nodes mapping each routing key to its owning node.
//!
//! The routing key is the LBA (a read frame carries nothing else), mixed
//! through [`fidr_hash::splitmix64`] so adjacent addresses land on
//! different nodes. Under content addressing the very same ring routes
//! fingerprints; the key choice is the caller's.
//!
//! # Stability
//!
//! The ring places [`ShardRouter::vnodes`] points per node, each at
//! `splitmix64(splitmix64(node_id) + vnode_index)`, and a key belongs to
//! the first point clockwise from `splitmix64(key)`. Point positions
//! depend only on `(node_id, vnode_index)`, so adding or draining a node
//! moves only the keys whose owning arc changed — ~K/N of them — which
//! is what keeps a drain's handoff traffic proportional to the departing
//! node's share, not the whole keyspace.
//!
//! # Wire encoding
//!
//! A map travels inside [`crate::protocol::Message::ShardMapRequest`] /
//! `ShardMapReply` payloads as the line-oriented `fidr.shardmap.v1`
//! document produced by [`ShardRouter::encode`]:
//!
//! ```text
//! fidr.shardmap.v1
//! generation 3
//! vnodes 64
//! node 1 127.0.0.1:4000
//! node 2 127.0.0.1:4001
//! ```
//!
//! Nodes are listed in id order; two routers that decode the same
//! document route identically, and re-encoding is byte-stable.

use fidr_chunk::Lba;
use fidr_hash::splitmix64;
use std::fmt;

/// Schema tag on the first line of an encoded shard map.
pub const SHARDMAP_SCHEMA: &str = "fidr.shardmap.v1";

/// Default virtual nodes per physical node. More vnodes smooth the
/// per-node load split at the cost of a longer (still binary-searched)
/// ring; 64 keeps the max/min node share within ~2x for small clusters.
pub const DEFAULT_VNODES: usize = 64;

/// One serving node in the cluster map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardNode {
    /// Stable node identity; seeds the node's ring points, so it must
    /// never be reused for a different address while both live.
    pub id: u64,
    /// The node's `host:port` listen address.
    pub addr: String,
}

/// Error decoding or mutating a shard map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMapError {
    /// The document does not start with [`SHARDMAP_SCHEMA`].
    BadSchema,
    /// A line failed to parse.
    BadLine(String),
    /// Two nodes declared the same id.
    DuplicateNode(u64),
    /// A drain named a node the map does not hold.
    UnknownNode(u64),
    /// `vnodes` must be at least 1.
    BadVnodes,
}

impl fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMapError::BadSchema => write!(f, "missing {SHARDMAP_SCHEMA} schema line"),
            ShardMapError::BadLine(line) => write!(f, "bad shard map line: {line:?}"),
            ShardMapError::DuplicateNode(id) => write!(f, "duplicate node id {id}"),
            ShardMapError::UnknownNode(id) => write!(f, "no node with id {id}"),
            ShardMapError::BadVnodes => write!(f, "vnodes must be >= 1"),
        }
    }
}

impl std::error::Error for ShardMapError {}

/// A consistent-hash ring over the cluster's serving nodes.
///
/// Shared by the fan-out client, the `fidr route` front tier, and the
/// nodes (for rehoming): any two holders of the same generation agree on
/// [`ShardRouter::node_for`] for every key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    nodes: Vec<ShardNode>,
    vnodes: usize,
    generation: u64,
    /// Sorted ring points: (position, index into `nodes`). Rebuilt on
    /// every membership change; lookups binary-search it.
    ring: Vec<(u64, usize)>,
}

impl ShardRouter {
    /// An empty ring (routes nothing) at generation 0.
    pub fn new(vnodes: usize) -> Result<ShardRouter, ShardMapError> {
        if vnodes == 0 {
            return Err(ShardMapError::BadVnodes);
        }
        Ok(ShardRouter {
            nodes: Vec::new(),
            vnodes,
            generation: 0,
            ring: Vec::new(),
        })
    }

    /// Builds a ring over `nodes` with [`DEFAULT_VNODES`] virtual nodes,
    /// at generation 1.
    ///
    /// # Errors
    ///
    /// [`ShardMapError::DuplicateNode`] if two nodes share an id.
    pub fn from_nodes(nodes: Vec<ShardNode>) -> Result<ShardRouter, ShardMapError> {
        let mut router = ShardRouter::new(DEFAULT_VNODES)?;
        for node in nodes {
            router.join(node)?;
        }
        Ok(router)
    }

    /// The map's monotone generation counter; bumped by every
    /// [`ShardRouter::join`] / [`ShardRouter::drain`], so a node can
    /// refuse to install a map older than the one it holds.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Virtual nodes per physical node.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The member nodes, in id order.
    pub fn nodes(&self) -> &[ShardNode] {
        &self.nodes
    }

    /// Looks up a member by id.
    pub fn node(&self, id: u64) -> Option<&ShardNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Adds a node and bumps the generation.
    ///
    /// # Errors
    ///
    /// [`ShardMapError::DuplicateNode`] if the id is already a member.
    pub fn join(&mut self, node: ShardNode) -> Result<(), ShardMapError> {
        if self.nodes.iter().any(|n| n.id == node.id) {
            return Err(ShardMapError::DuplicateNode(node.id));
        }
        self.nodes.push(node);
        self.nodes.sort_by_key(|n| n.id);
        self.generation += 1;
        self.rebuild_ring();
        Ok(())
    }

    /// Removes a node and bumps the generation, returning the departed
    /// member. Keys it owned redistribute to the survivors' arcs.
    ///
    /// # Errors
    ///
    /// [`ShardMapError::UnknownNode`] if no member has that id.
    pub fn drain(&mut self, id: u64) -> Result<ShardNode, ShardMapError> {
        let at = self
            .nodes
            .iter()
            .position(|n| n.id == id)
            .ok_or(ShardMapError::UnknownNode(id))?;
        let gone = self.nodes.remove(at);
        self.generation += 1;
        self.rebuild_ring();
        Ok(gone)
    }

    /// The ring position of a routing key.
    fn point_of(key: u64) -> u64 {
        splitmix64(key)
    }

    /// The node owning routing key `key`, or `None` on an empty ring.
    pub fn node_for(&self, key: u64) -> Option<&ShardNode> {
        if self.ring.is_empty() {
            return None;
        }
        let point = ShardRouter::point_of(key);
        // First ring point at or after the key's position, wrapping.
        let at = self.ring.partition_point(|&(pos, _)| pos < point);
        let (_, idx) = self.ring[at % self.ring.len()];
        Some(&self.nodes[idx])
    }

    /// [`ShardRouter::node_for`] keyed by LBA — the routing key the
    /// block protocol actually has in hand on both write and read.
    pub fn node_for_lba(&self, lba: Lba) -> Option<&ShardNode> {
        self.node_for(lba.0)
    }

    /// Renders the `fidr.shardmap.v1` document. Byte-stable: equal maps
    /// encode identically (nodes are kept in id order).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(SHARDMAP_SCHEMA);
        out.push('\n');
        out.push_str(&format!("generation {}\n", self.generation));
        out.push_str(&format!("vnodes {}\n", self.vnodes));
        for node in &self.nodes {
            out.push_str(&format!("node {} {}\n", node.id, node.addr));
        }
        out
    }

    /// Parses a `fidr.shardmap.v1` document.
    ///
    /// # Errors
    ///
    /// [`ShardMapError::BadSchema`] without the schema line,
    /// [`ShardMapError::BadLine`] for an unparsable line,
    /// [`ShardMapError::DuplicateNode`] for a repeated id, and
    /// [`ShardMapError::BadVnodes`] for `vnodes 0`.
    pub fn decode(text: &str) -> Result<ShardRouter, ShardMapError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(SHARDMAP_SCHEMA) {
            return Err(ShardMapError::BadSchema);
        }
        let mut generation = 0u64;
        let mut vnodes = DEFAULT_VNODES;
        let mut nodes: Vec<ShardNode> = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let bad = || ShardMapError::BadLine(line.to_string());
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("generation") => {
                    generation = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                }
                Some("vnodes") => {
                    vnodes = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                }
                Some("node") => {
                    let id = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                    let addr = parts.next().ok_or_else(bad)?.to_string();
                    if nodes.iter().any(|n| n.id == id) {
                        return Err(ShardMapError::DuplicateNode(id));
                    }
                    nodes.push(ShardNode { id, addr });
                }
                _ => return Err(bad()),
            }
            if parts.next().is_some() {
                return Err(bad());
            }
        }
        if vnodes == 0 {
            return Err(ShardMapError::BadVnodes);
        }
        let mut router = ShardRouter {
            nodes,
            vnodes,
            generation,
            ring: Vec::new(),
        };
        router.nodes.sort_by_key(|n| n.id);
        router.rebuild_ring();
        Ok(router)
    }

    fn rebuild_ring(&mut self) {
        self.ring.clear();
        self.ring.reserve(self.nodes.len() * self.vnodes);
        for (idx, node) in self.nodes.iter().enumerate() {
            let seed = splitmix64(node.id);
            for vnode in 0..self.vnodes {
                let pos = splitmix64(seed.wrapping_add(vnode as u64));
                self.ring.push((pos, idx));
            }
        }
        // Position ties (vanishingly rare) resolve to the lower node
        // index deterministically, the same on every holder of the map.
        self.ring.sort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_nodes() -> ShardRouter {
        ShardRouter::from_nodes(vec![
            ShardNode {
                id: 1,
                addr: "127.0.0.1:4000".into(),
            },
            ShardNode {
                id: 2,
                addr: "127.0.0.1:4001".into(),
            },
            ShardNode {
                id: 3,
                addr: "127.0.0.1:4002".into(),
            },
        ])
        .unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let a = three_nodes();
        let b = three_nodes();
        for key in 0..10_000u64 {
            let owner = a.node_for(key).unwrap();
            assert_eq!(owner, b.node_for(key).unwrap());
            assert_eq!(owner, a.node_for_lba(Lba(key)).unwrap());
        }
    }

    #[test]
    fn every_node_owns_a_reasonable_share() {
        let router = three_nodes();
        let mut counts = [0usize; 3];
        for key in 0..30_000u64 {
            counts[(router.node_for(key).unwrap().id - 1) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Perfect split would be 10_000; vnodes keep it within ~2x.
            assert!(c > 4_000, "node {} owns only {c} of 30000 keys", i + 1);
        }
    }

    #[test]
    fn encode_decode_round_trips_and_routes_identically() {
        let router = three_nodes();
        let doc = router.encode();
        assert!(doc.starts_with(SHARDMAP_SCHEMA));
        let decoded = ShardRouter::decode(&doc).unwrap();
        assert_eq!(decoded, router);
        assert_eq!(decoded.encode(), doc, "re-encoding must be byte-stable");
        for key in 0..1_000u64 {
            assert_eq!(decoded.node_for(key), router.node_for(key));
        }
    }

    #[test]
    fn drain_moves_only_the_departed_nodes_keys() {
        let mut router = three_nodes();
        let before: Vec<u64> = (0..10_000u64)
            .map(|k| router.node_for(k).unwrap().id)
            .collect();
        router.drain(2).unwrap();
        for (key, owner_before) in before.iter().enumerate() {
            let owner_after = router.node_for(key as u64).unwrap().id;
            if *owner_before != 2 {
                // Keys the survivors already owned must not move.
                assert_eq!(owner_after, *owner_before, "key {key} moved needlessly");
            } else {
                assert_ne!(owner_after, 2);
            }
        }
    }

    #[test]
    fn join_moves_roughly_one_fourth_of_the_keys() {
        let mut router = three_nodes();
        let before: Vec<u64> = (0..10_000u64)
            .map(|k| router.node_for(k).unwrap().id)
            .collect();
        router
            .join(ShardNode {
                id: 4,
                addr: "127.0.0.1:4003".into(),
            })
            .unwrap();
        let mut moved = 0usize;
        for (key, owner_before) in before.iter().enumerate() {
            let owner_after = router.node_for(key as u64).unwrap().id;
            if owner_after != *owner_before {
                // The only legal move is onto the new node.
                assert_eq!(owner_after, 4, "key {key} moved between survivors");
                moved += 1;
            }
        }
        // ~K/N = 2_500; allow generous slack for ring unevenness.
        assert!(
            (1_000..5_000).contains(&moved),
            "expected ~2500 keys to move, got {moved}"
        );
    }

    #[test]
    fn generations_are_monotone_and_errors_are_reported() {
        let mut router = three_nodes();
        assert_eq!(router.generation(), 3, "one bump per join");
        assert_eq!(
            router
                .join(ShardNode {
                    id: 2,
                    addr: "x".into()
                })
                .unwrap_err(),
            ShardMapError::DuplicateNode(2)
        );
        assert_eq!(router.drain(9).unwrap_err(), ShardMapError::UnknownNode(9));
        assert_eq!(router.generation(), 3, "failed ops must not bump");
        router.drain(1).unwrap();
        assert_eq!(router.generation(), 4);
    }

    #[test]
    fn empty_ring_routes_nothing() {
        let router = ShardRouter::new(8).unwrap();
        assert_eq!(router.node_for(42), None);
        assert!(ShardRouter::new(0).is_err());
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert_eq!(
            ShardRouter::decode("not a map"),
            Err(ShardMapError::BadSchema)
        );
        let dup = "fidr.shardmap.v1\nnode 1 a:1\nnode 1 b:2\n";
        assert_eq!(
            ShardRouter::decode(dup),
            Err(ShardMapError::DuplicateNode(1))
        );
        assert_eq!(
            ShardRouter::decode("fidr.shardmap.v1\nvnodes 0\n"),
            Err(ShardMapError::BadVnodes)
        );
        assert!(matches!(
            ShardRouter::decode("fidr.shardmap.v1\nnode one a:1\n"),
            Err(ShardMapError::BadLine(_))
        ));
        assert!(matches!(
            ShardRouter::decode("fidr.shardmap.v1\nnode 1 a:1 extra\n"),
            Err(ShardMapError::BadLine(_))
        ));
    }
}
