//! The FIDR NIC: in-NIC buffering, hash offload and read LBA lookup.
//!
//! Paper §5.4: the NIC "buffers data and LBAs in its respective in-NIC
//! buffers, hashes each chunk of a batch of requests and sends the hash
//! values to the host"; for reads, the "LBA Lookup module scans the LBA
//! buffer of write requests to find a possible match". Buffering is
//! battery-backed, so write completion is acknowledged the moment the
//! chunk lands in the buffer (§7.6.1).

use bytes::Bytes;
use fidr_chunk::Lba;
use fidr_faults::{FaultInjector, FaultSite};
use fidr_hash::Fingerprint;
use fidr_metrics::{Histogram, MetricsSnapshot};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// A chunk the NIC has hashed, ready for host-side dedup lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashedChunk {
    /// Client logical address.
    pub lba: Lba,
    /// Chunk payload, still resident in NIC DRAM.
    pub data: Bytes,
    /// SHA-256 fingerprint computed by the in-NIC hash cores.
    pub fingerprint: Fingerprint,
}

/// NIC-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Write chunks accepted into the buffer.
    pub writes_buffered: u64,
    /// Bytes currently resident in NIC DRAM.
    pub resident_bytes: u64,
    /// Peak NIC DRAM residency.
    pub peak_resident_bytes: u64,
    /// Chunks hashed by the in-NIC SHA cores.
    pub chunks_hashed: u64,
    /// Read requests served straight from the in-NIC write buffer.
    pub read_buffer_hits: u64,
    /// Read requests forwarded to the host.
    pub read_buffer_misses: u64,
}

/// The FIDR NIC write buffer + hash engine + LBA lookup.
///
/// Lifecycle: [`accept_write`](FidrNic::accept_write) buffers and acks;
/// [`take_hash_batch`](FidrNic::take_hash_batch) drains pending chunks
/// through the SHA cores; [`complete`](FidrNic::complete) releases a
/// chunk's buffer space once the backend has committed it. Chunks stay
/// visible to [`lookup_read`](FidrNic::lookup_read) until completed.
///
/// # Examples
///
/// ```
/// use fidr_nic::FidrNic;
/// use fidr_chunk::Lba;
/// use bytes::Bytes;
///
/// let mut nic = FidrNic::new(1 << 20);
/// nic.accept_write(Lba(3), Bytes::from(vec![1u8; 4096]));
/// assert!(nic.lookup_read(Lba(3)).is_some()); // served from the buffer
/// let batch = nic.take_hash_batch(16);
/// assert_eq!(batch.len(), 1);
/// nic.complete(Lba(3));
/// assert!(nic.lookup_read(Lba(3)).is_none());
/// ```
#[derive(Debug, Default)]
pub struct FidrNic {
    /// LBA → newest buffered payload (write buffer + LBA buffer combined).
    buffer: HashMap<Lba, BufferedWrite>,
    /// Hash queue entries `(lba, generation)`, oldest first. An entry is
    /// *stale* (skipped lazily at batch time) once its LBA was overwritten
    /// with a newer generation — overwrites never scan this queue, which
    /// keeps `accept_write`/`complete` O(1) on overwrite-heavy workloads.
    pending: VecDeque<(Lba, u64)>,
    /// Live (non-stale) entries in `pending`.
    pending_live: usize,
    /// Generation stamp for the next accepted write.
    next_gen: u64,
    capacity_bytes: u64,
    stats: NicStats,
    faults: Option<FaultInjector>,
    /// Wall-clock time to buffer one incoming write.
    ingest_ns: Histogram,
    /// Wall-clock time for each SHA batch (all engines included).
    batch_ns: Histogram,
    /// Chunks per SHA batch.
    batch_chunks: Histogram,
}

/// One LBA's newest buffered payload and its hash-queue state.
#[derive(Debug)]
struct BufferedWrite {
    data: Bytes,
    /// Generation of this payload; only the matching queue entry is live.
    gen: u64,
    /// Whether this payload still awaits hashing (its queue entry has not
    /// been taken into a batch yet).
    queued: bool,
}

impl FidrNic {
    /// Creates a NIC with `capacity_bytes` of battery-backed buffer DRAM.
    pub fn new(capacity_bytes: u64) -> Self {
        FidrNic {
            buffer: HashMap::new(),
            pending: VecDeque::new(),
            pending_live: 0,
            next_gen: 0,
            capacity_bytes,
            stats: NicStats::default(),
            faults: None,
            ingest_ns: Histogram::new(),
            batch_ns: Histogram::new(),
            batch_chunks: Histogram::new(),
        }
    }

    /// Arms fault injection: buffer-pressure faults make
    /// [`has_room`](FidrNic::has_room) report the buffer full, pushing the
    /// caller down its drain/backpressure path.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Counters so far.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Whether the buffer can take another `bytes`-byte chunk without
    /// exceeding its DRAM capacity. An armed fault injector may report
    /// pressure (no room) even below capacity.
    pub fn has_room(&self, bytes: u64) -> bool {
        if let Some(inj) = &self.faults {
            if inj.fire(FaultSite::NicPressure) {
                return false;
            }
        }
        self.stats.resident_bytes + bytes <= self.capacity_bytes
    }

    /// Chunks awaiting hashing.
    pub fn pending_len(&self) -> usize {
        self.pending_live
    }

    /// Accepts a client write; the chunk is durably buffered (battery-
    /// backed) so the caller can acknowledge the client immediately.
    ///
    /// An overwrite of a still-buffered LBA supersedes the old payload.
    pub fn accept_write(&mut self, lba: Lba, data: Bytes) {
        let started = Instant::now();
        let len = data.len() as u64;
        let gen = self.next_gen;
        self.next_gen += 1;
        let entry = BufferedWrite {
            data,
            gen,
            queued: true,
        };
        if let Some(old) = self.buffer.insert(lba, entry) {
            self.stats.resident_bytes -= old.data.len() as u64;
            // The superseded write no longer needs hashing; its queue
            // entry goes stale in place.
            if old.queued {
                self.pending_live -= 1;
            }
        }
        self.stats.resident_bytes += len;
        self.stats.peak_resident_bytes = self
            .stats
            .peak_resident_bytes
            .max(self.stats.resident_bytes);
        self.stats.writes_buffered += 1;
        self.pending.push_back((lba, gen));
        self.pending_live += 1;
        self.ingest_ns.record_duration(started.elapsed());
    }

    /// Runs up to `max` pending chunks through the in-NIC SHA-256 cores
    /// (§5.3 step 2). Chunks remain buffered and read-visible.
    pub fn take_hash_batch(&mut self, max: usize) -> Vec<HashedChunk> {
        self.take_hash_batch_with_engines(max, 1)
    }

    /// Like [`take_hash_batch`](FidrNic::take_hash_batch) but models
    /// `engines` parallel SHA cores — the prototype NIC instantiates
    /// multiple hash cores to sustain line rate (§6.2). With more than
    /// one engine the chunks digest through the multi-lane interleaved
    /// SHA-256 kernel (`fidr_hash::digest_batch`): one call retires up
    /// to `fidr_hash::lanes::MAX_LANES` streams per compression round,
    /// which is how a software stand-in for N hash cores gets faster
    /// even on a host with fewer CPUs than engines. (Earlier revisions
    /// spawned a scoped thread per engine here; on hosts without spare
    /// CPUs that *lost* wall-clock time to spawn overhead.) The result
    /// is byte-identical to the single-engine path; only wall-clock
    /// changes. `engines` does not change lane width — it scales the
    /// *modelled* hash time in `fidr-hwsim`.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is zero.
    pub fn take_hash_batch_with_engines(&mut self, max: usize, engines: usize) -> Vec<HashedChunk> {
        assert!(engines > 0, "need at least one hash engine");
        let started = Instant::now();
        let n = max.min(self.pending_live);
        let mut staged: Vec<(Lba, Bytes)> = Vec::with_capacity(n);
        while staged.len() < n {
            let (lba, gen) = self.pending.pop_front().expect("live entries remain");
            // Skip entries superseded by a newer write to the same LBA.
            let Some(entry) = self.buffer.get_mut(&lba) else {
                continue;
            };
            if entry.gen != gen || !entry.queued {
                continue;
            }
            entry.queued = false;
            self.pending_live -= 1;
            staged.push((lba, entry.data.clone()));
        }
        self.stats.chunks_hashed += staged.len() as u64;
        if !staged.is_empty() {
            self.batch_chunks.record(staged.len() as u64);
        }

        let hashed: Vec<HashedChunk> = if engines == 1 || staged.len() < 2 {
            staged
                .into_iter()
                .map(|(lba, data)| {
                    let fingerprint = Fingerprint::of(&data);
                    HashedChunk {
                        lba,
                        data,
                        fingerprint,
                    }
                })
                .collect()
        } else {
            let refs: Vec<&[u8]> = staged.iter().map(|(_, data)| data.as_ref()).collect();
            let fingerprints = Fingerprint::of_batch(&refs);
            staged
                .into_iter()
                .zip(fingerprints)
                .map(|((lba, data), fingerprint)| HashedChunk {
                    lba,
                    data,
                    fingerprint,
                })
                .collect()
        };
        if !hashed.is_empty() {
            self.batch_ns.record_duration(started.elapsed());
        }
        hashed
    }

    /// Exports the NIC's counters, gauges and latency histograms under the
    /// `nic.*` and `hash.*` prefixes (see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, out: &mut MetricsSnapshot) {
        out.set_counter("nic.writes_buffered.chunks", self.stats.writes_buffered);
        out.set_gauge("nic.resident.bytes", self.stats.resident_bytes as f64);
        out.set_counter("nic.peak_resident.bytes", self.stats.peak_resident_bytes);
        out.set_counter("nic.read_buffer_hits.chunks", self.stats.read_buffer_hits);
        out.set_counter(
            "nic.read_buffer_misses.chunks",
            self.stats.read_buffer_misses,
        );
        let pressure = self
            .faults
            .as_ref()
            .map_or(0, |inj| inj.stats().injected(FaultSite::NicPressure));
        out.set_counter("nic.faults.pressure", pressure);
        out.set_wall_clock_histogram("nic.ingest.ns", &self.ingest_ns);
        out.set_counter("hash.chunks_hashed.chunks", self.stats.chunks_hashed);
        out.set_wall_clock_histogram("hash.batch.ns", &self.batch_ns);
        out.set_histogram("hash.batch.chunks", &self.batch_chunks);
    }

    /// The read path's LBA-lookup module (§5.3 read step 2): serves a read
    /// from the write buffer when the address is still resident.
    pub fn lookup_read(&mut self, lba: Lba) -> Option<Bytes> {
        match self.buffer.get(&lba) {
            Some(entry) => {
                self.stats.read_buffer_hits += 1;
                Some(entry.data.clone())
            }
            None => {
                self.stats.read_buffer_misses += 1;
                None
            }
        }
    }

    /// Releases a chunk's buffer space after the backend committed it.
    /// A no-op if the LBA was superseded or already completed.
    pub fn complete(&mut self, lba: Lba) {
        // Don't drop a payload that still awaits hashing (it was
        // overwritten after this batch was taken).
        match self.buffer.get(&lba) {
            Some(entry) if entry.queued => {}
            Some(_) => {
                let old = self.buffer.remove(&lba).expect("entry just observed");
                self.stats.resident_bytes -= old.data.len() as u64;
            }
            None => {}
        }
    }
}

/// The NIC's compression scheduler (§5.4): filters a hashed batch down to
/// the chunks the host flagged unique, preserving order — only these cross
/// PCIe to the Compression Engines.
///
/// # Panics
///
/// Panics if `unique_flags` and `batch` lengths differ.
pub fn schedule_unique(batch: Vec<HashedChunk>, unique_flags: &[bool]) -> Vec<HashedChunk> {
    assert_eq!(batch.len(), unique_flags.len(), "one flag per hashed chunk");
    batch
        .into_iter()
        .zip(unique_flags)
        .filter_map(|(c, &u)| u.then_some(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(b: u8) -> Bytes {
        Bytes::from(vec![b; 4096])
    }

    #[test]
    fn buffer_then_hash_then_complete() {
        let mut nic = FidrNic::new(1 << 20);
        nic.accept_write(Lba(1), chunk(1));
        nic.accept_write(Lba(2), chunk(2));
        assert_eq!(nic.pending_len(), 2);
        let batch = nic.take_hash_batch(10);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].lba, Lba(1));
        assert_eq!(batch[0].fingerprint, Fingerprint::of(&chunk(1)));
        nic.complete(Lba(1));
        nic.complete(Lba(2));
        assert_eq!(nic.stats().resident_bytes, 0);
    }

    #[test]
    fn overwrite_supersedes_pending() {
        let mut nic = FidrNic::new(1 << 20);
        nic.accept_write(Lba(5), chunk(1));
        nic.accept_write(Lba(5), chunk(2));
        let batch = nic.take_hash_batch(10);
        assert_eq!(batch.len(), 1, "superseded write dropped from hashing");
        assert_eq!(batch[0].data, chunk(2));
        assert_eq!(nic.stats().resident_bytes, 4096);
    }

    #[test]
    fn read_hits_inflight_writes() {
        let mut nic = FidrNic::new(1 << 20);
        nic.accept_write(Lba(9), chunk(7));
        assert_eq!(nic.lookup_read(Lba(9)), Some(chunk(7)));
        assert_eq!(nic.lookup_read(Lba(10)), None);
        let s = nic.stats();
        assert_eq!(s.read_buffer_hits, 1);
        assert_eq!(s.read_buffer_misses, 1);
    }

    #[test]
    fn complete_does_not_drop_rewritten_chunk() {
        let mut nic = FidrNic::new(1 << 20);
        nic.accept_write(Lba(1), chunk(1));
        let _batch = nic.take_hash_batch(1);
        nic.accept_write(Lba(1), chunk(2)); // rewrite lands before commit
        nic.complete(Lba(1));
        assert_eq!(
            nic.lookup_read(Lba(1)),
            Some(chunk(2)),
            "newer payload must survive the older commit"
        );
    }

    #[test]
    fn capacity_accounting_peaks() {
        let mut nic = FidrNic::new(3 * 4096);
        nic.accept_write(Lba(1), chunk(1));
        nic.accept_write(Lba(2), chunk(2));
        assert!(nic.has_room(4096));
        nic.accept_write(Lba(3), chunk(3));
        assert!(!nic.has_room(4096));
        assert_eq!(nic.stats().peak_resident_bytes, 3 * 4096);
    }

    #[test]
    fn scheduler_keeps_only_unique() {
        let mut nic = FidrNic::new(1 << 20);
        for i in 0..4 {
            nic.accept_write(Lba(i), chunk(i as u8));
        }
        let batch = nic.take_hash_batch(4);
        let unique = schedule_unique(batch, &[true, false, false, true]);
        assert_eq!(unique.len(), 2);
        assert_eq!(unique[0].lba, Lba(0));
        assert_eq!(unique[1].lba, Lba(3));
    }

    #[test]
    #[should_panic(expected = "one flag per hashed chunk")]
    fn scheduler_flag_mismatch_panics() {
        schedule_unique(Vec::new(), &[true]);
    }

    #[test]
    fn parallel_engines_match_sequential() {
        let mut seq = FidrNic::new(1 << 22);
        let mut par = FidrNic::new(1 << 22);
        for i in 0..33u64 {
            let data = Bytes::from(vec![(i % 251) as u8; 4096]);
            seq.accept_write(Lba(i), data.clone());
            par.accept_write(Lba(i), data);
        }
        let a = seq.take_hash_batch(33);
        let b = par.take_hash_batch_with_engines(33, 4);
        assert_eq!(a, b, "parallel hashing must be byte-identical in order");
        assert_eq!(par.stats().chunks_hashed, 33);
    }

    #[test]
    #[should_panic(expected = "at least one hash engine")]
    fn zero_engines_panics() {
        FidrNic::new(1024).take_hash_batch_with_engines(1, 0);
    }

    #[test]
    fn completing_unknown_lba_is_harmless() {
        let mut nic = FidrNic::new(1 << 20);
        nic.complete(Lba(999));
        assert_eq!(nic.stats().resident_bytes, 0);
    }

    #[test]
    fn overwrite_does_not_leak_capacity() {
        let mut nic = FidrNic::new(2 * 4096);
        for _ in 0..10 {
            nic.accept_write(Lba(1), chunk(1));
        }
        assert_eq!(nic.stats().resident_bytes, 4096);
        assert!(nic.has_room(4096));
        let batch = nic.take_hash_batch(10);
        assert_eq!(batch.len(), 1, "only the surviving payload hashes");
    }

    #[test]
    fn pending_len_counts_only_live_entries() {
        let mut nic = FidrNic::new(1 << 20);
        for _ in 0..5 {
            nic.accept_write(Lba(1), chunk(1));
        }
        nic.accept_write(Lba(2), chunk(2));
        assert_eq!(nic.pending_len(), 2, "stale overwrite entries excluded");
        let batch = nic.take_hash_batch(10);
        assert_eq!(batch.len(), 2);
        assert_eq!(nic.pending_len(), 0);
    }

    #[test]
    fn interleaved_overwrites_batches_and_completes_stay_consistent() {
        // Regression for the old O(n) VecDeque bookkeeping: a dense mix of
        // overwrites, partial batches and completes must leave exactly the
        // newest payload per LBA visible, with exact byte accounting.
        let mut nic = FidrNic::new(1 << 22);
        for round in 0..8u8 {
            for i in 0..16u64 {
                nic.accept_write(Lba(i % 4), Bytes::from(vec![round ^ i as u8; 4096]));
            }
            let batch = nic.take_hash_batch(3);
            for c in &batch {
                assert_eq!(c.fingerprint, Fingerprint::of(&c.data));
                nic.complete(c.lba);
            }
        }
        // Drain every remaining live entry and complete everything.
        loop {
            let batch = nic.take_hash_batch(64);
            if batch.is_empty() {
                break;
            }
            for c in batch {
                nic.complete(c.lba);
            }
        }
        assert_eq!(nic.pending_len(), 0);
        assert_eq!(nic.stats().resident_bytes, 0, "no capacity leaked");
        assert_eq!(nic.lookup_read(Lba(0)), None);
    }

    #[test]
    fn injected_pressure_reports_no_room_deterministically() {
        use fidr_faults::{FaultInjector, FaultPlan};
        let plan = FaultPlan {
            seed: 3,
            nic_pressure: 1.0,
            ..FaultPlan::default()
        };
        let mut nic = FidrNic::new(1 << 20);
        nic.set_fault_injector(FaultInjector::new(plan));
        assert!(!nic.has_room(4096), "pressure fault reports a full buffer");
        let mut snap = MetricsSnapshot::new();
        nic.export_metrics(&mut snap);
        assert_eq!(snap.counter("nic.faults.pressure"), Some(1));
    }
}
