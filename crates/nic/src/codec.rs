//! Incremental frame decoding for a streaming socket.
//!
//! A TCP stream delivers the wire protocol of [`crate::protocol`] in
//! arbitrary slices: half a header here, three frames and a tail there.
//! [`FramedCodec`] owns the per-connection reassembly buffer, feeding
//! whatever bytes arrive and yielding whole [`Message`]s as they
//! complete — the piece a serving front end puts between `read(2)` and
//! the storage pipeline.
//!
//! # Examples
//!
//! ```
//! use fidr_nic::FramedCodec;
//! use fidr_nic::protocol::Message;
//! use fidr_chunk::Lba;
//!
//! let frame = Message::Read { lba: Lba(9) }.encode().unwrap();
//! let mut codec = FramedCodec::new();
//! // Bytes arrive one at a time; the frame completes on the last one.
//! for &b in &frame {
//!     codec.feed(&[b]);
//! }
//! assert_eq!(codec.next_frame().unwrap(), Some(Message::Read { lba: Lba(9) }));
//! assert_eq!(codec.next_frame().unwrap(), None);
//! ```

use crate::protocol::{
    Decoded, Message, ProtocolError, ProtocolVersion, HEADER_BYTES, MAX_PAYLOAD_BYTES,
};

/// Consumed-prefix length past which [`FramedCodec`] compacts its buffer
/// instead of letting decoded frames accumulate.
const COMPACT_BYTES: usize = 64 * 1024;

/// Lifetime counters of one codec (one connection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Whole frames successfully decoded.
    pub frames_decoded: u64,
    /// Hard protocol errors (the stream is dead after the first).
    pub frames_rejected: u64,
    /// Raw bytes accepted by [`FramedCodec::feed`].
    pub bytes_fed: u64,
}

/// Incremental decoder: buffers stream bytes, yields whole messages.
///
/// A hard [`ProtocolError`] poisons the codec — the byte stream has no
/// frame boundary to resynchronise on, so every later call returns the
/// same error and the caller should close the connection.
#[derive(Debug)]
pub struct FramedCodec {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames.
    pos: usize,
    poisoned: Option<ProtocolError>,
    stats: CodecStats,
    /// Which opcodes this connection accepts; shares the [`Message`]
    /// decode logic, so the codec can never drift from the protocol's
    /// own validation.
    version: ProtocolVersion,
}

impl Default for FramedCodec {
    fn default() -> Self {
        FramedCodec::new()
    }
}

impl FramedCodec {
    /// Creates an empty codec speaking [`ProtocolVersion::LATEST`].
    pub fn new() -> Self {
        FramedCodec::with_version(ProtocolVersion::LATEST)
    }

    /// Creates an empty codec restricted to the opcodes of `version` —
    /// how a pre-telemetry (V1) peer's connection behaves when fed the
    /// newer stats frames: a clean poison, not a misparse.
    pub fn with_version(version: ProtocolVersion) -> Self {
        FramedCodec {
            buf: Vec::new(),
            pos: 0,
            poisoned: None,
            stats: CodecStats::default(),
            version,
        }
    }

    /// Appends freshly read stream bytes to the reassembly buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.stats.bytes_fed += bytes.len() as u64;
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes the next whole frame, if one is buffered.
    ///
    /// `Ok(None)` means the buffer ends mid-frame (or is empty): feed
    /// more bytes and call again. Use [`FramedCodec::needed`] to size the
    /// next read.
    ///
    /// # Errors
    ///
    /// A [`ProtocolError`] is permanent: the codec stays poisoned and
    /// repeats it until dropped.
    pub fn next_frame(&mut self) -> Result<Option<Message>, ProtocolError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        match Message::decode_versioned(&self.buf[self.pos..], self.version) {
            Ok(Decoded::Frame { msg, used }) => {
                self.pos += used;
                self.stats.frames_decoded += 1;
                if self.pos >= COMPACT_BYTES {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                Ok(Some(msg))
            }
            Ok(Decoded::Incomplete { .. }) => Ok(None),
            Err(e) => {
                self.stats.frames_rejected += 1;
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Additional bytes required before the next frame can complete
    /// (1 when the buffer is empty or poisoned — any read may help the
    /// caller notice EOF).
    pub fn needed(&self) -> usize {
        match Message::decode_versioned(&self.buf[self.pos..], self.version) {
            Ok(Decoded::Incomplete { needed }) => needed.clamp(1, MAX_PAYLOAD_BYTES + HEADER_BYTES),
            _ => 1,
        }
    }

    /// Undecoded bytes currently buffered (a partial frame at EOF means
    /// the peer disconnected mid-frame).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether a hard protocol error has killed this stream.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CodecStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use fidr_chunk::Lba;

    fn frames() -> Vec<Message> {
        vec![
            Message::Write {
                lba: Lba(1),
                data: Bytes::from(vec![7u8; 4096]),
            },
            Message::Read { lba: Lba(1) },
            Message::WriteAck { lba: Lba(1) },
            Message::ReadReply {
                lba: Lba(1),
                data: Bytes::from(vec![9u8; 128]),
            },
        ]
    }

    #[test]
    fn reassembles_across_arbitrary_chunk_boundaries() {
        let msgs = frames();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(m.encode().unwrap());
        }
        // Feed in awkward 7-byte slices.
        for chunk_len in [1usize, 7, 13, 4096] {
            let mut codec = FramedCodec::new();
            let mut out = Vec::new();
            for chunk in stream.chunks(chunk_len) {
                codec.feed(chunk);
                while let Some(msg) = codec.next_frame().unwrap() {
                    out.push(msg);
                }
            }
            assert_eq!(out, msgs, "chunk_len={chunk_len}");
            assert_eq!(codec.pending_bytes(), 0);
            assert_eq!(codec.stats().frames_decoded, msgs.len() as u64);
            assert_eq!(codec.stats().bytes_fed, stream.len() as u64);
        }
    }

    #[test]
    fn partial_frame_is_not_an_error() {
        let frame = frames()[0].encode().unwrap();
        let mut codec = FramedCodec::new();
        codec.feed(&frame[..frame.len() - 1]);
        assert_eq!(codec.next_frame().unwrap(), None);
        assert_eq!(codec.needed(), 1);
        assert!(codec.pending_bytes() > 0);
        codec.feed(&frame[frame.len() - 1..]);
        assert!(codec.next_frame().unwrap().is_some());
    }

    #[test]
    fn poison_sticks_after_a_bad_opcode() {
        let mut frame = frames()[1].encode().unwrap();
        frame[0] = 0xee;
        let mut codec = FramedCodec::new();
        codec.feed(&frame);
        assert_eq!(
            codec.next_frame().unwrap_err(),
            ProtocolError::BadOpcode(0xee)
        );
        assert!(codec.is_poisoned());
        // Even valid follow-up bytes cannot revive the stream.
        codec.feed(&frames()[1].encode().unwrap());
        assert!(codec.next_frame().is_err());
        assert_eq!(codec.stats().frames_rejected, 1);
    }

    #[test]
    fn hostile_length_rejected_without_buffering_the_body() {
        let mut header = frames()[1].encode().unwrap();
        header[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut codec = FramedCodec::new();
        codec.feed(&header);
        assert!(matches!(
            codec.next_frame().unwrap_err(),
            ProtocolError::PayloadTooLarge { .. }
        ));
        // The codec never asked for 4 GiB.
        assert!(codec.needed() <= MAX_PAYLOAD_BYTES + HEADER_BYTES);
    }

    #[test]
    fn v1_codec_poisons_cleanly_on_a_stats_frame() {
        use crate::protocol::StatsFormat;
        // An old (pre-telemetry) peer's codec fed the new 0x05 frame
        // closes the connection with BadOpcode — never a misparse, never
        // a panic — while a current codec decodes it fine.
        let frame = Message::StatsRequest {
            format: StatsFormat::Json,
        }
        .encode()
        .unwrap();
        let mut old = FramedCodec::with_version(ProtocolVersion::V1);
        old.feed(&frame);
        assert_eq!(
            old.next_frame().unwrap_err(),
            ProtocolError::BadOpcode(0x05)
        );
        assert!(old.is_poisoned());
        let mut new = FramedCodec::new();
        new.feed(&frame);
        assert!(matches!(
            new.next_frame().unwrap(),
            Some(Message::StatsRequest { .. })
        ));
    }

    #[test]
    fn v2_codec_poisons_cleanly_on_a_shard_map_frame() {
        use crate::protocol::ShardMapAction;
        // A pre-cluster (V2) peer's codec fed the new 0x07 frame closes
        // the connection with BadOpcode — never a misparse — while a
        // current codec decodes it fine.
        let frame = Message::ShardMapRequest {
            action: ShardMapAction::Get,
            map: Bytes::new(),
        }
        .encode()
        .unwrap();
        let mut old = FramedCodec::with_version(ProtocolVersion::V2);
        old.feed(&frame);
        assert_eq!(
            old.next_frame().unwrap_err(),
            ProtocolError::BadOpcode(0x07)
        );
        assert!(old.is_poisoned());
        let mut new = FramedCodec::new();
        new.feed(&frame);
        assert!(matches!(
            new.next_frame().unwrap(),
            Some(Message::ShardMapRequest { .. })
        ));
    }

    #[test]
    fn v3_codec_poisons_cleanly_on_a_delete_frame() {
        // A pre-delete (V3) peer's codec fed the new 0x09 frame closes
        // the connection with BadOpcode — never a misparse — while a
        // current codec decodes it fine.
        let frame = Message::Delete { lba: Lba(4) }.encode().unwrap();
        let mut old = FramedCodec::with_version(ProtocolVersion::V3);
        old.feed(&frame);
        assert_eq!(
            old.next_frame().unwrap_err(),
            ProtocolError::BadOpcode(0x09)
        );
        assert!(old.is_poisoned());
        let mut new = FramedCodec::new();
        new.feed(&frame);
        assert!(matches!(
            new.next_frame().unwrap(),
            Some(Message::Delete { lba: Lba(4) })
        ));
    }

    #[test]
    fn compaction_keeps_the_buffer_bounded() {
        let frame = Message::Write {
            lba: Lba(0),
            data: Bytes::from(vec![1u8; 4096]),
        }
        .encode()
        .unwrap();
        let mut codec = FramedCodec::new();
        for _ in 0..64 {
            codec.feed(&frame);
            assert!(codec.next_frame().unwrap().is_some());
            assert!(
                codec.buf.len() <= COMPACT_BYTES + frame.len(),
                "buffer must not grow without bound"
            );
        }
        assert_eq!(codec.stats().frames_decoded, 64);
    }
}
