//! The simplified storage wire protocol.
//!
//! Paper §6.2: "We made a simplified protocol (instead of a complete
//! protocol like iSCSI) … The encoding mainly includes the operation type
//! (i.e., read, write or acknowledgment), the requested address (i.e.,
//! LBA) and data", with a read-wait-ack(data) / write-wait-ack flow.
//!
//! # Wire format
//!
//! Every frame is a fixed 13-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//!      0     1  opcode: 0x01 Write, 0x02 Read, 0x03 WriteAck, 0x04 ReadReply
//!      1     8  LBA, little-endian u64
//!      9     4  payload length, little-endian u32 (0 for Read/WriteAck)
//!     13   len  payload
//! ```
//!
//! The declared length is bounded by [`MAX_PAYLOAD_BYTES`] in **both**
//! directions: [`Message::encode`] refuses to build a frame it could not
//! decode, and [`Message::decode`] rejects a hostile length field before
//! any reader commits buffer space to it.
//!
//! # Streaming contract
//!
//! [`Message::decode`] distinguishes *"the frame is not all here yet"*
//! ([`Decoded::Incomplete`], a normal condition on a streaming socket —
//! keep reading) from *"the frame can never become valid"* (a hard
//! [`ProtocolError`] — close the connection). [`crate::FramedCodec`]
//! wraps this into an incremental per-connection decoder.

use bytes::Bytes;
use fidr_chunk::Lba;
use std::fmt;

/// Frame header size: opcode + LBA + length.
pub const HEADER_BYTES: usize = 1 + 8 + 4;

/// Upper bound on a frame's payload (1 MiB = 256 four-KiB chunks).
///
/// Enforced symmetrically by [`Message::encode`] and
/// [`Message::decode`], so a hostile (or corrupted) 4-byte length field
/// can never pin gigabytes of reader buffer waiting for bytes that will
/// never arrive, and an encoder can never emit a self-inconsistent frame
/// by truncating the length to 32 bits.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 20;

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → server write of `data` at `lba`.
    Write {
        /// Target block.
        lba: Lba,
        /// Payload.
        data: Bytes,
    },
    /// Client → server read request.
    Read {
        /// Block to read.
        lba: Lba,
    },
    /// Server → client write acknowledgment.
    WriteAck {
        /// Block acknowledged.
        lba: Lba,
    },
    /// Server → client read reply carrying data.
    ReadReply {
        /// Block read.
        lba: Lba,
        /// Payload.
        data: Bytes,
    },
}

/// Outcome of decoding the front of a streaming buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A whole frame was present: the message and the bytes it consumed.
    Frame {
        /// The decoded message.
        msg: Message,
        /// Bytes of the buffer this frame occupied.
        used: usize,
    },
    /// The buffer ends mid-frame. Not an error: read at least `needed`
    /// more bytes and retry. (For a short header this is the distance to
    /// a complete header; the finished header may then ask for more.)
    Incomplete {
        /// Additional bytes required before decoding can progress.
        needed: usize,
    },
}

/// Error returned when a frame can never decode, no matter how many more
/// bytes arrive. A streaming reader should close the connection; a
/// partial frame is [`Decoded::Incomplete`] instead, never an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Opcode byte not recognised.
    BadOpcode(u8),
    /// Payload length exceeds [`MAX_PAYLOAD_BYTES`] (encode-side: the
    /// actual payload; decode-side: the declared length field).
    PayloadTooLarge {
        /// The offending length in bytes.
        len: u64,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::PayloadTooLarge { len } => {
                write!(f, "payload of {len} bytes exceeds {MAX_PAYLOAD_BYTES}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl Message {
    fn opcode(&self) -> u8 {
        match self {
            Message::Write { .. } => 0x01,
            Message::Read { .. } => 0x02,
            Message::WriteAck { .. } => 0x03,
            Message::ReadReply { .. } => 0x04,
        }
    }

    /// The message's logical block address.
    pub fn lba(&self) -> Lba {
        match self {
            Message::Write { lba, .. }
            | Message::Read { lba }
            | Message::WriteAck { lba }
            | Message::ReadReply { lba, .. } => *lba,
        }
    }

    fn payload(&self) -> &[u8] {
        match self {
            Message::Write { data, .. } | Message::ReadReply { data, .. } => data,
            _ => &[],
        }
    }

    /// Encodes the message into a frame.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::PayloadTooLarge`] if the payload exceeds
    /// [`MAX_PAYLOAD_BYTES`] — never a silently truncated length field.
    pub fn encode(&self) -> Result<Vec<u8>, ProtocolError> {
        let payload = self.payload();
        if payload.len() > MAX_PAYLOAD_BYTES {
            return Err(ProtocolError::PayloadTooLarge {
                len: payload.len() as u64,
            });
        }
        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
        out.push(self.opcode());
        out.extend_from_slice(&self.lba().0.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        Ok(out)
    }

    /// Decodes one frame from the front of `buf`.
    ///
    /// Returns [`Decoded::Frame`] with the message and the bytes
    /// consumed, or [`Decoded::Incomplete`] when `buf` ends mid-frame
    /// (short header or short payload) — the caller should read more and
    /// retry from the same position.
    ///
    /// The opcode and the declared length are validated as soon as the
    /// header is complete, *before* waiting for the payload, so a
    /// malformed frame is rejected without buffering its claimed body.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadOpcode`] for an unknown opcode and
    /// [`ProtocolError::PayloadTooLarge`] for a declared length over
    /// [`MAX_PAYLOAD_BYTES`]. Both are permanent: no further input can
    /// repair the stream.
    pub fn decode(buf: &[u8]) -> Result<Decoded, ProtocolError> {
        if buf.len() < HEADER_BYTES {
            return Ok(Decoded::Incomplete {
                needed: HEADER_BYTES - buf.len(),
            });
        }
        let opcode = buf[0];
        if !(0x01..=0x04).contains(&opcode) {
            return Err(ProtocolError::BadOpcode(opcode));
        }
        let lba = Lba(u64::from_le_bytes(buf[1..9].try_into().expect("8 bytes")));
        let declared = u64::from(u32::from_le_bytes(buf[9..13].try_into().expect("4 bytes")));
        if declared > MAX_PAYLOAD_BYTES as u64 {
            return Err(ProtocolError::PayloadTooLarge { len: declared });
        }
        let len = declared as usize;
        // With the bound above this cannot overflow even on 16/32-bit
        // targets, but fold the check into the length validation anyway —
        // the constant may grow.
        let end = HEADER_BYTES
            .checked_add(len)
            .ok_or(ProtocolError::PayloadTooLarge { len: declared })?;
        if end > buf.len() {
            return Ok(Decoded::Incomplete {
                needed: end - buf.len(),
            });
        }
        let data = Bytes::copy_from_slice(&buf[HEADER_BYTES..end]);
        let msg = match opcode {
            0x01 => Message::Write { lba, data },
            0x02 => Message::Read { lba },
            0x03 => Message::WriteAck { lba },
            0x04 => Message::ReadReply { lba, data },
            other => return Err(ProtocolError::BadOpcode(other)),
        };
        Ok(Decoded::Frame { msg, used: end })
    }

    /// Decodes a buffer that is expected to hold one whole frame (a
    /// non-streaming convenience for tests and examples).
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`], plus [`ProtocolError::PayloadTooLarge`]
    /// with the buffer length if the frame is merely incomplete — a
    /// fixed buffer cannot grow, so "incomplete" is permanent here.
    pub fn decode_whole(buf: &[u8]) -> Result<(Message, usize), ProtocolError> {
        match Message::decode(buf)? {
            Decoded::Frame { msg, used } => Ok((msg, used)),
            Decoded::Incomplete { .. } => Err(ProtocolError::PayloadTooLarge {
                len: buf.len() as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            Message::Write {
                lba: Lba(7),
                data: Bytes::from(vec![1, 2, 3]),
            },
            Message::Read { lba: Lba(9) },
            Message::WriteAck { lba: Lba(7) },
            Message::ReadReply {
                lba: Lba(9),
                data: Bytes::from(vec![4, 5]),
            },
        ];
        for msg in msgs {
            let frame = msg.encode().unwrap();
            let (decoded, used) = Message::decode_whole(&frame).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn decode_stream_of_frames() {
        let mut stream = Vec::new();
        stream.extend(Message::Read { lba: Lba(1) }.encode().unwrap());
        stream.extend(
            Message::Write {
                lba: Lba(2),
                data: Bytes::from(vec![0u8; 100]),
            }
            .encode()
            .unwrap(),
        );
        let (m1, used1) = Message::decode_whole(&stream).unwrap();
        assert_eq!(m1, Message::Read { lba: Lba(1) });
        let (m2, used2) = Message::decode_whole(&stream[used1..]).unwrap();
        assert!(matches!(m2, Message::Write { lba: Lba(2), .. }));
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn partial_frames_are_incomplete_not_errors() {
        // Short header: needed counts up to a full header.
        assert_eq!(
            Message::decode(&[1, 2]).unwrap(),
            Decoded::Incomplete {
                needed: HEADER_BYTES - 2
            }
        );
        // Short payload: needed counts the missing payload tail.
        let frame = Message::Write {
            lba: Lba(0),
            data: Bytes::from(vec![0u8; 10]),
        }
        .encode()
        .unwrap();
        assert_eq!(
            Message::decode(&frame[..frame.len() - 3]).unwrap(),
            Decoded::Incomplete { needed: 3 }
        );
        // Feeding the missing bytes completes the very same frame.
        assert!(matches!(
            Message::decode(&frame).unwrap(),
            Decoded::Frame { used, .. } if used == frame.len()
        ));
    }

    #[test]
    fn bad_opcode_is_rejected_even_mid_payload() {
        let mut frame = Message::Write {
            lba: Lba(0),
            data: Bytes::from(vec![0u8; 64]),
        }
        .encode()
        .unwrap();
        frame[0] = 0x7f;
        // Rejected from the header alone, before the payload arrives.
        assert_eq!(
            Message::decode(&frame[..HEADER_BYTES]).unwrap_err(),
            ProtocolError::BadOpcode(0x7f)
        );
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            ProtocolError::BadOpcode(0x7f)
        );
    }

    #[test]
    fn hostile_length_is_rejected_from_the_header() {
        let mut frame = Message::Read { lba: Lba(3) }.encode().unwrap();
        frame[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            ProtocolError::PayloadTooLarge {
                len: u64::from(u32::MAX)
            }
        );
        // One past the bound fails; the bound itself is only Incomplete.
        frame[9..13].copy_from_slice(&(MAX_PAYLOAD_BYTES as u32 + 1).to_le_bytes());
        assert!(Message::decode(&frame).is_err());
        frame[9..13].copy_from_slice(&(MAX_PAYLOAD_BYTES as u32).to_le_bytes());
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Decoded::Incomplete {
                needed: MAX_PAYLOAD_BYTES
            }
        );
    }

    #[test]
    fn oversize_payload_refuses_to_encode() {
        let msg = Message::Write {
            lba: Lba(0),
            data: Bytes::from(vec![0u8; MAX_PAYLOAD_BYTES + 1]),
        };
        assert_eq!(
            msg.encode().unwrap_err(),
            ProtocolError::PayloadTooLarge {
                len: MAX_PAYLOAD_BYTES as u64 + 1
            }
        );
        // The bound itself round-trips.
        let msg = Message::ReadReply {
            lba: Lba(0),
            data: Bytes::from(vec![7u8; MAX_PAYLOAD_BYTES]),
        };
        let frame = msg.encode().unwrap();
        assert_eq!(Message::decode_whole(&frame).unwrap().0, msg);
    }

    #[test]
    fn decode_whole_treats_incomplete_as_an_error() {
        let frame = Message::Read { lba: Lba(1) }.encode().unwrap();
        assert!(Message::decode_whole(&frame[..5]).is_err());
    }
}
