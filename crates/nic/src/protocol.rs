//! The simplified storage wire protocol.
//!
//! Paper §6.2: "We made a simplified protocol (instead of a complete
//! protocol like iSCSI) … The encoding mainly includes the operation type
//! (i.e., read, write or acknowledgment), the requested address (i.e.,
//! LBA) and data", with a read-wait-ack(data) / write-wait-ack flow.
//!
//! Frame layout: 1-byte opcode, 8-byte little-endian LBA, 4-byte
//! little-endian payload length, payload.

use bytes::Bytes;
use fidr_chunk::Lba;
use std::fmt;

/// Frame header size: opcode + LBA + length.
pub const HEADER_BYTES: usize = 1 + 8 + 4;

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → server write of `data` at `lba`.
    Write {
        /// Target block.
        lba: Lba,
        /// Payload.
        data: Bytes,
    },
    /// Client → server read request.
    Read {
        /// Block to read.
        lba: Lba,
    },
    /// Server → client write acknowledgment.
    WriteAck {
        /// Block acknowledged.
        lba: Lba,
    },
    /// Server → client read reply carrying data.
    ReadReply {
        /// Block read.
        lba: Lba,
        /// Payload.
        data: Bytes,
    },
}

/// Error returned when decoding a malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Fewer bytes than a header.
    Truncated,
    /// Opcode byte not recognised.
    BadOpcode(u8),
    /// Declared payload extends past the buffer.
    BadLength,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame shorter than header"),
            ProtocolError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::BadLength => write!(f, "payload length exceeds frame"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl Message {
    fn opcode(&self) -> u8 {
        match self {
            Message::Write { .. } => 0x01,
            Message::Read { .. } => 0x02,
            Message::WriteAck { .. } => 0x03,
            Message::ReadReply { .. } => 0x04,
        }
    }

    fn lba(&self) -> Lba {
        match self {
            Message::Write { lba, .. }
            | Message::Read { lba }
            | Message::WriteAck { lba }
            | Message::ReadReply { lba, .. } => *lba,
        }
    }

    fn payload(&self) -> &[u8] {
        match self {
            Message::Write { data, .. } | Message::ReadReply { data, .. } => data,
            _ => &[],
        }
    }

    /// Encodes the message into a frame.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
        out.push(self.opcode());
        out.extend_from_slice(&self.lba().0.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Decodes one frame from the front of `buf`, returning the message
    /// and the bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on truncation, a bad opcode, or a payload
    /// length that overruns the buffer.
    pub fn decode(buf: &[u8]) -> Result<(Message, usize), ProtocolError> {
        if buf.len() < HEADER_BYTES {
            return Err(ProtocolError::Truncated);
        }
        let opcode = buf[0];
        let lba = Lba(u64::from_le_bytes(buf[1..9].try_into().expect("8 bytes")));
        let len = u32::from_le_bytes(buf[9..13].try_into().expect("4 bytes")) as usize;
        let end = HEADER_BYTES + len;
        if end > buf.len() {
            return Err(ProtocolError::BadLength);
        }
        let data = Bytes::copy_from_slice(&buf[HEADER_BYTES..end]);
        let msg = match opcode {
            0x01 => Message::Write { lba, data },
            0x02 => Message::Read { lba },
            0x03 => Message::WriteAck { lba },
            0x04 => Message::ReadReply { lba, data },
            other => return Err(ProtocolError::BadOpcode(other)),
        };
        Ok((msg, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            Message::Write {
                lba: Lba(7),
                data: Bytes::from(vec![1, 2, 3]),
            },
            Message::Read { lba: Lba(9) },
            Message::WriteAck { lba: Lba(7) },
            Message::ReadReply {
                lba: Lba(9),
                data: Bytes::from(vec![4, 5]),
            },
        ];
        for msg in msgs {
            let frame = msg.encode();
            let (decoded, used) = Message::decode(&frame).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn decode_stream_of_frames() {
        let mut stream = Vec::new();
        stream.extend(Message::Read { lba: Lba(1) }.encode());
        stream.extend(
            Message::Write {
                lba: Lba(2),
                data: Bytes::from(vec![0u8; 100]),
            }
            .encode(),
        );
        let (m1, used1) = Message::decode(&stream).unwrap();
        assert_eq!(m1, Message::Read { lba: Lba(1) });
        let (m2, used2) = Message::decode(&stream[used1..]).unwrap();
        assert!(matches!(m2, Message::Write { lba: Lba(2), .. }));
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn errors_on_garbage() {
        assert_eq!(
            Message::decode(&[1, 2]).unwrap_err(),
            ProtocolError::Truncated
        );
        let mut frame = Message::Read { lba: Lba(0) }.encode();
        frame[0] = 0x7f;
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            ProtocolError::BadOpcode(0x7f)
        );
        let mut frame = Message::Write {
            lba: Lba(0),
            data: Bytes::from(vec![0u8; 10]),
        }
        .encode();
        frame.truncate(frame.len() - 1);
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            ProtocolError::BadLength
        );
    }
}
