//! The simplified storage wire protocol.
//!
//! Paper §6.2: "We made a simplified protocol (instead of a complete
//! protocol like iSCSI) … The encoding mainly includes the operation type
//! (i.e., read, write or acknowledgment), the requested address (i.e.,
//! LBA) and data", with a read-wait-ack(data) / write-wait-ack flow.
//!
//! # Wire format
//!
//! Every frame is a fixed 13-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//!      0     1  opcode: 0x01 Write, 0x02 Read, 0x03 WriteAck, 0x04 ReadReply,
//!               0x05 StatsRequest, 0x06 StatsReply, 0x07 ShardMapRequest,
//!               0x08 ShardMapReply, 0x09 Delete, 0x0A DeleteAck
//!      1     8  LBA, little-endian u64 (for the stats opcodes this field
//!               carries the [`StatsFormat`] code instead of an address; for
//!               the shard-map opcodes it carries the [`ShardMapAction`]
//!               code / map generation)
//!      9     4  payload length, little-endian u32 (0 for Read/WriteAck/
//!               StatsRequest/ShardMapRequest-Get/Delete/DeleteAck)
//!     13   len  payload
//! ```
//!
//! The valid opcodes live in one place — the [`Opcode`] enum — shared by
//! [`Message::encode`], [`Message::decode`] and [`crate::FramedCodec`],
//! so a new opcode cannot be half-wired. [`ProtocolVersion`] pins which
//! opcodes a decoder accepts: a V1 (pre-telemetry) peer rejects the stats
//! frames with a clean [`ProtocolError::BadOpcode`] instead of
//! misparsing them.
//!
//! The declared length is bounded by [`MAX_PAYLOAD_BYTES`] in **both**
//! directions: [`Message::encode`] refuses to build a frame it could not
//! decode, and [`Message::decode`] rejects a hostile length field before
//! any reader commits buffer space to it. [`Opcode::StatsRequest`] must
//! declare a zero-length payload ([`ProtocolError::UnexpectedPayload`]
//! otherwise); the storage opcodes keep tolerating — and discarding —
//! unexpected payloads for wire compatibility with PR-5 peers.
//!
//! # Streaming contract
//!
//! [`Message::decode`] distinguishes *"the frame is not all here yet"*
//! ([`Decoded::Incomplete`], a normal condition on a streaming socket —
//! keep reading) from *"the frame can never become valid"* (a hard
//! [`ProtocolError`] — close the connection). [`crate::FramedCodec`]
//! wraps this into an incremental per-connection decoder.

use bytes::Bytes;
use fidr_chunk::Lba;
use std::fmt;

/// Frame header size: opcode + LBA + length.
pub const HEADER_BYTES: usize = 1 + 8 + 4;

/// Upper bound on a frame's payload (1 MiB = 256 four-KiB chunks).
///
/// Enforced symmetrically by [`Message::encode`] and
/// [`Message::decode`], so a hostile (or corrupted) 4-byte length field
/// can never pin gigabytes of reader buffer waiting for bytes that will
/// never arrive, and an encoder can never emit a self-inconsistent frame
/// by truncating the length to 32 bits.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 20;

/// The operation codes of the wire protocol: the single source of truth
/// for what the first header byte may say, shared by [`Message::encode`],
/// [`Message::decode`] and [`crate::FramedCodec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Client → server write.
    Write = 0x01,
    /// Client → server read request.
    Read = 0x02,
    /// Server → client write acknowledgment.
    WriteAck = 0x03,
    /// Server → client read reply.
    ReadReply = 0x04,
    /// Client → server telemetry scrape request ([`ProtocolVersion::V2`]).
    StatsRequest = 0x05,
    /// Server → client telemetry snapshot ([`ProtocolVersion::V2`]).
    StatsReply = 0x06,
    /// Cluster-membership request ([`ProtocolVersion::V3`]): fetch,
    /// install, or drain against a consistent-hash shard map.
    ShardMapRequest = 0x07,
    /// Shard-map reply carrying the node's current encoded map
    /// ([`ProtocolVersion::V3`]).
    ShardMapReply = 0x08,
    /// Client → server delete request ([`ProtocolVersion::V4`]): unmap
    /// the LBA and release its chunk reference.
    Delete = 0x09,
    /// Server → client delete acknowledgment ([`ProtocolVersion::V4`]).
    DeleteAck = 0x0A,
}

impl Opcode {
    /// Every defined opcode, in wire order.
    pub const ALL: [Opcode; 10] = [
        Opcode::Write,
        Opcode::Read,
        Opcode::WriteAck,
        Opcode::ReadReply,
        Opcode::StatsRequest,
        Opcode::StatsReply,
        Opcode::ShardMapRequest,
        Opcode::ShardMapReply,
        Opcode::Delete,
        Opcode::DeleteAck,
    ];

    /// Parses the first header byte. `None` is a
    /// [`ProtocolError::BadOpcode`] at the decode layer.
    pub fn from_byte(byte: u8) -> Option<Opcode> {
        match byte {
            0x01 => Some(Opcode::Write),
            0x02 => Some(Opcode::Read),
            0x03 => Some(Opcode::WriteAck),
            0x04 => Some(Opcode::ReadReply),
            0x05 => Some(Opcode::StatsRequest),
            0x06 => Some(Opcode::StatsReply),
            0x07 => Some(Opcode::ShardMapRequest),
            0x08 => Some(Opcode::ShardMapReply),
            0x09 => Some(Opcode::Delete),
            0x0A => Some(Opcode::DeleteAck),
            _ => None,
        }
    }

    /// The wire byte of this opcode.
    pub fn as_byte(self) -> u8 {
        self as u8
    }

    /// Whether frames of this opcode may carry a payload. A
    /// [`Opcode::StatsRequest`] declaring a nonzero length is a hard
    /// [`ProtocolError::UnexpectedPayload`] (so is a
    /// [`ShardMapAction::Get`] request, and so are the V4
    /// [`Opcode::Delete`] / [`Opcode::DeleteAck`] frames — they were
    /// born strict); the payload-free *storage* opcodes of the original
    /// protocol (Read/WriteAck) tolerate and discard one for wire
    /// compatibility with PR-5 encoders.
    pub fn carries_payload(self) -> bool {
        matches!(
            self,
            Opcode::Write
                | Opcode::ReadReply
                | Opcode::StatsReply
                | Opcode::ShardMapRequest
                | Opcode::ShardMapReply
        )
    }
}

/// The protocol revision a decoder speaks, i.e. which opcodes it
/// accepts. Frames themselves are not versioned — the header layout
/// never changed — so this models peer capability: a V1 decoder facing a
/// V2-only frame fails with a clean [`ProtocolError::BadOpcode`], which
/// is exactly what a pre-telemetry binary does on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolVersion {
    /// The PR-5 storage protocol: opcodes `0x01..=0x04` only.
    V1,
    /// Adds in-band telemetry: [`Opcode::StatsRequest`] /
    /// [`Opcode::StatsReply`].
    V2,
    /// Adds cluster membership: [`Opcode::ShardMapRequest`] /
    /// [`Opcode::ShardMapReply`].
    V3,
    /// Adds the delete lifecycle: [`Opcode::Delete`] /
    /// [`Opcode::DeleteAck`].
    V4,
}

impl ProtocolVersion {
    /// The newest revision; what [`Message::decode`] and
    /// [`crate::FramedCodec::new`] speak.
    pub const LATEST: ProtocolVersion = ProtocolVersion::V4;

    /// Whether this revision accepts `op`.
    pub fn accepts(self, op: Opcode) -> bool {
        match self {
            ProtocolVersion::V1 => !matches!(
                op,
                Opcode::StatsRequest
                    | Opcode::StatsReply
                    | Opcode::ShardMapRequest
                    | Opcode::ShardMapReply
                    | Opcode::Delete
                    | Opcode::DeleteAck
            ),
            ProtocolVersion::V2 => !matches!(
                op,
                Opcode::ShardMapRequest
                    | Opcode::ShardMapReply
                    | Opcode::Delete
                    | Opcode::DeleteAck
            ),
            ProtocolVersion::V3 => !matches!(op, Opcode::Delete | Opcode::DeleteAck),
            ProtocolVersion::V4 => true,
        }
    }
}

/// How a [`Message::StatsReply`] body is encoded; carried in the LBA
/// header field of the stats frames (they address no block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsFormat {
    /// The `fidr.timeseries.v1` JSON telemetry document.
    #[default]
    Json,
    /// Prometheus text exposition format.
    Prometheus,
}

impl StatsFormat {
    /// The wire code stored in the LBA header field.
    pub fn code(self) -> u64 {
        match self {
            StatsFormat::Json => 0,
            StatsFormat::Prometheus => 1,
        }
    }

    /// Parses a wire code. `None` is a
    /// [`ProtocolError::BadStatsFormat`] at the decode layer.
    pub fn from_code(code: u64) -> Option<StatsFormat> {
        match code {
            0 => Some(StatsFormat::Json),
            1 => Some(StatsFormat::Prometheus),
            _ => None,
        }
    }
}

/// What a [`Message::ShardMapRequest`] asks of a node; carried in the
/// LBA header field of the request frame (it addresses no block), the
/// same trick [`StatsFormat`] uses for the stats frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMapAction {
    /// Fetch the node's current shard map. Carries no payload — a
    /// declared length is [`ProtocolError::UnexpectedPayload`].
    #[default]
    Get,
    /// Install the encoded shard map in the payload. The node rehomes
    /// any resident blocks it no longer owns to their new owners, then
    /// keeps serving.
    Set,
    /// Install the encoded shard map in the payload — which must no
    /// longer include this node — rehome *everything* resident, ack,
    /// and then gracefully drain.
    Drain,
}

impl ShardMapAction {
    /// The wire code stored in the LBA header field.
    pub fn code(self) -> u64 {
        match self {
            ShardMapAction::Get => 0,
            ShardMapAction::Set => 1,
            ShardMapAction::Drain => 2,
        }
    }

    /// Parses a wire code. `None` is a
    /// [`ProtocolError::BadShardAction`] at the decode layer.
    pub fn from_code(code: u64) -> Option<ShardMapAction> {
        match code {
            0 => Some(ShardMapAction::Get),
            1 => Some(ShardMapAction::Set),
            2 => Some(ShardMapAction::Drain),
            _ => None,
        }
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → server write of `data` at `lba`.
    Write {
        /// Target block.
        lba: Lba,
        /// Payload.
        data: Bytes,
    },
    /// Client → server read request.
    Read {
        /// Block to read.
        lba: Lba,
    },
    /// Server → client write acknowledgment.
    WriteAck {
        /// Block acknowledged.
        lba: Lba,
    },
    /// Server → client read reply carrying data.
    ReadReply {
        /// Block read.
        lba: Lba,
        /// Payload.
        data: Bytes,
    },
    /// Client → server request for a live telemetry snapshot — in-band
    /// scraping of a running server, no drain required. Carries no
    /// payload; the LBA header field holds the requested format code.
    StatsRequest {
        /// Requested body encoding of the reply.
        format: StatsFormat,
    },
    /// Server → client telemetry snapshot answering a
    /// [`Message::StatsRequest`].
    StatsReply {
        /// Body encoding, echoing the request.
        format: StatsFormat,
        /// The rendered telemetry document (`fidr.timeseries.v1` JSON or
        /// Prometheus exposition text).
        body: Bytes,
    },
    /// Router → node cluster-membership request
    /// ([`ProtocolVersion::V3`]). The LBA header field carries the
    /// [`ShardMapAction`] code; [`ShardMapAction::Get`] carries no
    /// payload, the install actions carry an encoded
    /// `fidr.shardmap.v1` document.
    ShardMapRequest {
        /// What the node should do.
        action: ShardMapAction,
        /// Encoded `fidr.shardmap.v1` map to install (empty for
        /// [`ShardMapAction::Get`]).
        map: Bytes,
    },
    /// Node → router reply carrying the node's now-current map,
    /// answering a [`Message::ShardMapRequest`]. The LBA header field
    /// carries the map generation.
    ShardMapReply {
        /// Generation counter of the map in `map`.
        generation: u64,
        /// The node's current encoded `fidr.shardmap.v1` map.
        map: Bytes,
    },
    /// Client → server delete request ([`ProtocolVersion::V4`]): unmap
    /// `lba` and release its chunk reference. Carries no payload — a
    /// declared length is [`ProtocolError::UnexpectedPayload`].
    Delete {
        /// Block to delete.
        lba: Lba,
    },
    /// Server → client delete acknowledgment: the unmap is durable in
    /// the server's metadata (it survives a crash + restore). Carries no
    /// payload.
    DeleteAck {
        /// Block acknowledged.
        lba: Lba,
    },
}

/// Outcome of decoding the front of a streaming buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A whole frame was present: the message and the bytes it consumed.
    Frame {
        /// The decoded message.
        msg: Message,
        /// Bytes of the buffer this frame occupied.
        used: usize,
    },
    /// The buffer ends mid-frame. Not an error: read at least `needed`
    /// more bytes and retry. (For a short header this is the distance to
    /// a complete header; the finished header may then ask for more.)
    Incomplete {
        /// Additional bytes required before decoding can progress.
        needed: usize,
    },
}

/// Error returned when a frame can never decode, no matter how many more
/// bytes arrive. A streaming reader should close the connection; a
/// partial frame is [`Decoded::Incomplete`] instead, never an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Opcode byte not recognised.
    BadOpcode(u8),
    /// Payload length exceeds [`MAX_PAYLOAD_BYTES`] (encode-side: the
    /// actual payload; decode-side: the declared length field).
    PayloadTooLarge {
        /// The offending length in bytes.
        len: u64,
    },
    /// A frame whose opcode must not carry a payload declared a nonzero
    /// length ([`Opcode::StatsRequest`]).
    UnexpectedPayload {
        /// The offending opcode byte.
        opcode: u8,
        /// The declared payload length.
        len: u64,
    },
    /// A stats frame whose LBA header field holds no known
    /// [`StatsFormat`] code.
    BadStatsFormat {
        /// The offending format code.
        code: u64,
    },
    /// A shard-map request whose LBA header field holds no known
    /// [`ShardMapAction`] code.
    BadShardAction {
        /// The offending action code.
        code: u64,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::PayloadTooLarge { len } => {
                write!(f, "payload of {len} bytes exceeds {MAX_PAYLOAD_BYTES}")
            }
            ProtocolError::UnexpectedPayload { opcode, len } => {
                write!(f, "opcode {opcode:#04x} forbids a payload, got {len} bytes")
            }
            ProtocolError::BadStatsFormat { code } => {
                write!(f, "unknown stats format code {code}")
            }
            ProtocolError::BadShardAction { code } => {
                write!(f, "unknown shard-map action code {code}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl Message {
    /// The message's operation code.
    pub fn opcode(&self) -> Opcode {
        match self {
            Message::Write { .. } => Opcode::Write,
            Message::Read { .. } => Opcode::Read,
            Message::WriteAck { .. } => Opcode::WriteAck,
            Message::ReadReply { .. } => Opcode::ReadReply,
            Message::StatsRequest { .. } => Opcode::StatsRequest,
            Message::StatsReply { .. } => Opcode::StatsReply,
            Message::ShardMapRequest { .. } => Opcode::ShardMapRequest,
            Message::ShardMapReply { .. } => Opcode::ShardMapReply,
            Message::Delete { .. } => Opcode::Delete,
            Message::DeleteAck { .. } => Opcode::DeleteAck,
        }
    }

    /// The message's logical block address. The stats and shard-map
    /// frames address no block; their LBA header field carries the
    /// [`StatsFormat`] / [`ShardMapAction`] code (or the map
    /// generation), which is what this returns for them.
    pub fn lba(&self) -> Lba {
        match self {
            Message::Write { lba, .. }
            | Message::Read { lba }
            | Message::WriteAck { lba }
            | Message::ReadReply { lba, .. }
            | Message::Delete { lba }
            | Message::DeleteAck { lba } => *lba,
            Message::StatsRequest { format } | Message::StatsReply { format, .. } => {
                Lba(format.code())
            }
            Message::ShardMapRequest { action, .. } => Lba(action.code()),
            Message::ShardMapReply { generation, .. } => Lba(*generation),
        }
    }

    fn payload(&self) -> &[u8] {
        match self {
            Message::Write { data, .. } | Message::ReadReply { data, .. } => data,
            Message::StatsReply { body, .. } => body,
            Message::ShardMapRequest { map, .. } | Message::ShardMapReply { map, .. } => map,
            _ => &[],
        }
    }

    /// Encodes the message into a frame.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::PayloadTooLarge`] if the payload exceeds
    /// [`MAX_PAYLOAD_BYTES`] — never a silently truncated length field.
    pub fn encode(&self) -> Result<Vec<u8>, ProtocolError> {
        let payload = self.payload();
        if payload.len() > MAX_PAYLOAD_BYTES {
            return Err(ProtocolError::PayloadTooLarge {
                len: payload.len() as u64,
            });
        }
        // A Get must not carry a map: the decoder rejects the frame, so
        // refuse to build it (same symmetry as the length bound).
        if let Message::ShardMapRequest {
            action: ShardMapAction::Get,
            map,
        } = self
        {
            if !map.is_empty() {
                return Err(ProtocolError::UnexpectedPayload {
                    opcode: Opcode::ShardMapRequest.as_byte(),
                    len: map.len() as u64,
                });
            }
        }
        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
        out.push(self.opcode().as_byte());
        out.extend_from_slice(&self.lba().0.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        Ok(out)
    }

    /// Decodes one frame from the front of `buf`.
    ///
    /// Returns [`Decoded::Frame`] with the message and the bytes
    /// consumed, or [`Decoded::Incomplete`] when `buf` ends mid-frame
    /// (short header or short payload) — the caller should read more and
    /// retry from the same position.
    ///
    /// The opcode and the declared length are validated as soon as the
    /// header is complete, *before* waiting for the payload, so a
    /// malformed frame is rejected without buffering its claimed body.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadOpcode`] for an unknown opcode,
    /// [`ProtocolError::PayloadTooLarge`] for a declared length over
    /// [`MAX_PAYLOAD_BYTES`], [`ProtocolError::UnexpectedPayload`] for a
    /// payload on a payload-forbidding opcode, and
    /// [`ProtocolError::BadStatsFormat`] for a stats frame with an
    /// unknown format code. All are permanent: no further input can
    /// repair the stream.
    pub fn decode(buf: &[u8]) -> Result<Decoded, ProtocolError> {
        Message::decode_versioned(buf, ProtocolVersion::LATEST)
    }

    /// [`Message::decode`] restricted to the opcodes of `version` — the
    /// decoder a peer of that protocol revision runs. A V1 decoder fed a
    /// V2 stats frame fails with [`ProtocolError::BadOpcode`] from the
    /// header alone, exactly like a pre-telemetry binary on the wire.
    ///
    /// # Errors
    ///
    /// As [`Message::decode`].
    pub fn decode_versioned(
        buf: &[u8],
        version: ProtocolVersion,
    ) -> Result<Decoded, ProtocolError> {
        if buf.len() < HEADER_BYTES {
            return Ok(Decoded::Incomplete {
                needed: HEADER_BYTES - buf.len(),
            });
        }
        let opcode = Opcode::from_byte(buf[0])
            .filter(|op| version.accepts(*op))
            .ok_or(ProtocolError::BadOpcode(buf[0]))?;
        // For the storage opcodes this is the LBA; for the stats opcodes
        // it carries the format code (validated below, header-only).
        let field = u64::from_le_bytes(buf[1..9].try_into().expect("8 bytes"));
        let declared = u64::from(u32::from_le_bytes(buf[9..13].try_into().expect("4 bytes")));
        if declared > MAX_PAYLOAD_BYTES as u64 {
            return Err(ProtocolError::PayloadTooLarge { len: declared });
        }
        if matches!(
            opcode,
            Opcode::StatsRequest | Opcode::Delete | Opcode::DeleteAck
        ) && declared != 0
        {
            return Err(ProtocolError::UnexpectedPayload {
                opcode: opcode.as_byte(),
                len: declared,
            });
        }
        let format = match opcode {
            Opcode::StatsRequest | Opcode::StatsReply => Some(
                StatsFormat::from_code(field)
                    .ok_or(ProtocolError::BadStatsFormat { code: field })?,
            ),
            _ => None,
        };
        let action = match opcode {
            Opcode::ShardMapRequest => {
                let action = ShardMapAction::from_code(field)
                    .ok_or(ProtocolError::BadShardAction { code: field })?;
                if action == ShardMapAction::Get && declared != 0 {
                    return Err(ProtocolError::UnexpectedPayload {
                        opcode: opcode.as_byte(),
                        len: declared,
                    });
                }
                Some(action)
            }
            _ => None,
        };
        let len = declared as usize;
        // With the bound above this cannot overflow even on 16/32-bit
        // targets, but fold the check into the length validation anyway —
        // the constant may grow.
        let end = HEADER_BYTES
            .checked_add(len)
            .ok_or(ProtocolError::PayloadTooLarge { len: declared })?;
        if end > buf.len() {
            return Ok(Decoded::Incomplete {
                needed: end - buf.len(),
            });
        }
        let lba = Lba(field);
        let data = Bytes::copy_from_slice(&buf[HEADER_BYTES..end]);
        let msg = match opcode {
            Opcode::Write => Message::Write { lba, data },
            Opcode::Read => Message::Read { lba },
            Opcode::WriteAck => Message::WriteAck { lba },
            Opcode::ReadReply => Message::ReadReply { lba, data },
            Opcode::StatsRequest => Message::StatsRequest {
                format: format.expect("validated above"),
            },
            Opcode::StatsReply => Message::StatsReply {
                format: format.expect("validated above"),
                body: data,
            },
            Opcode::ShardMapRequest => Message::ShardMapRequest {
                action: action.expect("validated above"),
                map: data,
            },
            Opcode::ShardMapReply => Message::ShardMapReply {
                generation: field,
                map: data,
            },
            Opcode::Delete => Message::Delete { lba },
            Opcode::DeleteAck => Message::DeleteAck { lba },
        };
        Ok(Decoded::Frame { msg, used: end })
    }

    /// Decodes a buffer that is expected to hold one whole frame (a
    /// non-streaming convenience for tests and examples).
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`], plus [`ProtocolError::PayloadTooLarge`]
    /// with the buffer length if the frame is merely incomplete — a
    /// fixed buffer cannot grow, so "incomplete" is permanent here.
    pub fn decode_whole(buf: &[u8]) -> Result<(Message, usize), ProtocolError> {
        match Message::decode(buf)? {
            Decoded::Frame { msg, used } => Ok((msg, used)),
            Decoded::Incomplete { .. } => Err(ProtocolError::PayloadTooLarge {
                len: buf.len() as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            Message::Write {
                lba: Lba(7),
                data: Bytes::from(vec![1, 2, 3]),
            },
            Message::Read { lba: Lba(9) },
            Message::WriteAck { lba: Lba(7) },
            Message::ReadReply {
                lba: Lba(9),
                data: Bytes::from(vec![4, 5]),
            },
        ];
        for msg in msgs {
            let frame = msg.encode().unwrap();
            let (decoded, used) = Message::decode_whole(&frame).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn decode_stream_of_frames() {
        let mut stream = Vec::new();
        stream.extend(Message::Read { lba: Lba(1) }.encode().unwrap());
        stream.extend(
            Message::Write {
                lba: Lba(2),
                data: Bytes::from(vec![0u8; 100]),
            }
            .encode()
            .unwrap(),
        );
        let (m1, used1) = Message::decode_whole(&stream).unwrap();
        assert_eq!(m1, Message::Read { lba: Lba(1) });
        let (m2, used2) = Message::decode_whole(&stream[used1..]).unwrap();
        assert!(matches!(m2, Message::Write { lba: Lba(2), .. }));
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn partial_frames_are_incomplete_not_errors() {
        // Short header: needed counts up to a full header.
        assert_eq!(
            Message::decode(&[1, 2]).unwrap(),
            Decoded::Incomplete {
                needed: HEADER_BYTES - 2
            }
        );
        // Short payload: needed counts the missing payload tail.
        let frame = Message::Write {
            lba: Lba(0),
            data: Bytes::from(vec![0u8; 10]),
        }
        .encode()
        .unwrap();
        assert_eq!(
            Message::decode(&frame[..frame.len() - 3]).unwrap(),
            Decoded::Incomplete { needed: 3 }
        );
        // Feeding the missing bytes completes the very same frame.
        assert!(matches!(
            Message::decode(&frame).unwrap(),
            Decoded::Frame { used, .. } if used == frame.len()
        ));
    }

    #[test]
    fn bad_opcode_is_rejected_even_mid_payload() {
        let mut frame = Message::Write {
            lba: Lba(0),
            data: Bytes::from(vec![0u8; 64]),
        }
        .encode()
        .unwrap();
        frame[0] = 0x7f;
        // Rejected from the header alone, before the payload arrives.
        assert_eq!(
            Message::decode(&frame[..HEADER_BYTES]).unwrap_err(),
            ProtocolError::BadOpcode(0x7f)
        );
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            ProtocolError::BadOpcode(0x7f)
        );
    }

    #[test]
    fn hostile_length_is_rejected_from_the_header() {
        let mut frame = Message::Read { lba: Lba(3) }.encode().unwrap();
        frame[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            ProtocolError::PayloadTooLarge {
                len: u64::from(u32::MAX)
            }
        );
        // One past the bound fails; the bound itself is only Incomplete.
        frame[9..13].copy_from_slice(&(MAX_PAYLOAD_BYTES as u32 + 1).to_le_bytes());
        assert!(Message::decode(&frame).is_err());
        frame[9..13].copy_from_slice(&(MAX_PAYLOAD_BYTES as u32).to_le_bytes());
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Decoded::Incomplete {
                needed: MAX_PAYLOAD_BYTES
            }
        );
    }

    #[test]
    fn oversize_payload_refuses_to_encode() {
        let msg = Message::Write {
            lba: Lba(0),
            data: Bytes::from(vec![0u8; MAX_PAYLOAD_BYTES + 1]),
        };
        assert_eq!(
            msg.encode().unwrap_err(),
            ProtocolError::PayloadTooLarge {
                len: MAX_PAYLOAD_BYTES as u64 + 1
            }
        );
        // The bound itself round-trips.
        let msg = Message::ReadReply {
            lba: Lba(0),
            data: Bytes::from(vec![7u8; MAX_PAYLOAD_BYTES]),
        };
        let frame = msg.encode().unwrap();
        assert_eq!(Message::decode_whole(&frame).unwrap().0, msg);
    }

    #[test]
    fn decode_whole_treats_incomplete_as_an_error() {
        let frame = Message::Read { lba: Lba(1) }.encode().unwrap();
        assert!(Message::decode_whole(&frame[..5]).is_err());
    }

    #[test]
    fn opcode_enum_is_the_single_validation_point() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_byte(op.as_byte()), Some(op));
        }
        for byte in [0x00u8, 0x0B, 0x7f, 0xff] {
            assert_eq!(Opcode::from_byte(byte), None);
            assert_eq!(
                Message::decode(&encode_raw(byte, 0, 0)).unwrap_err(),
                ProtocolError::BadOpcode(byte)
            );
        }
    }

    /// Hand-assembles a header for frames `encode` refuses to build.
    fn encode_raw(opcode: u8, field: u64, declared: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES);
        out.push(opcode);
        out.extend_from_slice(&field.to_le_bytes());
        out.extend_from_slice(&declared.to_le_bytes());
        out
    }

    #[test]
    fn stats_frames_round_trip() {
        for msg in [
            Message::StatsRequest {
                format: StatsFormat::Json,
            },
            Message::StatsRequest {
                format: StatsFormat::Prometheus,
            },
            Message::StatsReply {
                format: StatsFormat::Json,
                body: Bytes::from_static(b"{\"schema\":\"fidr.timeseries.v1\"}"),
            },
            Message::StatsReply {
                format: StatsFormat::Prometheus,
                body: Bytes::from_static(b"fidr_server_ops_write_count 3\n"),
            },
        ] {
            let frame = msg.encode().unwrap();
            let (decoded, used) = Message::decode_whole(&frame).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn stats_request_with_nonzero_payload_is_a_hard_error() {
        // A StatsRequest must not carry a payload; a declared length is
        // rejected from the header alone, before the body arrives.
        let mut frame = encode_raw(0x05, StatsFormat::Json.code(), 16);
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            ProtocolError::UnexpectedPayload {
                opcode: 0x05,
                len: 16
            }
        );
        // ... and with the body present the verdict is the same.
        frame.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            ProtocolError::UnexpectedPayload {
                opcode: 0x05,
                len: 16
            }
        );
    }

    #[test]
    fn stats_reply_truncated_mid_frame_is_incomplete_not_an_error() {
        let frame = Message::StatsReply {
            format: StatsFormat::Json,
            body: Bytes::from(vec![b'x'; 256]),
        }
        .encode()
        .unwrap();
        // Every strict prefix obeys the streaming contract: Incomplete,
        // and feeding the missing tail completes the very same frame.
        for cut in [5, HEADER_BYTES, HEADER_BYTES + 100, frame.len() - 1] {
            match Message::decode(&frame[..cut]).unwrap() {
                Decoded::Incomplete { needed } => {
                    assert!(needed > 0 && cut + needed <= frame.len(), "cut={cut}");
                }
                Decoded::Frame { .. } => panic!("truncated frame decoded (cut={cut})"),
            }
        }
        // A fixed buffer cannot grow: decode_whole makes it an error.
        assert!(Message::decode_whole(&frame[..frame.len() - 1]).is_err());
        assert!(matches!(
            Message::decode_whole(&frame).unwrap().0,
            Message::StatsReply { .. }
        ));
    }

    #[test]
    fn v1_decoder_rejects_stats_opcodes_cleanly() {
        // Old-client / new-server compatibility: a pre-PR-8 (V1) decoder
        // fed the new opcodes fails with BadOpcode from the header alone —
        // a clean connection close, not a misparse.
        let request = Message::StatsRequest {
            format: StatsFormat::Json,
        }
        .encode()
        .unwrap();
        let reply = Message::StatsReply {
            format: StatsFormat::Json,
            body: Bytes::from_static(b"{}"),
        }
        .encode()
        .unwrap();
        for frame in [&request, &reply] {
            assert!(matches!(
                Message::decode_versioned(frame, ProtocolVersion::V1).unwrap_err(),
                ProtocolError::BadOpcode(0x05 | 0x06)
            ));
            // The same bytes decode fine at LATEST.
            assert!(matches!(
                Message::decode_versioned(frame, ProtocolVersion::LATEST).unwrap(),
                Decoded::Frame { .. }
            ));
        }
        // V1 still accepts every storage opcode.
        let write = Message::Write {
            lba: Lba(1),
            data: Bytes::from_static(b"abc"),
        }
        .encode()
        .unwrap();
        assert!(matches!(
            Message::decode_versioned(&write, ProtocolVersion::V1).unwrap(),
            Decoded::Frame { .. }
        ));
    }

    #[test]
    fn shard_map_frames_round_trip() {
        let map = Bytes::from_static(b"fidr.shardmap.v1\ngeneration 3\nvnodes 64\n");
        for msg in [
            Message::ShardMapRequest {
                action: ShardMapAction::Get,
                map: Bytes::new(),
            },
            Message::ShardMapRequest {
                action: ShardMapAction::Set,
                map: map.clone(),
            },
            Message::ShardMapRequest {
                action: ShardMapAction::Drain,
                map: map.clone(),
            },
            Message::ShardMapReply { generation: 3, map },
        ] {
            let frame = msg.encode().unwrap();
            let (decoded, used) = Message::decode_whole(&frame).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn shard_map_get_with_payload_is_a_hard_error_both_ways() {
        // Encode side: refuse to build the frame the decoder rejects.
        let msg = Message::ShardMapRequest {
            action: ShardMapAction::Get,
            map: Bytes::from_static(b"x"),
        };
        assert_eq!(
            msg.encode().unwrap_err(),
            ProtocolError::UnexpectedPayload {
                opcode: 0x07,
                len: 1
            }
        );
        // Decode side: rejected from the header alone.
        let frame = encode_raw(0x07, ShardMapAction::Get.code(), 16);
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            ProtocolError::UnexpectedPayload {
                opcode: 0x07,
                len: 16
            }
        );
    }

    #[test]
    fn unknown_shard_action_code_is_rejected_from_the_header() {
        let frame = encode_raw(0x07, 99, 0);
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            ProtocolError::BadShardAction { code: 99 }
        );
        assert_eq!(ShardMapAction::from_code(0), Some(ShardMapAction::Get));
        assert_eq!(ShardMapAction::from_code(1), Some(ShardMapAction::Set));
        assert_eq!(ShardMapAction::from_code(2), Some(ShardMapAction::Drain));
        assert_eq!(ShardMapAction::from_code(3), None);
    }

    #[test]
    fn v1_and_v2_decoders_reject_shard_map_opcodes_cleanly() {
        // Old-peer compatibility: pre-cluster decoders fed the V3
        // opcodes fail with BadOpcode from the header alone — a clean
        // connection close, not a misparse.
        let request = Message::ShardMapRequest {
            action: ShardMapAction::Get,
            map: Bytes::new(),
        }
        .encode()
        .unwrap();
        let reply = Message::ShardMapReply {
            generation: 1,
            map: Bytes::from_static(b"fidr.shardmap.v1\n"),
        }
        .encode()
        .unwrap();
        for frame in [&request, &reply] {
            for version in [ProtocolVersion::V1, ProtocolVersion::V2] {
                assert!(matches!(
                    Message::decode_versioned(frame, version).unwrap_err(),
                    ProtocolError::BadOpcode(0x07 | 0x08)
                ));
            }
            // The same bytes decode fine at LATEST.
            assert!(matches!(
                Message::decode_versioned(frame, ProtocolVersion::LATEST).unwrap(),
                Decoded::Frame { .. }
            ));
        }
        // V2 still accepts the stats opcodes it introduced.
        let stats = Message::StatsRequest {
            format: StatsFormat::Json,
        }
        .encode()
        .unwrap();
        assert!(matches!(
            Message::decode_versioned(&stats, ProtocolVersion::V2).unwrap(),
            Decoded::Frame { .. }
        ));
    }

    #[test]
    fn delete_frames_round_trip() {
        for msg in [
            Message::Delete { lba: Lba(42) },
            Message::DeleteAck { lba: Lba(42) },
            Message::Delete { lba: Lba(u64::MAX) },
        ] {
            let frame = msg.encode().unwrap();
            assert_eq!(frame.len(), HEADER_BYTES, "deletes are header-only");
            let (decoded, used) = Message::decode_whole(&frame).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn delete_with_nonzero_payload_is_a_hard_error() {
        // Delete/DeleteAck were born strict: a declared length is
        // rejected from the header alone, before the body arrives.
        for opcode in [0x09u8, 0x0A] {
            let frame = encode_raw(opcode, 7, 16);
            assert_eq!(
                Message::decode(&frame).unwrap_err(),
                ProtocolError::UnexpectedPayload { opcode, len: 16 }
            );
        }
    }

    #[test]
    fn v1_through_v3_decoders_reject_delete_opcodes_cleanly() {
        // Old-peer compatibility, following the V2/V3 pattern: every
        // pre-delete decoder fed a V4 frame fails with BadOpcode from
        // the header alone — a clean connection close, not a misparse.
        let delete = Message::Delete { lba: Lba(5) }.encode().unwrap();
        let ack = Message::DeleteAck { lba: Lba(5) }.encode().unwrap();
        for frame in [&delete, &ack] {
            for version in [
                ProtocolVersion::V1,
                ProtocolVersion::V2,
                ProtocolVersion::V3,
            ] {
                assert!(matches!(
                    Message::decode_versioned(frame, version).unwrap_err(),
                    ProtocolError::BadOpcode(0x09 | 0x0A)
                ));
            }
            // The same bytes decode fine at LATEST.
            assert!(matches!(
                Message::decode_versioned(frame, ProtocolVersion::LATEST).unwrap(),
                Decoded::Frame { .. }
            ));
        }
        // V3 still accepts everything it spoke before V4 existed.
        for msg in [
            Message::Read { lba: Lba(1) },
            Message::StatsRequest {
                format: StatsFormat::Json,
            },
            Message::ShardMapRequest {
                action: ShardMapAction::Get,
                map: Bytes::new(),
            },
        ] {
            let frame = msg.encode().unwrap();
            assert!(matches!(
                Message::decode_versioned(&frame, ProtocolVersion::V3).unwrap(),
                Decoded::Frame { .. }
            ));
        }
    }

    #[test]
    fn unknown_stats_format_code_is_rejected_from_the_header() {
        for opcode in [0x05u8, 0x06] {
            let frame = encode_raw(opcode, 99, 0);
            assert_eq!(
                Message::decode(&frame).unwrap_err(),
                ProtocolError::BadStatsFormat { code: 99 }
            );
        }
        assert_eq!(StatsFormat::from_code(0), Some(StatsFormat::Json));
        assert_eq!(StatsFormat::from_code(1), Some(StatsFormat::Prometheus));
        assert_eq!(StatsFormat::from_code(2), None);
    }
}
