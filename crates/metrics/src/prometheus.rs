//! Prometheus text exposition (version 0.0.4) for a
//! [`MetricsSnapshot`] — the `fidr scrape --prom` output format.
//!
//! Mapping, documented in `docs/OBSERVABILITY.md`:
//!
//! * names: `<stage>.<name>.<unit>` → `fidr_<stage>_<name>_<unit>`
//!   (dots to underscores, `fidr_` prefix; the charset enforced by the
//!   snapshot is already Prometheus-legal),
//! * counters → `counter`, gauges → `gauge`,
//! * histograms → `summary` (p50/p95/p99 as `quantile` labels plus
//!   `_sum`/`_count`); histograms marked wall-clock export only their
//!   `_count`, mirroring the JSON policy so converting the drain
//!   snapshot stays deterministic.

use crate::snapshot::{MetricValue, MetricsSnapshot};

/// Prefix applied to every exposed metric family.
const PREFIX: &str = "fidr_";

/// Formats an `f64` the way the exposition format expects: `Display`
/// for finite values, Go-style `NaN`/`+Inf`/`-Inf` otherwise.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// `<stage>.<name>.<unit>` → `fidr_<stage>_<name>_<unit>`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    for c in name.chars() {
        out.push(if c == '.' { '_' } else { c });
    }
    out
}

/// Encodes `snap` as Prometheus text exposition, families in sorted
/// name order so equal snapshots produce byte-identical text.
///
/// # Examples
///
/// ```
/// use fidr_metrics::{to_prometheus_text, MetricsSnapshot};
///
/// let mut snap = MetricsSnapshot::new();
/// snap.set_counter("server.ops.write.count", 42);
/// let text = to_prometheus_text(&snap);
/// assert!(text.contains("# TYPE fidr_server_ops_write_count counter"));
/// assert!(text.contains("fidr_server_ops_write_count 42"));
/// ```
pub fn to_prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snap.iter() {
        let family = prom_name(name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {family} counter\n{family} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "# TYPE {family} gauge\n{family} {}\n",
                    prom_f64(*v)
                ));
            }
            MetricValue::Histogram(h) if snap.is_wall_clock(name) => {
                out.push_str(&format!(
                    "# TYPE {family} summary\n{family}_count {}\n",
                    h.count
                ));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "# TYPE {family} summary\n\
                     {family}{{quantile=\"0.5\"}} {}\n\
                     {family}{{quantile=\"0.95\"}} {}\n\
                     {family}{{quantile=\"0.99\"}} {}\n\
                     {family}_sum {}\n\
                     {family}_count {}\n",
                    h.p50, h.p95, h.p99, h.sum, h.count
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    /// Fixture: the exact exposition text for a small mixed snapshot.
    /// If the encoder changes shape, this test fails loudly — update
    /// docs/OBSERVABILITY.md in the same change.
    #[test]
    fn mixed_snapshot_matches_the_fixture() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        let mut snap = MetricsSnapshot::new();
        snap.set_counter("server.ops.write.count", 42);
        snap.set_gauge("cache.hit.ratio", 0.75);
        snap.set_histogram("cache.lookup.ns", &h);
        let expected = "\
# TYPE fidr_cache_hit_ratio gauge
fidr_cache_hit_ratio 0.75
# TYPE fidr_cache_lookup_ns summary
fidr_cache_lookup_ns{quantile=\"0.5\"} 102
fidr_cache_lookup_ns{quantile=\"0.95\"} 200
fidr_cache_lookup_ns{quantile=\"0.99\"} 200
fidr_cache_lookup_ns_sum 300
fidr_cache_lookup_ns_count 2
# TYPE fidr_server_ops_write_count counter
fidr_server_ops_write_count 42
";
        assert_eq!(to_prometheus_text(&snap), expected);
    }

    #[test]
    fn wall_clock_histograms_expose_only_their_count() {
        let mut h = Histogram::new();
        h.record(1234);
        let mut snap = MetricsSnapshot::new();
        snap.set_wall_clock_histogram("server.request.wall.ns", &h);
        let expected = "\
# TYPE fidr_server_request_wall_ns summary
fidr_server_request_wall_ns_count 1
";
        assert_eq!(to_prometheus_text(&snap), expected);
    }

    #[test]
    fn non_finite_gauges_use_go_spellings() {
        let mut snap = MetricsSnapshot::new();
        snap.set_gauge("x.nan.ratio", f64::NAN);
        snap.set_gauge("x.pinf.ratio", f64::INFINITY);
        snap.set_gauge("x.ninf.ratio", f64::NEG_INFINITY);
        let text = to_prometheus_text(&snap);
        assert!(text.contains("fidr_x_nan_ratio NaN"));
        assert!(text.contains("fidr_x_pinf_ratio +Inf"));
        assert!(text.contains("fidr_x_ninf_ratio -Inf"));
    }

    #[test]
    fn equal_snapshots_encode_byte_identically() {
        let build = || {
            let mut s = MetricsSnapshot::new();
            s.set_counter("a.b.count", 1);
            s.set_gauge("c.d.ratio", 2.5);
            s
        };
        assert_eq!(to_prometheus_text(&build()), to_prometheus_text(&build()));
    }

    #[test]
    fn empty_snapshot_encodes_to_nothing() {
        assert_eq!(to_prometheus_text(&MetricsSnapshot::new()), "");
    }
}
