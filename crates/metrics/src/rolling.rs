//! Rolling-window helpers for live telemetry: counter deltas between
//! successive snapshots, windowed rates, and a rotating histogram that
//! forgets old samples — the arithmetic behind the server's
//! `fidr.timeseries.v1` sampler.
//!
//! These helpers are deliberately dumb about time: callers pass elapsed
//! milliseconds in, so the crate stays clock-free and the same code is
//! testable with synthetic timestamps.

use crate::histogram::Histogram;
use crate::snapshot::MetricsSnapshot;

/// Identifier of the rolling time-series JSON layout produced by the
/// server sampler (`fidr scrape`), carried in its top-level `schema`
/// field. Distinct from [`crate::SCHEMA_ID`]: a time-series document is
/// a ring of timestamped deltas, not a point-in-time snapshot.
pub const TIMESERIES_SCHEMA_ID: &str = "fidr.timeseries.v1";

/// Growth of counter `name` from `prev` to `cur`, saturating at zero —
/// a counter that is absent (stage not started yet) or reset reads as
/// no growth rather than a huge bogus delta.
pub fn counter_delta(prev: &MetricsSnapshot, cur: &MetricsSnapshot, name: &str) -> u64 {
    let before = prev.counter(name).unwrap_or(0);
    let after = cur.counter(name).unwrap_or(0);
    after.saturating_sub(before)
}

/// Converts a windowed delta into an events-per-second rate. Returns
/// 0.0 for an empty window (`elapsed_ms == 0`) instead of infinity, so
/// a sampler racing its first tick never exports a nonsense spike.
pub fn rate_per_sec(delta: u64, elapsed_ms: u64) -> f64 {
    if elapsed_ms == 0 {
        0.0
    } else {
        delta as f64 * 1000.0 / elapsed_ms as f64
    }
}

/// `num / den` as a ratio in `[0, 1]`-ish space, 0.0 when the
/// denominator is zero (no traffic yet ⇒ neutral ratio, not NaN).
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A histogram over the last *W* windows only: recording goes to the
/// current window, [`WindowedHistogram::rotate`] retires the oldest
/// window, and [`WindowedHistogram::merged`] summarises what remains —
/// so a latency spike ages out of the live view instead of polluting
/// the percentiles forever, while the lifetime histogram (a plain
/// [`Histogram`]) keeps the full history for the drain export.
///
/// # Examples
///
/// ```
/// use fidr_metrics::WindowedHistogram;
///
/// let mut w = WindowedHistogram::new(2);
/// w.record(1_000_000); // spike in window 0
/// w.rotate();
/// w.record(100);
/// assert_eq!(w.merged().max(), 1_000_000); // spike still in view
/// w.rotate();
/// w.record(100);
/// assert_eq!(w.merged().max(), 100); // spike aged out
/// ```
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    windows: Vec<Histogram>,
    cursor: usize,
}

impl WindowedHistogram {
    /// Creates a rolling histogram spanning `windows` rotations
    /// (clamped to at least 1).
    pub fn new(windows: usize) -> Self {
        let n = windows.max(1);
        WindowedHistogram {
            windows: (0..n).map(|_| Histogram::new()).collect(),
            cursor: 0,
        }
    }

    /// Number of windows in the ring.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Records one sample into the current window.
    pub fn record(&mut self, value: u64) {
        self.windows[self.cursor].record(value);
    }

    /// Advances to the next window, dropping the samples of the window
    /// it replaces.
    pub fn rotate(&mut self) {
        self.cursor = (self.cursor + 1) % self.windows.len();
        self.windows[self.cursor] = Histogram::new();
    }

    /// Merges every live window into one histogram for summarising.
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for w in &self.windows {
            out.merge(w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_delta_tracks_growth_and_tolerates_absence() {
        let mut prev = MetricsSnapshot::new();
        let mut cur = MetricsSnapshot::new();
        prev.set_counter("x.ops.count", 10);
        cur.set_counter("x.ops.count", 17);
        assert_eq!(counter_delta(&prev, &cur, "x.ops.count"), 7);
        // Absent in prev: the whole current value is the delta.
        assert_eq!(
            counter_delta(&MetricsSnapshot::new(), &cur, "x.ops.count"),
            17
        );
        // Absent in cur (or reset backwards): saturates to zero.
        assert_eq!(
            counter_delta(&prev, &MetricsSnapshot::new(), "x.ops.count"),
            0
        );
        prev.set_counter("x.ops.count", 100);
        assert_eq!(counter_delta(&prev, &cur, "x.ops.count"), 0);
    }

    #[test]
    fn rate_per_sec_scales_and_never_divides_by_zero() {
        assert_eq!(rate_per_sec(500, 1000), 500.0);
        assert_eq!(rate_per_sec(500, 250), 2000.0);
        assert_eq!(rate_per_sec(500, 0), 0.0);
    }

    #[test]
    fn ratio_is_neutral_on_empty_denominator() {
        assert_eq!(ratio(3, 4), 0.75);
        assert_eq!(ratio(0, 0), 0.0);
        assert_eq!(ratio(9, 0), 0.0);
    }

    #[test]
    fn windowed_histogram_forgets_after_a_full_rotation() {
        let mut w = WindowedHistogram::new(3);
        w.record(1_000_000);
        for _ in 0..2 {
            w.rotate();
            w.record(50);
        }
        // Two rotations: the spike window is still inside the ring.
        assert_eq!(w.merged().max(), 1_000_000);
        assert_eq!(w.merged().count(), 3);
        w.rotate();
        w.record(50);
        // Third rotation reuses the spike's slot: spike gone.
        assert_eq!(w.merged().max(), 50);
        assert_eq!(w.merged().count(), 3);
    }

    #[test]
    fn windowed_histogram_clamps_to_one_window() {
        let mut w = WindowedHistogram::new(0);
        assert_eq!(w.window_count(), 1);
        w.record(7);
        w.rotate();
        assert_eq!(w.merged().count(), 0, "single window drops on rotate");
    }
}
