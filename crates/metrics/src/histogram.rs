//! Log-linear histograms for latency and size distributions.
//!
//! Buckets follow the HDR-histogram shape: values below 2^4 get exact
//! unit buckets; above that, each power-of-two octave is split into 16
//! linear sub-buckets, bounding the relative quantile error at 1/16
//! (6.25 %). Values at or above 2^40 (about 18 minutes when recording
//! nanoseconds) collapse into one overflow bucket whose quantiles report
//! the exact observed maximum.

use std::time::Duration;

/// Linear sub-buckets per octave = 2^SUB_BITS.
const SUB_BITS: u32 = 4;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Values with a leading bit at or above this octave share the overflow
/// bucket.
const MAX_OCTAVE: u32 = 40;
/// Total bucket count, including the overflow bucket.
const BUCKETS: usize = SUB_COUNT as usize * ((MAX_OCTAVE - SUB_BITS) as usize + 1) + 1;

/// A fixed-footprint log-linear histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use fidr_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(0.50).unwrap();
/// assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.07, "p50 = {p50}");
/// assert_eq!(h.percentile(1.0), Some(1000));
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    if octave >= MAX_OCTAVE {
        return BUCKETS - 1;
    }
    let sub = ((v >> (octave - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
    ((octave - SUB_BITS) as usize + 1) * SUB_COUNT as usize + sub
}

/// Midpoint of the value range covered by bucket `i` (exact below 2^4).
fn bucket_value(i: usize) -> u64 {
    if i < SUB_COUNT as usize {
        return i as u64;
    }
    let octave = (i / SUB_COUNT as usize - 1) as u32 + SUB_BITS;
    let sub = (i % SUB_COUNT as usize) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    (SUB_COUNT + sub) * width + width / 2
}

impl Histogram {
    /// Creates an empty histogram (~4.6 KB of buckets).
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), or `None` when empty. Bucketed
    /// values carry at most 1/16 relative error; the result is clamped to
    /// the exact observed `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let v = if i == BUCKETS - 1 {
                    self.max
                } else {
                    bucket_value(i)
                };
                return Some(v.clamp(self.min, self.max));
            }
        }
        unreachable!("counts sum to self.count");
    }

    /// Accumulates another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Freezes the current distribution into summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.percentile(0.50).unwrap_or(0),
            p95: self.percentile(0.95).unwrap_or(0),
            p99: self.percentile(0.99).unwrap_or(0),
        }
    }
}

/// Summary statistics of a [`Histogram`] at one point in time — the shape
/// that lands in the JSON snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Mean sample (0.0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_neutral() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), None);
        let s = h.snapshot();
        assert_eq!((s.count, s.p50, s.p99), (0, 0, 0));
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(777), "q = {q}");
        }
        assert_eq!(h.min(), 777);
        assert_eq!(h.max(), 777);
        assert_eq!(h.sum(), 777);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        // Unit buckets below 2^4: the quantile walk is exact.
        assert_eq!(h.percentile(1.0 / 16.0), Some(0));
        assert_eq!(h.percentile(0.5), Some(7));
        assert_eq!(h.percentile(1.0), Some(15));
    }

    #[test]
    fn bucketing_bounds_relative_error() {
        let mut h = Histogram::new();
        // Exercise several octaves.
        for v in [17u64, 100, 1_000, 65_537, 1 << 25, (1 << 30) + 12345] {
            h.record(v);
            let i = bucket_index(v);
            let mid = bucket_value(i);
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 16.0, "value {v}: bucket mid {mid}, err {err}");
        }
    }

    #[test]
    fn bucket_indices_are_monotonic() {
        let values: Vec<u64> = (0..10_000u64).chain((14..63).map(|s| 1u64 << s)).collect();
        for w in values.windows(2) {
            assert!(
                bucket_index(w[0]) <= bucket_index(w[1]),
                "index regressed between {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn overflow_values_land_in_overflow_bucket_and_report_max() {
        let mut h = Histogram::new();
        h.record(5);
        let huge = (1u64 << 45) + 999;
        h.record(huge);
        assert_eq!(bucket_index(huge), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // The overflow bucket reports the exact observed maximum.
        assert_eq!(h.percentile(1.0), Some(huge));
        assert_eq!(h.max(), huge);
    }

    #[test]
    fn sum_saturates_instead_of_overflowing() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn uniform_distribution_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.percentile(q).unwrap() as f64;
            assert!(
                (got - expect).abs() / expect < 0.07,
                "q {q}: got {got}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000);
    }

    #[test]
    fn record_duration_records_nanos() {
        let mut h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.max(), 3_000);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_quantile_panics() {
        Histogram::new().percentile(1.5);
    }
}
