//! # fidr-metrics
//!
//! Zero-dependency observability primitives shared by every stage of the
//! FIDR pipeline: monotonic counters, gauges and log-linear latency
//! [`Histogram`]s, collected into one [`MetricsSnapshot`] with a stable,
//! hand-rolled JSON encoding (no serde — the build environment vendors
//! its dependencies, and a metrics surface should not need any).
//!
//! Metric names follow the convention documented in
//! `docs/OBSERVABILITY.md`: `<stage>.<name>.<unit>`, lowercase, with
//! `_` inside words — e.g. `cache.lookup.ns`, `ssd.table.read.bytes`,
//! `reduction.dedup.ratio`. [`slug`] converts free-form labels (station
//! names, resource labels) into that charset.
//!
//! # Examples
//!
//! ```
//! use fidr_metrics::{Histogram, MetricsSnapshot};
//!
//! let mut lookup_ns = Histogram::new();
//! for v in [120, 95, 4_000] {
//!     lookup_ns.record(v);
//! }
//! let mut snap = MetricsSnapshot::new();
//! snap.set_counter("cache.accesses.count", 3);
//! snap.set_histogram("cache.lookup.ns", &lookup_ns);
//! assert_eq!(snap.counter("cache.accesses.count"), Some(3));
//! assert!(snap.histogram("cache.lookup.ns").unwrap().p99 >= 95);
//! assert!(snap.to_json().contains("\"cache.lookup.ns\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod prometheus;
mod rolling;
mod snapshot;

pub use histogram::{Histogram, HistogramSnapshot};
pub use prometheus::to_prometheus_text;
pub use rolling::{counter_delta, rate_per_sec, ratio, WindowedHistogram, TIMESERIES_SCHEMA_ID};
pub use snapshot::{slug, MetricValue, MetricsSnapshot, SCHEMA_ID};
