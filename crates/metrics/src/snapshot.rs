//! The metrics snapshot: a sorted name → value map with a stable,
//! hand-rolled JSON encoding.
//!
//! The JSON shape is versioned through [`SCHEMA_ID`] and documented in
//! `docs/OBSERVABILITY.md`; tools that parse `fidr stats` output should
//! check the `schema` field before reading `metrics`.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;

/// Identifier of the JSON snapshot layout, carried in the top-level
/// `schema` field. Bump only on breaking changes to the encoding.
pub const SCHEMA_ID: &str = "fidr.metrics.v1";

/// One named measurement inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic count (events, bytes, cycles).
    Counter(u64),
    /// A point-in-time level or ratio.
    Gauge(f64),
    /// A frozen latency/size distribution.
    Histogram(HistogramSnapshot),
}

/// A point-in-time view of every metric a component exported, keyed by
/// `<stage>.<name>.<unit>` names and iterated in sorted order so the
/// JSON encoding is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<String, MetricValue>,
    /// Names of histograms recorded from the wall clock rather than the
    /// modelled clock. Their value distributions vary run to run even
    /// under a fixed seed, so [`MetricsSnapshot::to_json`] emits only
    /// their deterministic `count` (plus a `wall_clock` marker), keeping
    /// same-seed snapshot files byte-identical and diffable.
    wall_clock: std::collections::BTreeSet<String>,
}

/// In debug builds, rejects names outside the documented convention:
/// lowercase `[a-z0-9._]` with at least one `.` separator.
fn check_name(name: &str) {
    debug_assert!(
        name.contains('.')
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
        "metric name {name:?} violates the <stage>.<name>.<unit> convention"
    );
}

/// Converts a free-form label (station name, resource label) into the
/// metric-name charset: lowercased, with every run of other characters
/// collapsed to one `_`, and no leading/trailing `_`.
///
/// # Examples
///
/// ```
/// assert_eq!(fidr_metrics::slug("NIC <-> FPGA"), "nic_fpga");
/// assert_eq!(fidr_metrics::slug("Table SSD stack"), "table_ssd_stack");
/// ```
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Formats an `f64` as a JSON number: plain decimal via `Display` (Rust
/// never emits an exponent for finite values through `{}`), `null` for
/// NaN/infinity.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` prints integral floats without a fraction ("3"); keep
        // the value unambiguously a float for strict parsers.
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Escapes a string for use inside JSON quotes. Metric names never need
/// this, but it keeps the encoder total.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Sets a counter.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        check_name(name);
        self.wall_clock.remove(name);
        self.metrics
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        check_name(name);
        self.wall_clock.remove(name);
        self.metrics
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Freezes `hist` under `name`. Empty histograms are stored too — an
    /// all-zero distribution still documents that the stage ran.
    pub fn set_histogram(&mut self, name: &str, hist: &Histogram) {
        check_name(name);
        self.wall_clock.remove(name);
        self.metrics
            .insert(name.to_string(), MetricValue::Histogram(hist.snapshot()));
    }

    /// Freezes `hist` under `name`, marked as a *wall-clock* timing: its
    /// distribution reflects host execution speed, not the seeded model,
    /// so the JSON encoding keeps only its deterministic `count`. In-
    /// process consumers still see the full summary via
    /// [`MetricsSnapshot::histogram`].
    pub fn set_wall_clock_histogram(&mut self, name: &str, hist: &Histogram) {
        check_name(name);
        self.wall_clock.insert(name.to_string());
        self.metrics
            .insert(name.to_string(), MetricValue::Histogram(hist.snapshot()));
    }

    /// Whether `name` is a histogram marked wall-clock.
    pub fn is_wall_clock(&self, name: &str) -> bool {
        self.wall_clock.contains(name)
    }

    /// Looks up any metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Counter value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram summary, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates metrics in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Absorbs every metric of `other`, overwriting duplicates.
    pub fn extend(&mut self, other: MetricsSnapshot) {
        for name in other.metrics.keys() {
            self.wall_clock.remove(name);
        }
        self.wall_clock.extend(other.wall_clock);
        self.metrics.extend(other.metrics);
    }

    /// Encodes the snapshot as pretty-printed JSON:
    ///
    /// ```json
    /// {
    ///   "schema": "fidr.metrics.v1",
    ///   "metrics": {
    ///     "cache.accesses.count": { "type": "counter", "value": 3 },
    ///     "cache.hit.ratio": { "type": "gauge", "value": 0.66 },
    ///     "cache.lookup.ns": { "type": "histogram", "count": 3, "sum": 4215,
    ///       "min": 95, "max": 4000, "mean": 1405.0,
    ///       "p50": 120, "p95": 4000, "p99": 4000 }
    ///   }
    /// }
    /// ```
    ///
    /// Keys are emitted in sorted order and wall-clock histograms (see
    /// [`MetricsSnapshot::set_wall_clock_histogram`]) are reduced to
    /// `{ "type": "histogram", "count": N, "wall_clock": true }`, so
    /// same-seed runs produce byte-identical JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA_ID}\",\n"));
        out.push_str("  \"metrics\": {");
        let mut first = true;
        for (name, value) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            out.push_str(&format!("\"{}\": ", json_escape(name)));
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{{ \"type\": \"counter\", \"value\": {v} }}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{{ \"type\": \"gauge\", \"value\": {} }}",
                        json_f64(*v)
                    ));
                }
                MetricValue::Histogram(h) if self.wall_clock.contains(name) => {
                    out.push_str(&format!(
                        "{{ \"type\": \"histogram\", \"count\": {}, \"wall_clock\": true }}",
                        h.count
                    ));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{ \"type\": \"histogram\", \"count\": {}, \"sum\": {}, \
                         \"min\": {}, \"max\": {}, \"mean\": {}, \
                         \"p50\": {}, \"p95\": {}, \"p99\": {} }}",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        json_f64(h.mean),
                        h.p50,
                        h.p95,
                        h.p99
                    ));
                }
            }
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut h = Histogram::new();
        h.record(100);
        let mut snap = MetricsSnapshot::new();
        snap.set_counter("stage.events.count", 7);
        snap.set_gauge("stage.level.ratio", 0.5);
        snap.set_histogram("stage.latency.ns", &h);

        assert_eq!(snap.counter("stage.events.count"), Some(7));
        assert_eq!(snap.gauge("stage.level.ratio"), Some(0.5));
        assert_eq!(snap.histogram("stage.latency.ns").unwrap().p50, 100);
        // Type-mismatched lookups return None.
        assert_eq!(snap.counter("stage.level.ratio"), None);
        assert_eq!(snap.gauge("stage.events.count"), None);
        assert_eq!(snap.len(), 3);
    }

    #[test]
    fn json_is_sorted_and_carries_the_schema_id() {
        let mut snap = MetricsSnapshot::new();
        snap.set_counter("z.last.count", 1);
        snap.set_counter("a.first.count", 2);
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"fidr.metrics.v1\""));
        let a = json.find("a.first.count").unwrap();
        let z = json.find("z.last.count").unwrap();
        assert!(a < z, "keys must appear in sorted order");
    }

    #[test]
    fn json_for_equal_snapshots_is_byte_identical() {
        let build = || {
            let mut s = MetricsSnapshot::new();
            s.set_gauge("x.y.ratio", 1.25);
            s.set_counter("x.y.count", 3);
            s
        };
        assert_eq!(build().to_json(), build().to_json());
    }

    #[test]
    fn wall_clock_histograms_encode_only_their_count() {
        let mut h = Histogram::new();
        h.record(1234);
        let mut snap = MetricsSnapshot::new();
        snap.set_wall_clock_histogram("stage.latency.ns", &h);
        assert!(snap.is_wall_clock("stage.latency.ns"));
        // Full summary stays available in-process.
        assert_eq!(snap.histogram("stage.latency.ns").unwrap().sum, 1234);
        let json = snap.to_json();
        assert!(json.contains("\"count\": 1, \"wall_clock\": true"));
        assert!(!json.contains("\"sum\""));
        // Re-setting as a modelled histogram clears the marking.
        snap.set_histogram("stage.latency.ns", &h);
        assert!(!snap.is_wall_clock("stage.latency.ns"));
        assert!(snap.to_json().contains("\"sum\": 1234"));
    }

    #[test]
    fn extend_carries_wall_clock_markings() {
        let h = Histogram::new();
        let mut a = MetricsSnapshot::new();
        a.set_histogram("x.a.ns", &h);
        let mut b = MetricsSnapshot::new();
        b.set_wall_clock_histogram("x.a.ns", &h);
        b.set_wall_clock_histogram("x.b.ns", &h);
        let mut c = MetricsSnapshot::new();
        c.set_histogram("x.b.ns", &h);
        a.extend(b);
        assert!(a.is_wall_clock("x.a.ns") && a.is_wall_clock("x.b.ns"));
        a.extend(c);
        assert!(!a.is_wall_clock("x.b.ns"));
    }

    #[test]
    fn empty_snapshot_is_valid_json_shape() {
        let json = MetricsSnapshot::new().to_json();
        assert!(json.contains("\"metrics\": {}"));
    }

    #[test]
    fn non_finite_gauges_encode_as_null() {
        let mut snap = MetricsSnapshot::new();
        snap.set_gauge("x.nan.ratio", f64::NAN);
        snap.set_gauge("x.inf.ratio", f64::INFINITY);
        let json = snap.to_json();
        assert_eq!(json.matches("\"value\": null").count(), 2);
    }

    #[test]
    fn integral_gauges_keep_a_fraction() {
        let mut snap = MetricsSnapshot::new();
        snap.set_gauge("x.whole.ratio", 3.0);
        assert!(snap.to_json().contains("\"value\": 3.0"));
    }

    #[test]
    fn slug_normalises_labels() {
        assert_eq!(slug("NIC buffering"), "nic_buffering");
        assert_eq!(slug("FPGA <-> table SSD"), "fpga_table_ssd");
        assert_eq!(slug("CPU"), "cpu");
        assert_eq!(slug("  odd -- label  "), "odd_label");
        assert_eq!(slug(""), "");
    }

    #[test]
    fn extend_merges_and_overwrites() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("x.a.count", 1);
        let mut b = MetricsSnapshot::new();
        b.set_counter("x.a.count", 2);
        b.set_counter("x.b.count", 3);
        a.extend(b);
        assert_eq!(a.counter("x.a.count"), Some(2));
        assert_eq!(a.counter("x.b.count"), Some(3));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
