//! A minimal JSON reader used to validate exported trace files.
//!
//! `fidr-trace` is zero-dependency, so the trace-event shape check in
//! `fidr spans` / `scripts/check.sh` cannot lean on an external JSON crate.
//! This parser supports the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) — enough to load what the exporter
//! writes and to reject malformed files with a byte-offset error.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our attribute
                            // strings; map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = parse(doc).expect("parse");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn reports_error_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn unicode_escapes_resolve() {
        let v = parse(r#""Aé""#).expect("parse");
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
