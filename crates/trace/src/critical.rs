//! In-process critical-path analysis over completed root spans.
//!
//! The tracer folds every finished op (root span) into a per-class
//! accumulator: op-latency histogram, per-stage self-time totals and
//! histograms, and the single longest op's stage chain. Because the fold
//! happens at span end — before the bounded ring can evict anything — the
//! breakdown covers *every* op of a run, even million-op runs that keep only
//! the tail of the ring.
//!
//! Everything here is fixed-footprint and deterministic; histograms reuse the
//! log-linear bucketing shape of `fidr-metrics` (16 linear sub-buckets per
//! octave, ≤ 6.25 % relative quantile error) without taking a dependency on
//! it — `fidr-trace` stays zero-dependency.

use std::fmt;

const SUB_BITS: u32 = 4;
const SUB_COUNT: u64 = 1 << SUB_BITS;
const MAX_OCTAVE: u32 = 40;
const BUCKETS: usize = SUB_COUNT as usize * ((MAX_OCTAVE - SUB_BITS) as usize + 1) + 1;

/// Compact log-linear histogram of modelled-ns samples.
#[derive(Clone)]
struct Hist {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl fmt::Debug for Hist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hist")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .finish_non_exhaustive()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    if octave >= MAX_OCTAVE {
        return BUCKETS - 1;
    }
    let sub = ((v >> (octave - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
    ((octave - SUB_BITS) as usize + 1) * SUB_COUNT as usize + sub
}

fn bucket_value(i: usize) -> u64 {
    if i < SUB_COUNT as usize {
        return i as u64;
    }
    let octave = (i / SUB_COUNT as usize - 1) as u32 + SUB_BITS;
    let sub = (i % SUB_COUNT as usize) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    (SUB_COUNT + sub) * width + width / 2
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let v = if i == BUCKETS - 1 {
                    self.max
                } else {
                    bucket_value(i)
                };
                return v.clamp(self.min, self.max);
            }
        }
        unreachable!("counts sum to self.count");
    }
}

#[derive(Debug, Clone)]
struct StageAccum {
    name: &'static str,
    total_ns: u64,
    hist: Hist,
}

#[derive(Debug, Clone)]
struct ClassAccum {
    class: &'static str,
    ops: u64,
    totals: Hist,
    stages: Vec<StageAccum>,
    longest_ns: u64,
    longest_chain: Vec<(&'static str, u64)>,
}

/// Accumulates per-op-class stage breakdowns as root spans close.
#[derive(Debug, Clone, Default)]
pub(crate) struct CriticalPathAnalyzer {
    classes: Vec<ClassAccum>,
}

impl CriticalPathAnalyzer {
    pub(crate) fn new() -> Self {
        CriticalPathAnalyzer::default()
    }

    pub(crate) fn record_op(
        &mut self,
        class: &'static str,
        total_ns: u64,
        stages: &[(&'static str, u64)],
    ) {
        let accum = match self.classes.iter_mut().find(|c| c.class == class) {
            Some(c) => c,
            None => {
                self.classes.push(ClassAccum {
                    class,
                    ops: 0,
                    totals: Hist::new(),
                    stages: Vec::new(),
                    longest_ns: 0,
                    longest_chain: Vec::new(),
                });
                self.classes.last_mut().expect("just pushed")
            }
        };
        accum.ops += 1;
        accum.totals.record(total_ns);
        for &(name, ns) in stages {
            match accum.stages.iter_mut().find(|s| s.name == name) {
                Some(s) => {
                    s.total_ns += ns;
                    s.hist.record(ns);
                }
                None => {
                    let mut hist = Hist::new();
                    hist.record(ns);
                    accum.stages.push(StageAccum {
                        name,
                        total_ns: ns,
                        hist,
                    });
                }
            }
        }
        // `>=` so the latest worst op wins ties deterministically.
        if total_ns >= accum.longest_ns {
            accum.longest_ns = total_ns;
            accum.longest_chain = stages.to_vec();
        }
    }

    pub(crate) fn report(&self) -> CriticalPathReport {
        let mut classes: Vec<ClassBreakdown> = self
            .classes
            .iter()
            .map(|c| {
                let class_total: u64 = c.stages.iter().map(|s| s.total_ns).sum();
                let mut stages: Vec<StageBreakdown> = c
                    .stages
                    .iter()
                    .map(|s| StageBreakdown {
                        name: s.name.to_string(),
                        total_ns: s.total_ns,
                        share: if class_total == 0 {
                            0.0
                        } else {
                            s.total_ns as f64 / class_total as f64
                        },
                        p50_ns: s.hist.percentile(0.50),
                        p99_ns: s.hist.percentile(0.99),
                    })
                    .collect();
                stages.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
                ClassBreakdown {
                    class: c.class.to_string(),
                    ops: c.ops,
                    total_ns: c.totals.sum,
                    mean_ns: if c.ops == 0 {
                        0.0
                    } else {
                        c.totals.sum as f64 / c.ops as f64
                    },
                    p50_ns: c.totals.percentile(0.50),
                    p99_ns: c.totals.percentile(0.99),
                    max_ns: c.totals.max,
                    stages,
                    longest_chain: c
                        .longest_chain
                        .iter()
                        .map(|&(n, ns)| (n.to_string(), ns))
                        .collect(),
                }
            })
            .collect();
        classes.sort_by(|a, b| a.class.cmp(&b.class));
        CriticalPathReport { classes }
    }
}

/// Per-stage slice of one op class's modelled time.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    /// Stage name (`nic`, `hash`, `cache`, `table_ssd`, `hwtree`,
    /// `compress`, `ssd`, `host`, ...).
    pub name: String,
    /// Total self-time across all ops of the class.
    pub total_ns: u64,
    /// Fraction of the class's summed stage time (0..=1).
    pub share: f64,
    /// Median per-op self-time of this stage.
    pub p50_ns: u64,
    /// 99th-percentile per-op self-time of this stage.
    pub p99_ns: u64,
}

/// One op class (root-span name, e.g. `write` / `read` / `flush`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassBreakdown {
    /// Root-span name.
    pub class: String,
    /// Ops observed.
    pub ops: u64,
    /// Summed op latency.
    pub total_ns: u64,
    /// Mean op latency.
    pub mean_ns: f64,
    /// Median op latency.
    pub p50_ns: u64,
    /// 99th-percentile op latency.
    pub p99_ns: u64,
    /// Worst op latency.
    pub max_ns: u64,
    /// Stage breakdown, largest total first.
    pub stages: Vec<StageBreakdown>,
    /// Stage chain of the single longest op (its serial critical path).
    pub longest_chain: Vec<(String, u64)>,
}

/// Critical-path breakdown per op class, sorted by class name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPathReport {
    /// One entry per root-span name seen.
    pub classes: Vec<ClassBreakdown>,
}

impl CriticalPathReport {
    /// Breakdown for one class, if present.
    pub fn class(&self, name: &str) -> Option<&ClassBreakdown> {
        self.classes.iter().find(|c| c.class == name)
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl fmt::Display for CriticalPathReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.classes.is_empty() {
            return writeln!(f, "critical path: no spans recorded");
        }
        writeln!(f, "critical path (modelled time):")?;
        for c in &self.classes {
            writeln!(
                f,
                "  {}: {} ops, mean {}, p50 {}, p99 {}, max {}",
                c.class,
                c.ops,
                fmt_ns(c.mean_ns.round() as u64),
                fmt_ns(c.p50_ns),
                fmt_ns(c.p99_ns),
                fmt_ns(c.max_ns),
            )?;
            let shares: Vec<String> = c
                .stages
                .iter()
                .filter(|s| s.share >= 0.005)
                .map(|s| format!("{:.0}% {}", s.share * 100.0, s.name))
                .collect();
            if !shares.is_empty() {
                writeln!(
                    f,
                    "    p99 {} {}: {}",
                    c.class,
                    fmt_ns(c.p99_ns),
                    shares.join(", ")
                )?;
            }
            for s in &c.stages {
                writeln!(
                    f,
                    "    {:<10} {:>5.1}%  total {:>10}  p50 {:>9}  p99 {:>9}",
                    s.name,
                    s.share * 100.0,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.p50_ns),
                    fmt_ns(s.p99_ns),
                )?;
            }
            if !c.longest_chain.is_empty() {
                let chain: Vec<String> = c
                    .longest_chain
                    .iter()
                    .map(|(n, ns)| format!("{n} {}", fmt_ns(*ns)))
                    .collect();
                writeln!(
                    f,
                    "    longest op {}: {}",
                    fmt_ns(c.max_ns),
                    chain.join(" -> ")
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one_and_sort_descending() {
        let mut a = CriticalPathAnalyzer::new();
        for _ in 0..100 {
            a.record_op(
                "write",
                100,
                &[("table_ssd", 60), ("hwtree", 30), ("host", 10)],
            );
        }
        let r = a.report();
        let c = r.class("write").expect("write class");
        assert_eq!(c.ops, 100);
        let sum: f64 = c.stages.iter().map(|s| s.share).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(c.stages[0].name, "table_ssd");
        assert!((c.stages[0].share - 0.6).abs() < 1e-9);
        assert_eq!(c.stages[2].name, "host");
    }

    #[test]
    fn longest_chain_tracks_worst_op() {
        let mut a = CriticalPathAnalyzer::new();
        a.record_op("read", 50, &[("ssd", 50)]);
        a.record_op("read", 500, &[("ssd", 400), ("compress", 100)]);
        a.record_op("read", 70, &[("ssd", 70)]);
        let c = a.report();
        let read = c.class("read").expect("read");
        assert_eq!(read.max_ns, 500);
        assert_eq!(
            read.longest_chain,
            vec![("ssd".to_string(), 400), ("compress".to_string(), 100)]
        );
    }

    #[test]
    fn classes_sorted_by_name() {
        let mut a = CriticalPathAnalyzer::new();
        a.record_op("write", 10, &[]);
        a.record_op("read", 10, &[]);
        let r = a.report();
        let names: Vec<&str> = r.classes.iter().map(|c| c.class.as_str()).collect();
        assert_eq!(names, vec!["read", "write"]);
    }

    #[test]
    fn percentiles_track_distribution() {
        let mut a = CriticalPathAnalyzer::new();
        for v in 1..=1000u64 {
            a.record_op("write", v * 100, &[("ssd", v * 100)]);
        }
        let r = a.report();
        let c = r.class("write").expect("write");
        let p50 = c.p50_ns as f64;
        let p99 = c.p99_ns as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.07, "p50 {p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.07, "p99 {p99}");
        let ssd = &c.stages[0];
        assert!((ssd.p99_ns as f64 - 99_000.0).abs() / 99_000.0 < 0.07);
    }

    #[test]
    fn display_mentions_stage_shares() {
        let mut a = CriticalPathAnalyzer::new();
        a.record_op(
            "write",
            100,
            &[("table_ssd", 61), ("hwtree", 22), ("host", 17)],
        );
        let text = a.report().to_string();
        assert!(text.contains("p99 write"), "{text}");
        assert!(text.contains("61% table_ssd"), "{text}");
        assert!(text.contains("22% hwtree"), "{text}");
    }

    #[test]
    fn empty_report_prints_placeholder() {
        let text = CriticalPathAnalyzer::new().report().to_string();
        assert!(text.contains("no spans recorded"));
    }
}
